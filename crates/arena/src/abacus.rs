//! ABACuS: all-bank activation counters with shared row-id tracking
//! (Olgun et al., USENIX Security 2024; arxiv 2310.09977).
//!
//! ABACuS exploits the observation that workloads (and Row-Hammer attacks)
//! tend to touch the *same row index* across many banks — a consequence of
//! bank-interleaved address mapping. Instead of one counter per (bank, row),
//! it keeps **one shared entry per row id per rank**:
//!
//! * a **Row Activation Counter (RAC)** counting, conceptually, the maximum
//!   per-bank activation count for this row id, and
//! * a **Sibling Activation Vector (SAV)** — a per-bank bitmask recording
//!   which banks have activated the row since the RAC last advanced.
//!
//! On an activation of row `r` in bank `b`: if `b`'s SAV bit is already
//! set, some bank has activated `r` twice since the RAC advanced, so the
//! RAC increments and the SAV collapses to `{b}`; otherwise `b`'s bit is
//! simply set. This maintains the invariant that any bank's true count for
//! row id `r` is at most `RAC + 1` (the `+1` covers the pending SAV bit):
//! each bank contributes at most one activation per RAC step. When
//! `RAC + 1` reaches the mitigation threshold `T_H`, every bank that ever
//! touched the row this window (a second **dirty mask** accumulated across
//! RAC steps) gets a mitigation and the entry retires.
//!
//! Mitigating only dirty banks matters for oracle-cleanliness: mitigating
//! a (bank, row) with zero true activations would be flagged as spurious.
//!
//! The entry table is bounded. A full table mitigates the incoming
//! (bank, row) directly — always safe, never spurious (the row was just
//! activated) — and counts it in [`Abacus::table_full_mitigations`], so a
//! sound provisioning (`entries ≥ 2·ACT_max / T_RH`, mirroring the paper's
//! `N_RH_entries`) shows up as a zero in the leaderboard.

use crate::tracker::{ActStats, Tracker, TrackerDecision};
use hydra_types::{ActivationKind, ConfigError, MemCycle, MemGeometry, MitigationRequest, RowAddr};
use std::collections::HashMap;

/// ABACuS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbacusConfig {
    /// Mitigation threshold per window (`T_RH / 2`).
    pub t_h: u32,
    /// Shared row-id entries per rank.
    pub entries_per_rank: usize,
}

impl AbacusConfig {
    /// Sizes ABACuS for Row-Hammer threshold `t_rh` against a worst case of
    /// `act_max_per_bank` activations per bank per window: the number of
    /// row ids that can reach `T_H = t_rh / 2` in *some* bank is at most
    /// `act_max_per_bank / T_H` — but because the RAC advances only on a
    /// sibling repeat, a row interleaved across all banks consumes table
    /// residency while its RAC crawls, so the paper provisions
    /// `2 · act_max / t_rh` entries and we follow (plus one for slack).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `t_rh < 4`.
    pub fn for_threshold(t_rh: u32, act_max_per_bank: u64) -> Result<Self, ConfigError> {
        if t_rh < 4 {
            return Err(ConfigError::new(format!(
                "row-hammer threshold {t_rh} too small for ABACuS (min 4)"
            )));
        }
        let t_h = t_rh / 2;
        let entries = (act_max_per_bank.div_ceil(u64::from(t_h)) + 1) as usize;
        Ok(AbacusConfig {
            t_h,
            entries_per_rank: entries,
        })
    }
}

/// One shared row-id entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Row activation counter: `rac + 1` upper-bounds every bank's true
    /// count for this row id this window.
    rac: u32,
    /// Sibling activation vector: banks that activated since the last RAC
    /// advance.
    sav: u32,
    /// Banks that activated this row id at least once this window (the
    /// mitigation fan-out set).
    dirty: u32,
}

/// The ABACuS tracker for one channel. See the module docs.
#[derive(Debug, Clone)]
pub struct Abacus {
    config: AbacusConfig,
    channel: u8,
    banks_per_rank: u8,
    /// One shared table per rank: row id → entry.
    ranks: Vec<HashMap<u32, Entry>>,
    mitigations: u64,
    table_full_mitigations: u64,
}

impl Abacus {
    /// Creates an ABACuS instance for one channel of `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a bad channel, a zero threshold or table,
    /// or a geometry with more than 32 banks per rank (the SAV is a `u32`
    /// bitmask).
    pub fn new(
        geometry: MemGeometry,
        channel: u8,
        config: AbacusConfig,
    ) -> Result<Self, ConfigError> {
        if channel >= geometry.channels() {
            return Err(ConfigError::new("channel out of range"));
        }
        if config.t_h == 0 || config.entries_per_rank == 0 {
            return Err(ConfigError::new(
                "ABACuS threshold and table must be nonzero",
            ));
        }
        if geometry.banks_per_rank() > 32 {
            return Err(ConfigError::new(
                "ABACuS sibling vector supports at most 32 banks per rank",
            ));
        }
        let ranks = (0..geometry.ranks_per_channel())
            .map(|_| HashMap::with_capacity(config.entries_per_rank))
            .collect();
        Ok(Abacus {
            config,
            channel,
            banks_per_rank: geometry.banks_per_rank(),
            ranks,
            mitigations: 0,
            table_full_mitigations: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &AbacusConfig {
        &self.config
    }

    /// Mitigations issued so far (counting each mitigated (bank, row)).
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Mitigations forced by table exhaustion (0 when provisioned soundly).
    pub fn table_full_mitigations(&self) -> u64 {
        self.table_full_mitigations
    }
}

impl Tracker for Abacus {
    fn activate(&mut self, row: RowAddr, _now: MemCycle, _kind: ActivationKind) -> TrackerDecision {
        debug_assert_eq!(row.channel, self.channel);
        let t_h = self.config.t_h;
        let entries = self.config.entries_per_rank;
        let table = &mut self.ranks[usize::from(row.rank)];
        let bank_bit = 1u32 << row.bank;

        let entry = match table.get_mut(&row.row) {
            Some(e) => e,
            None => {
                if table.len() >= entries {
                    // Full: mitigate the incoming (bank, row) directly. Safe
                    // — it was just activated — and the activation is then
                    // accounted for (a mitigated row restarts from zero).
                    self.table_full_mitigations += 1;
                    self.mitigations += 1;
                    return TrackerDecision::mitigate(row).with_stats(ActStats {
                        estimate: 1,
                        tracked: false,
                    });
                }
                table.insert(
                    row.row,
                    Entry {
                        rac: 0,
                        sav: 0,
                        dirty: 0,
                    },
                );
                match table.get_mut(&row.row) {
                    Some(e) => e,
                    // Unreachable: the key was just inserted.
                    None => {
                        return TrackerDecision::none();
                    }
                }
            }
        };

        entry.dirty |= bank_bit;
        if entry.sav & bank_bit != 0 {
            // Sibling repeat: the RAC advances and the vector collapses.
            entry.rac += 1;
            entry.sav = bank_bit;
        } else {
            entry.sav |= bank_bit;
        }
        let estimate = u64::from(entry.rac) + 1;

        if entry.rac + 1 >= t_h {
            // Some bank may be one activation away from T_H: mitigate every
            // bank that touched this row id this window, then retire the
            // entry so all of them restart from zero.
            let dirty = entry.dirty;
            table.remove(&row.row);
            let mut mitigations = Vec::new();
            for bank in 0..self.banks_per_rank {
                if dirty & (1u32 << bank) != 0 {
                    mitigations.push(MitigationRequest::new(RowAddr::new(
                        row.channel,
                        row.rank,
                        bank,
                        row.row,
                    )));
                }
            }
            self.mitigations += mitigations.len() as u64;
            return TrackerDecision {
                mitigations,
                side_requests: Vec::new(),
                stats: ActStats {
                    estimate,
                    tracked: false,
                },
            };
        }

        TrackerDecision::none().with_stats(ActStats {
            estimate,
            tracked: true,
        })
    }

    fn window_reset(&mut self, _now: MemCycle) {
        for table in &mut self.ranks {
            table.clear();
        }
    }

    fn name(&self) -> &str {
        "abacus"
    }

    fn params(&self) -> String {
        format!(
            "t_h={} entries_per_rank={}",
            self.config.t_h, self.config.entries_per_rank
        )
    }

    fn sram_bits(&self) -> u64 {
        // Per entry: a row id (17 bits at the paper's 128 K rows/bank), a
        // RAC wide enough for T_H, and two bank bitmasks (SAV + dirty). See
        // `hydra_baselines::storage::abacus_bytes_per_rank` for the
        // paper-scale analytic model.
        let rac_bits = u64::from(u32::BITS - self.config.t_h.leading_zeros());
        let masks = 2 * u64::from(self.banks_per_rank);
        let entry_bits = 17 + rac_bits + masks;
        (self.ranks.len() as u64)
            .saturating_mul(self.config.entries_per_rank as u64)
            .saturating_mul(entry_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_types::ActivationKind::Demand;

    fn abacus(t_h: u32, entries: usize) -> Abacus {
        let config = AbacusConfig {
            t_h,
            entries_per_rank: entries,
        };
        match Abacus::new(MemGeometry::tiny(), 0, config) {
            Ok(a) => a,
            Err(e) => panic!("abacus: {e}"),
        }
    }

    #[test]
    fn single_bank_aggressor_mitigated_at_t_h() {
        let mut a = abacus(8, 64);
        let row = RowAddr::new(0, 0, 0, 42);
        let mut when = Vec::new();
        for i in 1..=24u64 {
            if !a.activate(row, i, Demand).mitigations.is_empty() {
                when.push(i);
            }
        }
        // Single bank: the SAV bit repeats every activation, so rac+1
        // tracks the true count exactly and fires at every 8th activation.
        assert_eq!(when, vec![8, 16, 24]);
    }

    #[test]
    fn interleaved_siblings_share_one_counter() {
        let mut a = abacus(8, 64);
        // Hammer the same row id in all 4 tiny-geometry banks, round-robin.
        // Each round sets 4 SAV bits then repeats → rac advances once per
        // round; every bank's true count equals rac+... ≤ rac+1 bound.
        let mut mitigated_banks = Vec::new();
        'outer: for round in 0..16u64 {
            for bank in 0..4u8 {
                let d = a.activate(RowAddr::new(0, 0, bank, 42), round, Demand);
                if !d.mitigations.is_empty() {
                    mitigated_banks = d.mitigations.iter().map(|m| m.aggressor.bank).collect();
                    break 'outer;
                }
            }
        }
        // All four banks were dirty, so all four get mitigated together.
        assert_eq!(mitigated_banks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mitigation_fans_out_only_to_dirty_banks() {
        let mut a = abacus(4, 64);
        // Only banks 0 and 2 touch row 7.
        loop {
            a.activate(RowAddr::new(0, 0, 2, 7), 0, Demand);
            let d = a.activate(RowAddr::new(0, 0, 0, 7), 0, Demand);
            if !d.mitigations.is_empty() {
                let banks: Vec<u8> = d.mitigations.iter().map(|m| m.aggressor.bank).collect();
                assert_eq!(banks, vec![0, 2]);
                return;
            }
        }
    }

    #[test]
    fn full_table_mitigates_the_incoming_row() {
        let mut a = abacus(8, 2);
        a.activate(RowAddr::new(0, 0, 0, 1), 0, Demand);
        a.activate(RowAddr::new(0, 0, 0, 2), 0, Demand);
        let d = a.activate(RowAddr::new(0, 0, 0, 3), 0, Demand);
        assert_eq!(d.mitigations.len(), 1);
        assert_eq!(d.mitigations[0].aggressor.row, 3);
        assert_eq!(a.table_full_mitigations(), 1);
    }

    #[test]
    fn window_reset_clears_tables() {
        let mut a = abacus(8, 64);
        let row = RowAddr::new(0, 0, 0, 42);
        for i in 0..7u64 {
            a.activate(row, i, Demand);
        }
        a.window_reset(100);
        for i in 0..7u64 {
            assert!(a.activate(row, 100 + i, Demand).mitigations.is_empty());
        }
    }

    #[test]
    fn for_threshold_matches_the_capacity_rule() {
        let c = match AbacusConfig::for_threshold(1000, 1_360_000) {
            Ok(c) => c,
            Err(e) => panic!("config: {e}"),
        };
        assert_eq!(c.t_h, 500);
        assert_eq!(c.entries_per_rank, 2721);
        assert!(AbacusConfig::for_threshold(2, 1000).is_err());
    }

    #[test]
    fn sram_bits_follow_the_entry_layout() {
        let a = abacus(500, 2721);
        // tiny: 1 rank, 4 banks → 17 (rowid) + 9 (rac) + 8 (2×4-bit masks).
        assert_eq!(a.sram_bits(), 2721 * (17 + 9 + 8));
    }
}
