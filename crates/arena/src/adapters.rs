//! [`Tracker`] adapters over the trackers this workspace already ships:
//! Hydra (`hydra-core`) and the Graphene/CRA/PARA/TRR baselines
//! (`hydra-baselines`).
//!
//! Every adapter is a thin delegating shim: `activate` forwards to the
//! wrapped tracker's [`ActivationTracker::on_activation`] and moves the
//! response's vectors into the [`TrackerDecision`] without copying, so an
//! adapter run is call-for-call identical to a concrete run (the
//! equivalence proptest in `tests/adapter_equivalence.rs` pins this down
//! for Hydra — the path every existing gate depends on).

use crate::tracker::{ActStats, Tracker, TrackerDecision};
use hydra_baselines::{Cra, CraConfig, Graphene, GrapheneConfig, Para, VendorTrr};
use hydra_core::{Hydra, HydraConfig, HydraStorage};
use hydra_types::{ActivationKind, ActivationTracker, ConfigError, MemCycle, MemGeometry, RowAddr};

/// The Hydra hybrid tracker as an arena contender.
#[derive(Debug, Clone)]
pub struct HydraTracker {
    inner: Hydra,
    params: String,
    sram_bytes: u64,
}

impl HydraTracker {
    /// Builds a Hydra instance from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is rejected.
    pub fn new(config: HydraConfig) -> Result<Self, ConfigError> {
        let params = format!(
            "t_h={} t_g={} gct={} rcc={}",
            config.t_h, config.t_g, config.gct_entries, config.rcc_entries
        );
        let sram_bytes = HydraStorage::for_instance(&config).total_sram_bytes();
        Ok(HydraTracker {
            inner: Hydra::new(config)?,
            params,
            sram_bytes,
        })
    }

    /// The wrapped tracker.
    pub fn inner(&self) -> &Hydra {
        &self.inner
    }
}

impl Tracker for HydraTracker {
    fn activate(&mut self, row: RowAddr, now: MemCycle, kind: ActivationKind) -> TrackerDecision {
        let response = self.inner.on_activation(row, now, kind);
        TrackerDecision::from_response(response, ActStats::default())
    }

    fn window_reset(&mut self, now: MemCycle) {
        self.inner.reset_window(now);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn sram_bits(&self) -> u64 {
        self.sram_bytes.saturating_mul(8)
    }

    fn max_spillover(&self) -> u64 {
        // GCT group counts over-attribute per-row activity by design; the
        // number of group spills bounds how often that slack bit.
        self.inner.stats().group_spills
    }
}

/// Graphene (Misra-Gries per bank) as an arena contender.
#[derive(Debug, Clone)]
pub struct GrapheneTracker {
    inner: Graphene,
    params: String,
}

impl GrapheneTracker {
    /// Builds a Graphene instance sized for `t_rh` against a worst case of
    /// `act_max_per_bank` activations per bank per window.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a bad channel or degenerate threshold.
    pub fn for_threshold(
        geometry: MemGeometry,
        channel: u8,
        t_rh: u32,
        act_max_per_bank: u64,
    ) -> Result<Self, ConfigError> {
        let config = GrapheneConfig::for_threshold(geometry, channel, t_rh, act_max_per_bank)?;
        let params = format!(
            "threshold={} entries_per_bank={}",
            config.threshold, config.entries_per_bank
        );
        Ok(GrapheneTracker {
            inner: Graphene::new(config),
            params,
        })
    }
}

impl Tracker for GrapheneTracker {
    fn activate(&mut self, row: RowAddr, now: MemCycle, kind: ActivationKind) -> TrackerDecision {
        let response = self.inner.on_activation(row, now, kind);
        TrackerDecision::from_response(response, ActStats::default())
    }

    fn window_reset(&mut self, now: MemCycle) {
        self.inner.reset_window(now);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn sram_bits(&self) -> u64 {
        self.inner.sram_bytes().saturating_mul(8)
    }

    fn max_spillover(&self) -> u64 {
        self.inner.max_spillover()
    }
}

/// CRA (per-row DRAM counters behind an SRAM counter cache) as an arena
/// contender.
#[derive(Debug, Clone)]
pub struct CraTracker {
    inner: Cra,
    params: String,
}

impl CraTracker {
    /// Builds a CRA instance sized for `t_rh` with `total_cache_bytes` of
    /// counter cache split across channels.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a bad channel or degenerate cache.
    pub fn for_threshold(
        geometry: MemGeometry,
        channel: u8,
        t_rh: u32,
        total_cache_bytes: usize,
    ) -> Result<Self, ConfigError> {
        let config = CraConfig::for_threshold(geometry, channel, t_rh, total_cache_bytes)?;
        let params = format!(
            "threshold={} cache_bytes={}",
            config.threshold, config.cache_bytes
        );
        Ok(CraTracker {
            inner: Cra::new(config)?,
            params,
        })
    }
}

impl Tracker for CraTracker {
    fn activate(&mut self, row: RowAddr, now: MemCycle, kind: ActivationKind) -> TrackerDecision {
        let response = self.inner.on_activation(row, now, kind);
        TrackerDecision::from_response(response, ActStats::default())
    }

    fn window_reset(&mut self, now: MemCycle) {
        self.inner.reset_window(now);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn sram_bits(&self) -> u64 {
        self.inner.sram_bytes().saturating_mul(8)
    }
}

/// PARA (stateless probabilistic mitigation) as an arena contender.
#[derive(Debug, Clone)]
pub struct ParaTracker {
    inner: Para,
    params: String,
}

impl ParaTracker {
    /// Builds a PARA instance whose per-activation mitigation probability
    /// targets failure probability `p_fail` per aggressor at `t_rh`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a degenerate threshold or probability.
    pub fn for_threshold(t_rh: u32, p_fail: f64, seed: u64) -> Result<Self, ConfigError> {
        let inner = Para::for_threshold(t_rh, p_fail, seed)?;
        let params = format!(
            "p={:.6} p_fail={:e} seed={}",
            inner.probability(),
            p_fail,
            seed
        );
        Ok(ParaTracker { inner, params })
    }
}

impl Tracker for ParaTracker {
    fn activate(&mut self, row: RowAddr, now: MemCycle, kind: ActivationKind) -> TrackerDecision {
        let response = self.inner.on_activation(row, now, kind);
        TrackerDecision::from_response(response, ActStats::default())
    }

    fn window_reset(&mut self, now: MemCycle) {
        self.inner.reset_window(now);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn sram_bits(&self) -> u64 {
        0
    }
}

/// Vendor-style TRR as an arena contender.
///
/// The shipped [`VendorTrr`] is deliberately weak (1–16 tracked rows, the
/// TRRespass narrative). The arena provisions it with enough per-bank
/// entries to track *every* distinct row a window can produce — the only
/// way a first-come sampler meets the security contract — so the
/// leaderboard shows what honest TRR actually costs in SRAM.
#[derive(Debug, Clone)]
pub struct TrrTracker {
    inner: VendorTrr,
    params: String,
}

impl TrrTracker {
    /// Builds a TRR sampler mitigating at `t_rh / 2` with `capacity`
    /// tracked rows per bank.
    ///
    /// For the sampler to be sound, `capacity` must cover every distinct
    /// row one window can activate in a bank; the roster derives it from
    /// the timing's activations-per-window bound.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero capacity/threshold or a bad channel.
    pub fn provisioned(
        geometry: MemGeometry,
        channel: u8,
        t_rh: u32,
        capacity: usize,
    ) -> Result<Self, ConfigError> {
        let threshold = (t_rh / 2).max(1);
        let inner = VendorTrr::new(geometry, channel, threshold, capacity)?;
        let params = format!("threshold={threshold} capacity={capacity}");
        Ok(TrrTracker { inner, params })
    }

    /// Activations the sampler failed to observe (0 when provisioned
    /// soundly).
    pub fn escaped_activations(&self) -> u64 {
        self.inner.escaped_activations()
    }
}

impl Tracker for TrrTracker {
    fn activate(&mut self, row: RowAddr, now: MemCycle, kind: ActivationKind) -> TrackerDecision {
        let response = self.inner.on_activation(row, now, kind);
        TrackerDecision::from_response(response, ActStats::default())
    }

    fn window_reset(&mut self, now: MemCycle) {
        self.inner.reset_window(now);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn sram_bits(&self) -> u64 {
        self.inner.sram_bytes().saturating_mul(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_types::ActivationKind::Demand;

    #[test]
    fn hydra_adapter_matches_concrete_hydra_call_for_call() {
        let geometry = MemGeometry::tiny();
        let config = match HydraConfig::builder(geometry, 0)
            .thresholds(16, 12)
            .gct_entries(64)
            .rcc_entries(32)
            .build()
        {
            Ok(c) => c,
            Err(e) => panic!("config: {e}"),
        };
        let mut concrete = match Hydra::new(config.clone()) {
            Ok(h) => h,
            Err(e) => panic!("hydra: {e}"),
        };
        let mut adapted = match HydraTracker::new(config) {
            Ok(t) => t,
            Err(e) => panic!("adapter: {e}"),
        };
        for i in 0..5_000u64 {
            let row = RowAddr::new(0, 0, (i % 4) as u8, (i % 97) as u32);
            let want = concrete.on_activation(row, i, Demand);
            let got = adapted.activate(row, i, Demand).into_response();
            assert_eq!(got, want, "diverged at activation {i}");
            if i % 1_000 == 999 {
                concrete.reset_window(i);
                adapted.window_reset(i);
            }
        }
        assert_eq!(adapted.inner().stats(), concrete.stats());
        assert_eq!(adapted.name(), "hydra");
        assert!(adapted.sram_bits() > 0);
    }

    #[test]
    fn baseline_adapters_expose_names_and_params() {
        let g = MemGeometry::tiny();
        let graphene = match GrapheneTracker::for_threshold(g, 0, 64, 10_000) {
            Ok(t) => t,
            Err(e) => panic!("graphene: {e}"),
        };
        assert_eq!(graphene.name(), "graphene");
        assert!(
            graphene.params().contains("entries_per_bank"),
            "{}",
            graphene.params()
        );
        assert!(graphene.sram_bits() > 0);

        let cra = match CraTracker::for_threshold(g, 0, 64, 4_096) {
            Ok(t) => t,
            Err(e) => panic!("cra: {e}"),
        };
        assert_eq!(cra.name(), "cra");

        let para = match ParaTracker::for_threshold(500, 1e-9, 7) {
            Ok(t) => t,
            Err(e) => panic!("para: {e}"),
        };
        assert_eq!(para.name(), "para");
        assert_eq!(para.sram_bits(), 0);

        let trr = match TrrTracker::provisioned(g, 0, 64, 4_096) {
            Ok(t) => t,
            Err(e) => panic!("trr: {e}"),
        };
        assert_eq!(trr.name(), "vendor-trr");
        assert!(trr.sram_bits() > 0);
    }
}
