//! CoMeT: count-min-sketch row tracking with RCT-style exact recounting
//! (Bostancı et al., HPCA 2024; arxiv 2402.18769).
//!
//! CoMeT splits tracking into two tiers per bank:
//!
//! 1. A **count-min sketch** (the shared [`CountMinSketch`] from
//!    `hydra-baselines`) counts every activation. Sketch estimates are
//!    one-sided: they never under-count, so a row whose estimate is below
//!    the early threshold provably has fewer true activations than it.
//! 2. A small **recent-aggressor table (RAT)** recounts exactly. When a
//!    row's sketch estimate crosses the early threshold `T_early`, the row
//!    is promoted into the RAT *seeded with its sketch estimate* — an upper
//!    bound on its true count — and counted exactly from then on. When its
//!    RAT count reaches `T_H`, the row is mitigated and its RAT count reset
//!    to zero (the entry stays resident, so the over-estimating sketch is
//!    never consulted again for it this window).
//!
//! Safety argument (the ShadowOracle contract): every activation of a
//! non-resident row bumps its sketch estimate, and estimate ≥ true count,
//! so by the time a row has `T_early` true activations it is either
//! RAT-resident or the RAT was full — and a full RAT mitigates the
//! incoming row immediately (safe: the row just activated, so a mitigation
//! is never spurious). RAT counts over-approximate true counts (seeded
//! with an over-estimate, incremented exactly), so mitigation fires at or
//! before the `T_H`-th true activation. With `T_H = T_RH / 2` and both
//! tiers cleared at every window reset, the window-split argument bounds
//! unmitigated accumulation by `2·(T_H − 1) < T_RH`.

use crate::tracker::{ActStats, Tracker, TrackerDecision};
use hydra_baselines::sketch::CountMinSketch;
use hydra_types::{ActivationKind, ConfigError, MemCycle, MemGeometry, RowAddr};
use std::collections::HashMap;

/// CoMeT configuration. See the module docs for the roles of the fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CometConfig {
    /// Mitigation threshold per window (`T_RH / 2`).
    pub t_h: u32,
    /// Sketch estimate at which a row is promoted into the RAT. Must be
    /// at most `t_h` (the paper uses a small fraction of it).
    pub t_early: u32,
    /// Count-min sketch buckets per hash row, per bank.
    pub width: usize,
    /// Count-min sketch hash rows, per bank.
    pub depth: usize,
    /// Recent-aggressor-table entries per bank.
    pub rat_entries: usize,
}

impl CometConfig {
    /// The paper-flavored sizing for Row-Hammer threshold `t_rh`: promote
    /// at `T_H / 4`, 512×4 sketch counters and a 128-entry RAT per bank.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for `t_rh < 4`.
    pub fn for_threshold(t_rh: u32) -> Result<Self, ConfigError> {
        if t_rh < 4 {
            return Err(ConfigError::new(format!(
                "row-hammer threshold {t_rh} too small for CoMeT (min 4)"
            )));
        }
        let t_h = t_rh / 2;
        Ok(CometConfig {
            t_h,
            t_early: (t_h / 4).max(1),
            width: 512,
            depth: 4,
            rat_entries: 128,
        })
    }
}

/// One bank's two-tier state.
#[derive(Debug, Clone)]
struct BankState {
    sketch: CountMinSketch,
    /// Exact recounting table: row → count upper bound since the last
    /// mitigation (seeded with the sketch estimate at promotion).
    rat: HashMap<u32, u64>,
}

/// The CoMeT tracker for one channel. See the module docs.
#[derive(Debug, Clone)]
pub struct Comet {
    config: CometConfig,
    banks_per_rank: u8,
    channel: u8,
    banks: Vec<BankState>,
    /// Mitigations issued because the RAT was full (the safe fallback).
    rat_full_mitigations: u64,
    mitigations: u64,
}

impl Comet {
    /// Creates a CoMeT instance for one channel of `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a bad channel or a degenerate config
    /// (`t_early > t_h`, zero-sized tables).
    pub fn new(
        geometry: MemGeometry,
        channel: u8,
        config: CometConfig,
    ) -> Result<Self, ConfigError> {
        if channel >= geometry.channels() {
            return Err(ConfigError::new("channel out of range"));
        }
        if config.t_h == 0 || config.t_early == 0 || config.t_early > config.t_h {
            return Err(ConfigError::new(
                "CoMeT thresholds must satisfy 0 < t_early <= t_h",
            ));
        }
        if config.width == 0 || config.depth == 0 || config.rat_entries == 0 {
            return Err(ConfigError::new("CoMeT tables must be nonzero"));
        }
        let nbanks =
            usize::from(geometry.ranks_per_channel()) * usize::from(geometry.banks_per_rank());
        let banks = (0..nbanks)
            .map(|_| BankState {
                sketch: CountMinSketch::new(config.width, config.depth),
                rat: HashMap::with_capacity(config.rat_entries),
            })
            .collect();
        Ok(Comet {
            config,
            banks_per_rank: geometry.banks_per_rank(),
            channel,
            banks,
            rat_full_mitigations: 0,
            mitigations: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CometConfig {
        &self.config
    }

    /// Mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Mitigations forced by RAT exhaustion (0 when the RAT is sized to
    /// the workload).
    pub fn rat_full_mitigations(&self) -> u64 {
        self.rat_full_mitigations
    }

    fn bank_index(&self, row: RowAddr) -> usize {
        usize::from(row.rank) * usize::from(self.banks_per_rank) + usize::from(row.bank)
    }
}

impl Tracker for Comet {
    fn activate(&mut self, row: RowAddr, _now: MemCycle, _kind: ActivationKind) -> TrackerDecision {
        debug_assert_eq!(row.channel, self.channel);
        let t_h = u64::from(self.config.t_h);
        let idx = self.bank_index(row);
        let rat_entries = self.config.rat_entries;
        let bank = &mut self.banks[idx];

        if let Some(count) = bank.rat.get_mut(&row.row) {
            // Tier 2: exact recounting.
            *count = count.saturating_add(1);
            let estimate = *count;
            if estimate >= t_h {
                *count = 0;
                self.mitigations += 1;
                return TrackerDecision::mitigate(row).with_stats(ActStats {
                    estimate,
                    tracked: true,
                });
            }
            return TrackerDecision::none().with_stats(ActStats {
                estimate,
                tracked: true,
            });
        }

        // Tier 1: sketch counting.
        let estimate = bank.sketch.increment(u64::from(row.row));
        if estimate < u64::from(self.config.t_early) {
            return TrackerDecision::none().with_stats(ActStats {
                estimate,
                tracked: false,
            });
        }
        // Promotion. A sketch estimate at/above T_H mitigates right away
        // (the seed would trip the exact tier on its next activation
        // anyway); otherwise the row recounts exactly from its upper bound.
        if bank.rat.len() >= rat_entries {
            // RAT full: mitigate the incoming row now. Never spurious —
            // this very activation touched it.
            self.rat_full_mitigations += 1;
            self.mitigations += 1;
            return TrackerDecision::mitigate(row).with_stats(ActStats {
                estimate,
                tracked: false,
            });
        }
        if estimate >= t_h {
            bank.rat.insert(row.row, 0);
            self.mitigations += 1;
            return TrackerDecision::mitigate(row).with_stats(ActStats {
                estimate,
                tracked: true,
            });
        }
        bank.rat.insert(row.row, estimate);
        TrackerDecision::none().with_stats(ActStats {
            estimate,
            tracked: true,
        })
    }

    fn window_reset(&mut self, _now: MemCycle) {
        for bank in &mut self.banks {
            bank.sketch.clear();
            bank.rat.clear();
        }
    }

    fn name(&self) -> &str {
        "comet"
    }

    fn params(&self) -> String {
        format!(
            "t_h={} t_early={} width={} depth={} rat={}",
            self.config.t_h,
            self.config.t_early,
            self.config.width,
            self.config.depth,
            self.config.rat_entries
        )
    }

    fn sram_bits(&self) -> u64 {
        // Per bank: width × depth sketch counters at 16 bits (saturating at
        // T_H ≤ 2400 for every swept threshold) plus RAT entries holding a
        // row id (~17 bits in the paper's geometry, kept at 17 here) and an
        // exact counter (up to 2^ceil(log2 T_H)); see
        // `hydra_baselines::storage::comet_bytes_per_rank` for the analytic
        // paper-scale model this instance model mirrors.
        let counter_bits = 16u64;
        let sketch_bits = (self.config.width as u64)
            .saturating_mul(self.config.depth as u64)
            .saturating_mul(counter_bits);
        let rat_entry_bits = 17 + u64::from(u32::BITS - self.config.t_h.leading_zeros());
        let rat_bits = (self.config.rat_entries as u64).saturating_mul(rat_entry_bits);
        (self.banks.len() as u64).saturating_mul(sketch_bits.saturating_add(rat_bits))
    }

    fn max_spillover(&self) -> u64 {
        // Sketch collision slack: the worst gap between a row's sketch
        // estimate and the sketch's total÷width lower bound is not tracked
        // per row; report the classic 2N/w error bound instead.
        self.banks
            .iter()
            .map(|b| 2 * b.sketch.total() / b.sketch.width() as u64)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_types::ActivationKind::Demand;

    fn comet(t_rh: u32) -> Comet {
        let config = match CometConfig::for_threshold(t_rh) {
            Ok(c) => c,
            Err(e) => panic!("config: {e}"),
        };
        match Comet::new(MemGeometry::tiny(), 0, config) {
            Ok(c) => c,
            Err(e) => panic!("comet: {e}"),
        }
    }

    #[test]
    fn single_aggressor_is_mitigated_at_or_before_t_h() {
        let mut c = comet(64);
        let row = RowAddr::new(0, 0, 0, 7);
        let mut first_mitigation = None;
        for i in 1..=64u64 {
            let d = c.activate(row, i, Demand);
            if !d.mitigations.is_empty() && first_mitigation.is_none() {
                first_mitigation = Some(i);
            }
        }
        let at = first_mitigation.expect("aggressor must be mitigated");
        assert!(at <= 32, "mitigated at {at}, after T_H");
        assert!(c.mitigations() >= 1);
    }

    #[test]
    fn promotion_seeds_the_rat_with_the_estimate() {
        let mut c = comet(64); // t_h = 32, t_early = 8
        let row = RowAddr::new(0, 0, 0, 7);
        for i in 1..=8u64 {
            let d = c.activate(row, i, Demand);
            let expected_tracked = i >= 8;
            assert_eq!(d.stats.tracked, expected_tracked, "act {i}");
        }
        // Exactly at promotion the estimate equals the true count (no
        // collisions with a single key): the seed is exact here.
        let d = c.activate(row, 9, Demand);
        assert_eq!(d.stats.estimate, 9);
    }

    #[test]
    fn rat_full_falls_back_to_immediate_mitigation() {
        let config = CometConfig {
            t_h: 16,
            t_early: 1,
            width: 64,
            depth: 4,
            rat_entries: 2,
        };
        let mut c = match Comet::new(MemGeometry::tiny(), 0, config) {
            Ok(c) => c,
            Err(e) => panic!("comet: {e}"),
        };
        // Three distinct rows, t_early = 1: the third promotion finds the
        // RAT full and must mitigate instead of going untracked.
        for r in 0..2u32 {
            c.activate(RowAddr::new(0, 0, 0, r), 0, Demand);
        }
        let d = c.activate(RowAddr::new(0, 0, 0, 2), 0, Demand);
        assert_eq!(d.mitigations.len(), 1);
        assert_eq!(c.rat_full_mitigations(), 1);
    }

    #[test]
    fn window_reset_clears_both_tiers() {
        let mut c = comet(64);
        let row = RowAddr::new(0, 0, 0, 7);
        for i in 0..20u64 {
            c.activate(row, i, Demand);
        }
        c.window_reset(100);
        let d = c.activate(row, 101, Demand);
        assert_eq!(d.stats.estimate, 1, "fresh window starts from scratch");
        assert!(!d.stats.tracked);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(CometConfig::for_threshold(2).is_err());
        let mut bad = match CometConfig::for_threshold(64) {
            Ok(c) => c,
            Err(e) => panic!("config: {e}"),
        };
        bad.t_early = bad.t_h + 1;
        assert!(Comet::new(MemGeometry::tiny(), 0, bad).is_err());
        let ok = match CometConfig::for_threshold(64) {
            Ok(c) => c,
            Err(e) => panic!("config: {e}"),
        };
        assert!(Comet::new(MemGeometry::tiny(), 9, ok).is_err());
    }

    #[test]
    fn sram_bits_scale_with_geometry_and_tables() {
        let c = comet(1000);
        // tiny: 1 rank × 4 banks; 512×4 16-bit counters + 128 RAT entries.
        let banks = 4u64;
        let sketch = 512 * 4 * 16;
        let rat = 128 * (17 + 9); // t_h = 500 → 9 counter bits
        assert_eq!(c.sram_bits(), banks * (sketch + rat));
    }
}
