//! The cross-tracker Pareto leaderboard: `hydra sweep --arena` and the
//! `hydra-arena-v1` wire format.
//!
//! An [`ArenaGrid`] is the cross product of roster trackers, Row-Hammer
//! thresholds, and workloads. Each [`ArenaCell`] is one full
//! activation-level simulation of one tracker, run **under the shadow
//! oracle** ([`hydra_sim::oracle::ShadowOracle`]) so every leaderboard row
//! carries a machine-checked security verdict next to its performance
//! numbers: a tracker that wins the Pareto race by letting aggressors
//! through is disqualified by its own `oracle_violations` field, not by
//! reviewer vigilance.
//!
//! Cells run through the parallel batch harness (`hydra_sim::batch`) with
//! the same determinism contract as `hydra sweep`: a cell's result depends
//! only on the cell, results are reported in grid order, and `--jobs 4`
//! produces byte-identical rows to `--jobs 1` once the one
//! nondeterministic field (`wall_secs`, emitted last) is excluded —
//! [`ArenaRow::deterministic_json`] is that projection and the CI
//! `arena-smoke` job diffs it across job counts.
//!
//! # The two scales
//!
//! The simulation runs at *bench scale* (a window compressed by
//! [`WINDOW_SCALE`], the same compression every other gate in the
//! workspace uses), so slowdown, mitigations, and spillover are measured.
//! The SRAM axis, however, is reported at *paper scale* via
//! [`paper_sram_bits`] — each tracker's analytic storage model from
//! [`hydra_baselines::storage`] evaluated at DDR4 provisioning
//! (`ACT_MAX_PER_BANK`, 16 banks/rank). Mixing instance SRAM with paper
//! SRAM would be incoherent: the Graphene baseline already reports
//! paper-scale storage, and a leaderboard that compared a bench-scaled
//! Hydra against a paper-scaled Graphene would flatter Hydra for free.
//!
//! The summary line reduces the grid two ways: a four-axis Pareto frontier
//! (SRAM bits, slowdown, mitigations, max spillover — all minimized) and
//! the paper's Figure 5 shape recomputed per (workload, `T_RH`) group:
//! Hydra must need less SRAM than Graphene while staying within a slowdown
//! tolerance of it ([`Fig5Check`]).

use crate::roster::{build_tracker, roster_names, CRA_CACHE_BYTES};
use crate::tracker::ArenaAdapter;
use hydra_baselines::storage;
use hydra_core::HydraStorage;
use hydra_dram::DramTiming;
use hydra_sim::batch::{BatchConfig, BatchJob, BatchRunner, JobStatus};
use hydra_sim::oracle::ShadowOracle;
use hydra_sim::ActivationSim;
use hydra_types::addr::RowAddr;
use hydra_types::deadline::Stopwatch;
use hydra_types::error::ConfigError;
use hydra_types::geometry::MemGeometry;
use hydra_workloads::attacks::AttackPattern;
use hydra_workloads::registry;
use hydra_workloads::TraceSource as _;
use std::fmt::Write as _;

/// Version tag stamped on every `hydra sweep --arena` JSONL line. This
/// constant is the only place the literal may appear in library code
/// (enforced by `repo-lint`'s schema-single-source rule).
pub const ARENA_SCHEMA_VERSION: &str = "hydra-arena-v1";

/// Refresh-window scaling applied to every arena cell, matching the bench
/// harness and `hydra sweep`: a short run still crosses many tracking
/// windows.
const WINDOW_SCALE: u64 = 1000;

/// Figure-5 slowdown tolerance, in percentage points: Hydra's slowdown may
/// exceed Graphene's by at most this much and still count as matching the
/// paper's shape (both are sub-1% at paper scale; the tolerance absorbs
/// bench-scale noise without letting an order-of-magnitude regression by).
const FIG5_SLOWDOWN_TOLERANCE_PCT: f64 = 5.0;

/// A declarative arena grid. Cells are the cross product of every list, in
/// deterministic nested order: workload (outermost), then `t_rh`, then
/// tracker (innermost), so one (workload, threshold) race reads as a
/// contiguous block of the output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaGrid {
    /// Geometry name (`tiny`, `isca22`, or `ddr5`).
    pub geometry: String,
    /// Roster tracker names to race.
    pub trackers: Vec<String>,
    /// Row-Hammer thresholds to race at.
    pub t_rh: Vec<u32>,
    /// Workload names: registry workloads or canonical attack patterns.
    pub workloads: Vec<String>,
    /// Demand activations per cell.
    pub acts: u64,
    /// Trace seed shared by every cell.
    pub seed: u64,
}

impl ArenaGrid {
    /// The CI smoke grid: the full roster at one ultra-low threshold on one
    /// benign and one attack workload. Small enough to finish in seconds,
    /// wide enough that every tracker runs under the oracle and the
    /// Figure-5 check has both of its contestants.
    pub fn smoke() -> Self {
        ArenaGrid {
            geometry: "tiny".to_string(),
            trackers: roster_names().iter().map(|s| (*s).to_string()).collect(),
            t_rh: vec![500],
            workloads: vec!["gups".to_string(), "double_sided".to_string()],
            acts: 6_000,
            seed: 42,
        }
    }

    /// The full leaderboard grid: the roster × the paper's threshold sweep
    /// (`T_RH` ∈ {4800, 1000, 500}, Fig. 5) × one benign workload plus
    /// every canonical attack pattern.
    pub fn full() -> Self {
        ArenaGrid {
            geometry: "tiny".to_string(),
            trackers: roster_names().iter().map(|s| (*s).to_string()).collect(),
            t_rh: vec![4800, 1000, 500],
            workloads: vec![
                "gups".to_string(),
                "single_sided".to_string(),
                "double_sided".to_string(),
                "many_sided".to_string(),
                "half_double".to_string(),
                "thrash".to_string(),
            ],
            acts: 50_000,
            seed: 42,
        }
    }

    /// Resolves the geometry name.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an unknown name.
    pub fn resolve_geometry(&self) -> Result<MemGeometry, ConfigError> {
        match self.geometry.as_str() {
            "tiny" => Ok(MemGeometry::tiny()),
            "isca22" => Ok(MemGeometry::isca22_baseline()),
            "ddr5" => Ok(MemGeometry::ddr5_32gb()),
            other => Err(ConfigError::new(format!("unknown geometry {other}"))),
        }
    }

    /// Expands the grid into cells, in deterministic nested order.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry is unknown, any list is
    /// empty, a tracker is not on the roster, or a workload name is neither
    /// a registry workload nor a canonical attack pattern.
    pub fn cells(&self) -> Result<Vec<ArenaCell>, ConfigError> {
        let geometry = self.resolve_geometry()?;
        for (name, len) in [
            ("trackers", self.trackers.len()),
            ("t_rh", self.t_rh.len()),
            ("workloads", self.workloads.len()),
        ] {
            if len == 0 {
                return Err(ConfigError::new(format!("empty arena axis {name}")));
            }
        }
        for tracker in &self.trackers {
            if !roster_names().contains(&tracker.as_str()) {
                return Err(ConfigError::new(format!(
                    "unknown arena tracker '{tracker}' (roster: {})",
                    roster_names().join(", ")
                )));
            }
        }
        let mut cells = Vec::new();
        for workload in &self.workloads {
            if registry::by_name(workload).is_none()
                && AttackPattern::canonical(workload, geometry).is_none()
            {
                return Err(ConfigError::new(format!("unknown workload {workload}")));
            }
            for &t_rh in &self.t_rh {
                for tracker in &self.trackers {
                    cells.push(ArenaCell {
                        geometry,
                        geometry_name: self.geometry.clone(),
                        tracker: tracker.clone(),
                        workload: workload.clone(),
                        t_rh,
                        acts: self.acts,
                        seed: self.seed,
                    });
                }
            }
        }
        Ok(cells)
    }
}

/// One point of the arena: a (tracker, threshold, workload) triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaCell {
    /// Resolved geometry.
    pub geometry: MemGeometry,
    /// The geometry's name, carried into the output row.
    pub geometry_name: String,
    /// Roster tracker name.
    pub tracker: String,
    /// Workload or attack-pattern name.
    pub workload: String,
    /// Row-Hammer threshold.
    pub t_rh: u32,
    /// Demand activations to replay.
    pub acts: u64,
    /// Trace seed.
    pub seed: u64,
}

impl ArenaCell {
    /// The cell's stable label (also the batch-job label).
    pub fn label(&self) -> String {
        format!("{}/{}/trh{}", self.tracker, self.workload, self.t_rh)
    }

    /// Materializes the cell's activation stream: a registry workload's
    /// trace mapped to rows, or a canonical attack pattern, pinned to
    /// channel 0 (arena cells route their whole stream to one instance,
    /// like sweep cells).
    ///
    /// # Errors
    ///
    /// Returns a description if the workload name resolves to neither.
    pub fn rows(&self) -> Result<Vec<RowAddr>, String> {
        if let Some(spec) = registry::by_name(&self.workload) {
            let mut trace = spec.build(self.geometry, 256, self.seed);
            return Ok((0..self.acts)
                .map(|_| {
                    let mut row = self.geometry.row_of_line(trace.next_op().addr);
                    row.channel = 0;
                    row
                })
                .collect());
        }
        let pattern = AttackPattern::canonical(&self.workload, self.geometry)
            .ok_or_else(|| format!("unknown workload {}", self.workload))?;
        let mut rows = pattern.rows(self.geometry);
        Ok((0..self.acts)
            .map(|_| {
                let mut row = rows.next_row();
                row.channel = 0;
                row
            })
            .collect())
    }

    /// Runs the cell: builds the tracker from the roster, wraps it in the
    /// shadow oracle, replays the stream, and reduces to one [`ArenaRow`].
    ///
    /// # Errors
    ///
    /// Returns a description of any configuration or workload failure.
    pub fn run(&self) -> Result<ArenaRow, String> {
        let timing = DramTiming::ddr4_3200().with_scaled_window(WINDOW_SCALE);
        let window_acts = timing.max_activations_per_window();
        let tracker = build_tracker(
            &self.tracker,
            self.geometry,
            0,
            self.t_rh,
            self.seed,
            window_acts,
        )
        .map_err(|e| e.to_string())?;
        let params = crate::tracker::Tracker::params(&tracker);
        let sram_bits = paper_sram_bits(&self.tracker, self.t_rh).map_err(|e| e.to_string())?;
        let oracle = ShadowOracle::new(ArenaAdapter::new(tracker), self.t_rh);
        let mut sim = ActivationSim::new(self.geometry, oracle).with_timing(timing);
        let rows = self.rows()?;
        let start = Stopwatch::start();
        let report = sim.run(rows);
        let wall_secs = start.elapsed_nanos() as f64 / 1e9;
        let oracle = sim.into_tracker();
        let oracle_report = oracle.report();
        let tracker = oracle.into_inner().into_inner();
        Ok(ArenaRow {
            tracker: self.tracker.clone(),
            params,
            workload: self.workload.clone(),
            geometry: self.geometry_name.clone(),
            t_rh: self.t_rh,
            acts: self.acts,
            seed: self.seed,
            sram_bits,
            demand_acts: report.demand_acts,
            mitigation_acts: report.mitigation_acts,
            side_reads: report.side_reads,
            side_writes: report.side_writes,
            mitigations: report.mitigations,
            window_resets: report.window_resets,
            max_spillover: crate::tracker::Tracker::max_spillover(&tracker),
            oracle_violations: oracle_report.violations_total,
            worst_unmitigated: oracle_report.worst_unmitigated,
            wall_secs,
        })
    }
}

/// The paper-scale SRAM cost of a roster tracker at `t_rh`, in bits: the
/// analytic storage model from [`hydra_baselines::storage`] (or Hydra's own
/// [`HydraStorage`]) evaluated at DDR4 provisioning. This is the
/// leaderboard's SRAM axis — instance `sram_bits()` would mix bench-scaled
/// and paper-scaled numbers (see the module docs).
///
/// # Errors
///
/// Returns [`ConfigError`] for a name not on the roster (or a threshold
/// Hydra's own provisioning rule rejects).
pub fn paper_sram_bits(tracker: &str, t_rh: u32) -> Result<u64, ConfigError> {
    let banks = storage::DDR4_BANKS_PER_RANK;
    let act_max = storage::ACT_MAX_PER_BANK;
    let bits = match tracker {
        "hydra" => {
            let config =
                crate::roster::hydra_config_for_threshold(MemGeometry::isca22_baseline(), 0, t_rh)?;
            HydraStorage::for_instance(&config)
                .total_sram_bytes()
                .saturating_mul(8)
        }
        "graphene" => storage::graphene_bytes_per_rank(t_rh, act_max, banks) * 8,
        "cra" => (CRA_CACHE_BYTES as u64) * 8,
        "para" => 0,
        "vendor-trr" => {
            // Honest TRR: enough per-bank entries for every distinct row a
            // full-scale window can activate (the roster's soundness rule at
            // paper scale). Each entry holds a row tag and an activation
            // counter — the leaderboard's answer to why samplers undersample.
            let entries = 2 * act_max;
            let counter_bits = u64::from(32 - (t_rh / 2).max(2).leading_zeros());
            u64::from(banks) * entries * (17 + counter_bits)
        }
        "comet" => storage::comet_bytes_per_rank(t_rh, banks) * 8,
        "abacus" => storage::abacus_bytes_per_rank(t_rh, act_max, banks) * 8,
        "mint" => storage::mint_bytes_per_rank(t_rh, banks) * 8,
        "start" => storage::start_bytes_per_rank(t_rh, act_max, banks) * 8,
        other => {
            return Err(ConfigError::new(format!(
                "unknown arena tracker '{other}' (roster: {})",
                roster_names().join(", ")
            )));
        }
    };
    Ok(bits)
}

/// One `hydra-arena-v1` result row. Every field except `wall_secs` is a
/// pure function of the cell, so rows compare identically across job
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaRow {
    /// Roster tracker name.
    pub tracker: String,
    /// The tracker instance's provisioning summary.
    pub params: String,
    /// Workload name.
    pub workload: String,
    /// Geometry name.
    pub geometry: String,
    /// Row-Hammer threshold.
    pub t_rh: u32,
    /// Demand activations requested.
    pub acts: u64,
    /// Trace seed.
    pub seed: u64,
    /// Paper-scale SRAM cost ([`paper_sram_bits`]).
    pub sram_bits: u64,
    /// Demand activations replayed.
    pub demand_acts: u64,
    /// Victim-refresh activations.
    pub mitigation_acts: u64,
    /// Tracker metadata reads.
    pub side_reads: u64,
    /// Tracker metadata writes.
    pub side_writes: u64,
    /// Mitigations issued.
    pub mitigations: u64,
    /// Tracking-window resets.
    pub window_resets: u64,
    /// The tracker's worst counting spillover (tracker-specific; see
    /// [`crate::tracker::Tracker::max_spillover`]).
    pub max_spillover: u64,
    /// Shadow-oracle contract breaches — **0 for every sound tracker**.
    pub oracle_violations: u64,
    /// Worst true activation count the oracle ever saw on an unmitigated
    /// row (current + previous window); must stay below `t_rh`.
    pub worst_unmitigated: u64,
    /// Wall-clock seconds for this cell — the one nondeterministic field,
    /// emitted last and excluded from
    /// [`deterministic_json`](Self::deterministic_json).
    pub wall_secs: f64,
}

impl ArenaRow {
    /// Total DRAM operations charged.
    pub fn total_ops(&self) -> u64 {
        self.demand_acts + self.mitigation_acts + self.side_reads + self.side_writes
    }

    /// Simulated slowdown proxy: extra DRAM operations per demand
    /// activation, as a percentage.
    pub fn slowdown_pct(&self) -> f64 {
        if self.demand_acts == 0 {
            0.0
        } else {
            (self.total_ops() as f64 / self.demand_acts as f64 - 1.0) * 100.0
        }
    }

    /// Exact slowdown comparison: is `self` strictly slower than `other`?
    /// Cross-multiplied integer ratios, so the answer never depends on
    /// floating-point rounding.
    pub fn slower_than(&self, other: &ArenaRow) -> bool {
        let (a_ops, a_acts) = (
            u128::from(self.total_ops()),
            u128::from(self.demand_acts.max(1)),
        );
        let (b_ops, b_acts) = (
            u128::from(other.total_ops()),
            u128::from(other.demand_acts.max(1)),
        );
        a_ops * b_acts > b_ops * a_acts
    }

    /// The deterministic projection of this row, shared by both
    /// serializations (every field except `wall_secs`), without the
    /// closing brace.
    fn json_body(&self) -> String {
        let mut out = String::with_capacity(448);
        out.push_str("{\"schema\":\"");
        out.push_str(ARENA_SCHEMA_VERSION);
        out.push_str("\",\"kind\":\"cell\",\"tracker\":\"");
        escape_into(&self.tracker, &mut out);
        out.push_str("\",\"params\":\"");
        escape_into(&self.params, &mut out);
        out.push_str("\",\"workload\":\"");
        escape_into(&self.workload, &mut out);
        out.push_str("\",\"geometry\":\"");
        escape_into(&self.geometry, &mut out);
        let _ = write!(
            out,
            concat!(
                "\",\"t_rh\":{},\"acts\":{},\"seed\":{},\"sram_bits\":{},",
                "\"demand_acts\":{},\"mitigation_acts\":{},\"side_reads\":{},",
                "\"side_writes\":{},\"mitigations\":{},\"window_resets\":{},",
                "\"max_spillover\":{},\"oracle_violations\":{},",
                "\"worst_unmitigated\":{},\"slowdown_pct\":{:.4}"
            ),
            self.t_rh,
            self.acts,
            self.seed,
            self.sram_bits,
            self.demand_acts,
            self.mitigation_acts,
            self.side_reads,
            self.side_writes,
            self.mitigations,
            self.window_resets,
            self.max_spillover,
            self.oracle_violations,
            self.worst_unmitigated,
            self.slowdown_pct(),
        );
        out
    }

    /// The full JSONL line, `wall_secs` last.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.json_body();
        let _ = write!(out, ",\"wall_secs\":{:.6}}}", self.wall_secs);
        out
    }

    /// The row without its wall-clock field — identical across `--jobs`
    /// settings; the determinism gate diffs exactly this.
    pub fn deterministic_json(&self) -> String {
        let mut out = self.json_body();
        out.push('}');
        out
    }
}

/// One Figure-5 shape check: within a (workload, `T_RH`) group, Hydra
/// against Graphene. The paper's claim (Fig. 5 + Table 1) is that Hydra
/// matches Graphene's performance at a fraction of its SRAM as `T_RH`
/// falls — so `sram_ok` demands strictly less paper-scale SRAM and
/// `slowdown_ok` demands slowdown within [`FIG5_SLOWDOWN_TOLERANCE_PCT`]
/// points.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Check {
    /// Workload name of the group.
    pub workload: String,
    /// Row-Hammer threshold of the group.
    pub t_rh: u32,
    /// Hydra's paper-scale SRAM bits.
    pub hydra_sram_bits: u64,
    /// Graphene's paper-scale SRAM bits.
    pub graphene_sram_bits: u64,
    /// True iff Hydra needs strictly less SRAM.
    pub sram_ok: bool,
    /// Hydra's slowdown in the group.
    pub hydra_slowdown_pct: f64,
    /// Graphene's slowdown in the group.
    pub graphene_slowdown_pct: f64,
    /// True iff Hydra's slowdown is within tolerance of Graphene's.
    pub slowdown_ok: bool,
    /// Both conditions.
    pub ok: bool,
}

/// The result of a whole arena run.
#[derive(Debug, Clone)]
pub struct ArenaOutcome {
    /// The grid that produced it.
    pub grid: ArenaGrid,
    /// Completed rows, in grid order.
    pub rows: Vec<ArenaRow>,
    /// Labels and errors of cells that failed terminally.
    pub failures: Vec<String>,
}

impl ArenaOutcome {
    /// Indices (into [`rows`](Self::rows)) of the Pareto frontier
    /// minimizing (SRAM bits, slowdown, mitigations, max spillover),
    /// ascending.
    pub fn pareto(&self) -> Vec<usize> {
        arena_pareto(&self.rows)
    }

    /// Figure-5 shape checks, one per (workload, `T_RH`) group where both
    /// Hydra and Graphene completed.
    pub fn fig5_checks(&self) -> Vec<Fig5Check> {
        let mut keys: Vec<(&str, u32)> = self
            .rows
            .iter()
            .map(|r| (r.workload.as_str(), r.t_rh))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let mut checks = Vec::new();
        for (workload, t_rh) in keys {
            let find = |name: &str| {
                self.rows
                    .iter()
                    .find(|r| r.tracker == name && r.workload == workload && r.t_rh == t_rh)
            };
            let (Some(hydra), Some(graphene)) = (find("hydra"), find("graphene")) else {
                continue;
            };
            let sram_ok = hydra.sram_bits < graphene.sram_bits;
            let slowdown_ok =
                hydra.slowdown_pct() <= graphene.slowdown_pct() + FIG5_SLOWDOWN_TOLERANCE_PCT;
            checks.push(Fig5Check {
                workload: workload.to_string(),
                t_rh,
                hydra_sram_bits: hydra.sram_bits,
                graphene_sram_bits: graphene.sram_bits,
                sram_ok,
                hydra_slowdown_pct: hydra.slowdown_pct(),
                graphene_slowdown_pct: graphene.slowdown_pct(),
                slowdown_ok,
                ok: sram_ok && slowdown_ok,
            });
        }
        checks
    }

    /// True iff at least one Figure-5 check exists at `t_rh` and all of
    /// them pass. The CI gate asserts this at `T_RH = 500`, the paper's
    /// ultra-low operating point, where Graphene's SRAM must already dwarf
    /// Hydra's; at high thresholds Graphene is legitimately small and the
    /// SRAM condition may not hold.
    pub fn fig5_ok_at(&self, t_rh: u32) -> bool {
        let mut any = false;
        for check in self.fig5_checks() {
            if check.t_rh == t_rh {
                any = true;
                if !check.ok {
                    return false;
                }
            }
        }
        any
    }

    /// True iff every completed row passed the shadow oracle.
    pub fn oracle_clean(&self) -> bool {
        self.rows.iter().all(|r| r.oracle_violations == 0)
    }

    /// The complete `hydra-arena-v1` report: a meta line, one line per
    /// cell (in grid order, `wall_secs` last), and a summary line with the
    /// Pareto frontier and Figure-5 checks.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.rows.len() + 2);
        lines.push(self.meta_line());
        lines.extend(self.rows.iter().map(ArenaRow::to_jsonl));
        lines.push(self.summary_line());
        lines
    }

    /// The deterministic projection used by the `--jobs` equivalence gate:
    /// every line of [`jsonl_lines`](Self::jsonl_lines) except that cell
    /// rows drop `wall_secs`.
    pub fn deterministic_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.rows.len() + 2);
        lines.push(self.meta_line());
        lines.extend(self.rows.iter().map(ArenaRow::deterministic_json));
        lines.push(self.summary_line());
        lines
    }

    fn meta_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"");
        out.push_str(ARENA_SCHEMA_VERSION);
        out.push_str("\",\"kind\":\"meta\",\"geometry\":\"");
        escape_into(&self.grid.geometry, &mut out);
        out.push_str("\",\"trackers\":[");
        for (i, t) in self.grid.trackers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(t, &mut out);
            out.push('"');
        }
        out.push_str("],\"workloads\":[");
        for (i, w) in self.grid.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(w, &mut out);
            out.push('"');
        }
        let _ = write!(
            out,
            "],\"t_rh\":{:?},\"acts\":{},\"seed\":{}}}",
            self.grid.t_rh, self.grid.acts, self.grid.seed,
        );
        out
    }

    fn summary_line(&self) -> String {
        let pareto = self.pareto();
        let fig5 = self.fig5_checks();
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":\"");
        out.push_str(ARENA_SCHEMA_VERSION);
        let _ = write!(
            out,
            "\",\"kind\":\"summary\",\"cells\":{},\"failed\":{},\"oracle_clean\":{},\"pareto\":[",
            self.rows.len() + self.failures.len(),
            self.failures.len(),
            self.oracle_clean(),
        );
        for (i, &idx) in pareto.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let row = &self.rows[idx];
            let _ = write!(
                out,
                concat!(
                    "{{\"tracker\":\"{}\",\"workload\":\"{}\",\"t_rh\":{},",
                    "\"sram_bits\":{},\"slowdown_pct\":{:.4},\"mitigations\":{},",
                    "\"max_spillover\":{}}}"
                ),
                row.tracker,
                row.workload,
                row.t_rh,
                row.sram_bits,
                row.slowdown_pct(),
                row.mitigations,
                row.max_spillover,
            );
        }
        out.push_str("],\"fig5\":[");
        for (i, c) in fig5.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                concat!(
                    "{{\"workload\":\"{}\",\"t_rh\":{},\"hydra_sram_bits\":{},",
                    "\"graphene_sram_bits\":{},\"sram_ok\":{},",
                    "\"hydra_slowdown_pct\":{:.4},\"graphene_slowdown_pct\":{:.4},",
                    "\"slowdown_ok\":{},\"ok\":{}}}"
                ),
                c.workload,
                c.t_rh,
                c.hydra_sram_bits,
                c.graphene_sram_bits,
                c.sram_ok,
                c.hydra_slowdown_pct,
                c.graphene_slowdown_pct,
                c.slowdown_ok,
                c.ok,
            );
        }
        let _ = write!(out, "],\"fig5_ok\":{}}}", fig5.iter().all(|c| c.ok));
        out
    }
}

/// One arena cell as a batch job, so the harness's panic isolation,
/// watchdog, and retries apply per cell.
pub struct ArenaCellJob {
    cell: ArenaCell,
}

impl BatchJob for ArenaCellJob {
    type Output = ArenaRow;

    fn label(&self) -> String {
        self.cell.label()
    }

    fn run(&self, _attempt: u32) -> Result<ArenaRow, String> {
        self.cell.run()
    }

    fn replay_artifact(&self) -> Option<String> {
        let c = &self.cell;
        Some(format!(
            "hydra-arena-replay\ntracker={}\nworkload={}\ngeometry={}\n\
             t_rh={}\nacts={}\nseed={}\n",
            c.tracker, c.workload, c.geometry_name, c.t_rh, c.acts, c.seed,
        ))
    }
}

/// Expands `grid` and runs every cell through the batch harness with the
/// given policy (`batch.jobs` controls parallelism). Rows come back in
/// grid order regardless of completion order.
///
/// # Errors
///
/// Returns [`ConfigError`] if the grid itself is invalid; individual cell
/// failures are reported in [`ArenaOutcome::failures`], not as errors.
pub fn run_arena(grid: &ArenaGrid, batch: BatchConfig) -> Result<ArenaOutcome, ConfigError> {
    let cells = grid.cells()?;
    let jobs: Vec<ArenaCellJob> = cells
        .into_iter()
        .map(|cell| ArenaCellJob { cell })
        .collect();
    let report = BatchRunner::new(batch).run(jobs);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for job in report.jobs {
        match (job.status, job.output) {
            (JobStatus::Succeeded { .. }, Some(row)) => rows.push(row),
            (JobStatus::Failed { last_error, .. }, _) => {
                failures.push(format!("{}: {last_error}", job.label));
            }
            (JobStatus::TimedOut { .. }, _) => {
                failures.push(format!("{}: watchdog timeout", job.label));
            }
            (JobStatus::Succeeded { .. }, None) => {
                failures.push(format!("{}: succeeded without output", job.label));
            }
        }
    }
    Ok(ArenaOutcome {
        grid: grid.clone(),
        rows,
        failures,
    })
}

/// Indices of the rows not dominated on (SRAM bits, slowdown, mitigations,
/// max spillover), all minimized. Row `a` dominates row `b` when it is no
/// worse on every axis and strictly better on at least one; slowdown is
/// compared exactly (integer cross-multiplication). Ascending index order.
pub fn arena_pareto(rows: &[ArenaRow]) -> Vec<usize> {
    let dominates = |a: &ArenaRow, b: &ArenaRow| {
        let no_worse = a.sram_bits <= b.sram_bits
            && a.mitigations <= b.mitigations
            && a.max_spillover <= b.max_spillover
            && !a.slower_than(b);
        let better = a.sram_bits < b.sram_bits
            || a.mitigations < b.mitigations
            || a.max_spillover < b.max_spillover
            || b.slower_than(a);
        no_worse && better
    };
    (0..rows.len())
        .filter(|&i| !rows.iter().any(|other| dominates(other, &rows[i])))
        .collect()
}

/// Escapes a string for embedding in a JSON literal.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(
        tracker: &str,
        workload: &str,
        t_rh: u32,
        sram: u64,
        mitigations: u64,
        spill: u64,
    ) -> ArenaRow {
        ArenaRow {
            tracker: tracker.to_string(),
            params: String::new(),
            workload: workload.to_string(),
            geometry: "tiny".to_string(),
            t_rh,
            acts: 1000,
            seed: 42,
            sram_bits: sram,
            demand_acts: 1000,
            mitigation_acts: 4 * mitigations,
            side_reads: 0,
            side_writes: 0,
            mitigations,
            window_resets: 3,
            max_spillover: spill,
            oracle_violations: 0,
            worst_unmitigated: t_rh as u64 / 2,
            wall_secs: 0.5,
        }
    }

    #[test]
    fn smoke_grid_expands_workload_major_tracker_minor() {
        let grid = ArenaGrid::smoke();
        let cells = match grid.cells() {
            Ok(c) => c,
            Err(e) => panic!("cells: {e}"),
        };
        assert_eq!(cells.len(), 18, "2 workloads × 1 T_RH × 9 trackers");
        assert_eq!(cells[0].workload, "gups");
        assert_eq!(cells[0].tracker, "hydra");
        assert_eq!(cells[8].tracker, "start");
        assert_eq!(cells[9].workload, "double_sided");
        assert_eq!(cells[0].label(), "hydra/gups/trh500");
    }

    #[test]
    fn full_grid_covers_the_paper_thresholds_and_all_attacks() {
        let grid = ArenaGrid::full();
        assert_eq!(grid.t_rh, vec![4800, 1000, 500]);
        assert_eq!(grid.workloads.len(), 6);
        assert!(grid.trackers.len() >= 9);
        let cells = match grid.cells() {
            Ok(c) => c,
            Err(e) => panic!("cells: {e}"),
        };
        assert_eq!(cells.len(), 6 * 3 * grid.trackers.len());
    }

    #[test]
    fn invalid_grids_are_rejected() {
        let mut grid = ArenaGrid::smoke();
        grid.trackers = vec!["no-such-tracker".to_string()];
        assert!(grid.cells().is_err());
        let mut grid = ArenaGrid::smoke();
        grid.workloads = vec!["no-such-workload".to_string()];
        assert!(grid.cells().is_err());
        let mut grid = ArenaGrid::smoke();
        grid.geometry = "no-such-geometry".to_string();
        assert!(grid.cells().is_err());
        let mut grid = ArenaGrid::smoke();
        grid.t_rh.clear();
        assert!(grid.cells().is_err());
    }

    #[test]
    fn deterministic_json_drops_only_wall_secs() {
        let mut a = row("hydra", "gups", 500, 1000, 5, 0);
        let mut b = a.clone();
        b.wall_secs = 99.0;
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert_ne!(a.to_jsonl(), b.to_jsonl());
        let det = a.deterministic_json();
        assert!(det.contains("\"schema\":\"hydra-arena-v1\""));
        assert!(det.contains("\"oracle_violations\":0"));
        assert!(!det.contains("wall_secs"));
        a.mitigations = 6;
        assert_ne!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn pareto_respects_all_four_axes() {
        let rows = vec![
            row("a", "gups", 500, 1000, 10, 5), // dominated by index 2
            row("b", "gups", 500, 2000, 2, 5),  // frontier: fewest mitigations
            row("c", "gups", 500, 1000, 5, 5),  // frontier: cheapest non-dominated
            row("d", "gups", 500, 4000, 5, 0),  // frontier: only via the spillover axis
        ];
        assert_eq!(arena_pareto(&rows), vec![1, 2, 3]);
    }

    #[test]
    fn fig5_checks_compare_hydra_against_graphene_per_group() {
        let outcome = ArenaOutcome {
            grid: ArenaGrid::smoke(),
            rows: vec![
                row("hydra", "gups", 500, 1000, 5, 0),
                row("graphene", "gups", 500, 9000, 5, 0),
                // At 4800 Graphene is legitimately smaller: sram_ok fails.
                row("hydra", "gups", 4800, 1000, 5, 0),
                row("graphene", "gups", 4800, 500, 5, 0),
                // No graphene partner: no check emitted.
                row("hydra", "double_sided", 500, 1000, 5, 0),
            ],
            failures: Vec::new(),
        };
        let checks = outcome.fig5_checks();
        assert_eq!(checks.len(), 2);
        assert!(outcome.fig5_ok_at(500));
        assert!(!outcome.fig5_ok_at(4800));
        assert!(!outcome.fig5_ok_at(1000), "no group at 1000 → not ok");
        let summary = match outcome.jsonl_lines().pop() {
            Some(s) => s,
            None => panic!("summary line missing"),
        };
        assert!(summary.contains("\"fig5\":["), "{summary}");
        assert!(summary.contains("\"fig5_ok\":false"), "{summary}");
    }

    #[test]
    fn paper_sram_axis_reproduces_the_table_1_ordering() {
        let bits = |name: &str, t_rh: u32| match paper_sram_bits(name, t_rh) {
            Ok(b) => b,
            Err(e) => panic!("{name}@{t_rh}: {e}"),
        };
        // Hydra's headline: ~1/6 of Graphene's SRAM at T_RH = 500.
        assert!(bits("hydra", 500) < bits("graphene", 500));
        // Graphene's table grows as the threshold falls; MINT's cursors
        // only shrink (a lower threshold means a shorter sampling interval).
        assert!(bits("graphene", 500) > bits("graphene", 1000));
        assert!(bits("mint", 500) <= bits("mint", 4800));
        assert!(bits("mint", 500) < 1024, "MINT stays under a kilobit");
        assert_eq!(bits("para", 500), 0);
        // Honest TRR is the cautionary tale: orders of magnitude above all.
        assert!(bits("vendor-trr", 500) > 100 * bits("graphene", 500));
        assert!(paper_sram_bits("no-such-tracker", 500).is_err());
    }

    #[test]
    fn a_cell_runs_under_the_oracle_end_to_end() {
        let cell = ArenaCell {
            geometry: MemGeometry::tiny(),
            geometry_name: "tiny".to_string(),
            tracker: "mint".to_string(),
            workload: "single_sided".to_string(),
            t_rh: 500,
            acts: 2_000,
            seed: 42,
        };
        let row = match cell.run() {
            Ok(r) => r,
            Err(e) => panic!("cell: {e}"),
        };
        assert_eq!(row.demand_acts, 2_000);
        assert!(row.mitigations > 0, "a hammered row must draw samples");
        assert_eq!(row.oracle_violations, 0, "MINT must hold the contract");
        assert!(row.worst_unmitigated < 500);
        assert!(row.sram_bits > 0);
        assert!(row.params.contains("interval"), "{}", row.params);
    }

    #[test]
    fn run_arena_reports_rows_in_grid_order() {
        let grid = ArenaGrid {
            geometry: "tiny".to_string(),
            trackers: vec!["para".to_string(), "mint".to_string()],
            t_rh: vec![500],
            workloads: vec!["single_sided".to_string()],
            acts: 1_500,
            seed: 42,
        };
        let outcome = match run_arena(&grid, BatchConfig::default()) {
            Ok(o) => o,
            Err(e) => panic!("arena: {e}"),
        };
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert_eq!(outcome.rows.len(), 2);
        assert_eq!(outcome.rows[0].tracker, "para");
        assert_eq!(outcome.rows[1].tracker, "mint");
        assert!(outcome.oracle_clean());
        let lines = outcome.jsonl_lines();
        assert_eq!(lines.len(), 4, "meta + 2 cells + summary");
        assert!(lines[0].contains("\"kind\":\"meta\""));
        assert!(lines[3].contains("\"kind\":\"summary\""));
    }
}
