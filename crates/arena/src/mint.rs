//! MINT: a minimalist in-DRAM interval sampler
//! (Qureshi & Saxena, MICRO 2024; arxiv 2408.16343).
//!
//! MINT keeps no per-row counters at all. Each bank divides its
//! activation stream into fixed-length **intervals**; within every
//! interval a seeded generator pre-selects one slot, and the row whose
//! activation lands on that slot is mitigated. An aggressor that performs
//! `k` activations in a window is therefore sampled with probability
//! `1 − (1 − 1/I)^k`; with the paper-flavored interval `I = T_H / 16`, a
//! row that accrues `T_H` activations is missed with probability
//! ≈ `e^−16` ≈ 1.1 × 10⁻⁷ per window. Mitigations are never spurious:
//! only the row of the current activation is ever mitigated.
//!
//! Unlike PARA's per-activation coin flip, the interval structure gives
//! MINT a *fixed* mitigation budget — exactly one neighbor refresh per
//! `I` activations per bank — which is what lets it live inside the DRAM
//! die on a fixed RFM cadence. Its on-chip state is just the slot cursor,
//! the chosen slot, and the RNG: tens of bits per bank, the smallest
//! nonzero SRAM point in the arena.
//!
//! The generator is the workspace's deterministic xoshiro256++
//! [`SmallRng`]: a seed fully determines the run, so leaderboard cells and
//! oracle fixtures are reproducible.

use crate::tracker::{ActStats, Tracker, TrackerDecision};
use hydra_types::{ActivationKind, ConfigError, MemCycle, MemGeometry, RowAddr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// MINT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MintConfig {
    /// Activations per sampling interval, per bank.
    pub interval: u32,
    /// RNG seed (the run is fully deterministic given it).
    pub seed: u64,
}

impl MintConfig {
    /// Paper-flavored sizing for Row-Hammer threshold `t_rh`: interval
    /// `T_H / 16` (with `T_H = t_rh / 2`), so an aggressor reaching `T_H`
    /// activations in a window escapes sampling with probability ≈ `e^−16`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for `t_rh < 4`.
    pub fn for_threshold(t_rh: u32, seed: u64) -> Result<Self, ConfigError> {
        if t_rh < 4 {
            return Err(ConfigError::new(format!(
                "row-hammer threshold {t_rh} too small for MINT (min 4)"
            )));
        }
        Ok(MintConfig {
            interval: (t_rh / 2 / 16).max(1),
            seed,
        })
    }
}

/// One bank's interval cursor.
#[derive(Debug, Clone, Copy)]
struct BankCursor {
    /// Position within the current interval (`0..interval`).
    pos: u32,
    /// The pre-selected slot to sample this interval.
    target: u32,
}

/// The MINT tracker for one channel. See the module docs.
#[derive(Debug, Clone)]
pub struct Mint {
    config: MintConfig,
    channel: u8,
    banks_per_rank: u8,
    banks: Vec<BankCursor>,
    rng: SmallRng,
    mitigations: u64,
}

impl Mint {
    /// Creates a MINT instance for one channel of `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a bad channel or a zero interval.
    pub fn new(
        geometry: MemGeometry,
        channel: u8,
        config: MintConfig,
    ) -> Result<Self, ConfigError> {
        if channel >= geometry.channels() {
            return Err(ConfigError::new("channel out of range"));
        }
        if config.interval == 0 {
            return Err(ConfigError::new("MINT interval must be nonzero"));
        }
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let nbanks =
            usize::from(geometry.ranks_per_channel()) * usize::from(geometry.banks_per_rank());
        let banks = (0..nbanks)
            .map(|_| BankCursor {
                pos: 0,
                target: rng.gen_range(0..config.interval),
            })
            .collect();
        Ok(Mint {
            config,
            channel,
            banks_per_rank: geometry.banks_per_rank(),
            banks,
            rng,
            mitigations: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &MintConfig {
        &self.config
    }

    /// Mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    fn bank_index(&self, row: RowAddr) -> usize {
        usize::from(row.rank) * usize::from(self.banks_per_rank) + usize::from(row.bank)
    }
}

impl Tracker for Mint {
    fn activate(&mut self, row: RowAddr, _now: MemCycle, _kind: ActivationKind) -> TrackerDecision {
        debug_assert_eq!(row.channel, self.channel);
        let interval = self.config.interval;
        let idx = self.bank_index(row);
        let sampled = self.banks[idx].pos == self.banks[idx].target;
        self.banks[idx].pos += 1;
        if self.banks[idx].pos >= interval {
            self.banks[idx].pos = 0;
            self.banks[idx].target = self.rng.gen_range(0..interval);
        }
        if sampled {
            self.mitigations += 1;
            TrackerDecision::mitigate(row).with_stats(ActStats {
                estimate: 0,
                tracked: false,
            })
        } else {
            TrackerDecision::none()
        }
    }

    fn window_reset(&mut self, _now: MemCycle) {
        // Restart every bank's interval; the RNG keeps advancing (the seed
        // determines the whole run, not each window).
        let interval = self.config.interval;
        for bank in &mut self.banks {
            bank.pos = 0;
            bank.target = self.rng.gen_range(0..interval);
        }
    }

    fn name(&self) -> &str {
        "mint"
    }

    fn params(&self) -> String {
        format!(
            "interval={} seed={}",
            self.config.interval, self.config.seed
        )
    }

    fn sram_bits(&self) -> u64 {
        // Per bank: the slot cursor and the chosen slot, each
        // ceil(log2 interval) bits, plus one shared 256-bit xoshiro state.
        let slot_bits = u64::from(u32::BITS - self.config.interval.leading_zeros()).max(1);
        (self.banks.len() as u64).saturating_mul(2 * slot_bits) + 256
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_types::ActivationKind::Demand;

    fn mint(interval: u32, seed: u64) -> Mint {
        let config = MintConfig { interval, seed };
        match Mint::new(MemGeometry::tiny(), 0, config) {
            Ok(m) => m,
            Err(e) => panic!("mint: {e}"),
        }
    }

    #[test]
    fn samples_exactly_once_per_interval() {
        let mut m = mint(16, 7);
        let row = RowAddr::new(0, 0, 0, 42);
        for interval in 0..50u64 {
            let mut hits = 0;
            for i in 0..16u64 {
                let d = m.activate(row, interval * 16 + i, Demand);
                hits += d.mitigations.len();
            }
            assert_eq!(hits, 1, "interval {interval}");
        }
        assert_eq!(m.mitigations(), 50);
    }

    #[test]
    fn only_the_activated_row_is_ever_mitigated() {
        let mut m = mint(8, 3);
        for i in 0..500u64 {
            let row = RowAddr::new(0, 0, (i % 4) as u8, (i % 97) as u32);
            for mitigation in &m.activate(row, i, Demand).mitigations {
                assert_eq!(mitigation.aggressor, row);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut m = mint(8, seed);
            let mut hits = Vec::new();
            for i in 0..200u64 {
                let row = RowAddr::new(0, 0, 0, (i % 13) as u32);
                if !m.activate(row, i, Demand).mitigations.is_empty() {
                    hits.push(i);
                }
            }
            hits
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn banks_sample_independently() {
        let mut m = mint(4, 11);
        // Drive only bank 2; bank 0's cursor must not advance.
        for i in 0..12u64 {
            m.activate(RowAddr::new(0, 0, 2, 5), i, Demand);
        }
        assert_eq!(m.banks[0].pos, 0);
        assert_eq!(m.banks[2].pos, 0); // 12 acts = 3 full intervals
        assert_eq!(m.mitigations(), 3);
    }

    #[test]
    fn for_threshold_follows_the_interval_rule() {
        let c = match MintConfig::for_threshold(1000, 1) {
            Ok(c) => c,
            Err(e) => panic!("config: {e}"),
        };
        assert_eq!(c.interval, 31); // T_H = 500 → 500/16
        let tiny = match MintConfig::for_threshold(4, 1) {
            Ok(c) => c,
            Err(e) => panic!("config: {e}"),
        };
        assert_eq!(tiny.interval, 1); // clamped
        assert!(MintConfig::for_threshold(2, 1).is_err());
    }

    #[test]
    fn sram_is_tens_of_bits_per_bank() {
        let m = mint(31, 1);
        // tiny: 4 banks × 2×5 bits + 256-bit RNG.
        assert_eq!(m.sram_bits(), 4 * 10 + 256);
        assert!(m.sram_bits() < 8 * 100, "MINT must stay under 100 bytes");
    }
}
