//! Cross-tracker arena: every Row-Hammer tracker in the workspace behind
//! one [`Tracker`] trait, raced on a schema-versioned Pareto leaderboard.
//!
//! The Hydra paper (ISCA 2022) argues its hybrid SRAM/DRAM design by
//! comparing against a *generation* of trackers — per-bank frequent-item
//! tables (Graphene), per-row DRAM counters (CRA), probabilistic samplers
//! (PARA), and vendor TRR. Since then the design space has kept moving:
//! CoMeT (HPCA 2024) replaces Hydra's per-row initialization traffic with
//! count-min sketches, ABACuS (USENIX Security 2024) collapses per-bank
//! counters into shared all-bank entries, MINT (MICRO 2024) shows how far
//! pure interval sampling goes inside the DRAM die, and START (HPCA 2024)
//! allocates counter storage lazily at cache-line granularity. This crate
//! puts all of them on one footing:
//!
//! * [`tracker`] — the [`Tracker`] trait ([`TrackerDecision`],
//!   [`ActStats`]), the [`BoxedTracker`] object type, and
//!   [`ArenaAdapter`], which lifts any arena tracker into a
//!   [`hydra_types::ActivationTracker`] so the existing simulator
//!   ([`hydra_sim::ActivationSim`]), sanitizer
//!   ([`hydra_sim::oracle::ShadowOracle`]), and sharded engine run it
//!   unchanged.
//! * [`adapters`] — shims over the trackers the workspace already ships:
//!   Hydra itself plus the Graphene/CRA/PARA/TRR baselines. The Hydra shim
//!   is proven call-for-call identical to the concrete path
//!   (`tests/adapter_equivalence.rs`), so racing Hydra in the arena cannot
//!   disturb any existing gate.
//! * [`comet`], [`abacus`], [`mint`], [`start`] — the four successor
//!   trackers as first-class citizens, each with its documented safety
//!   argument.
//! * [`roster`] — named constructors building every contender for a given
//!   (geometry, channel, `T_RH`, seed, window budget).
//! * [`leaderboard`] — the `hydra sweep --arena` engine: every tracker ×
//!   threshold × workload cell runs under the shadow oracle and lands in a
//!   JSONL leaderboard (schema [`leaderboard::ARENA_SCHEMA_VERSION`]) with
//!   a four-axis Pareto frontier (SRAM bits, slowdown, mitigations,
//!   counting spillover) — the cross-tracker generalization of the paper's
//!   Figure 5.
//! * [`fixtures`] — sabotage wrappers (dropped mitigations, wrong-row
//!   mitigations, undercounting) that the oracle test matrix must flag,
//!   guarding the guards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abacus;
pub mod adapters;
pub mod comet;
pub mod fixtures;
pub mod leaderboard;
pub mod mint;
pub mod roster;
pub mod start;
pub mod tracker;

pub use abacus::{Abacus, AbacusConfig};
pub use adapters::{CraTracker, GrapheneTracker, HydraTracker, ParaTracker, TrrTracker};
pub use comet::{Comet, CometConfig};
pub use leaderboard::{
    paper_sram_bits, run_arena, ArenaGrid, ArenaOutcome, ArenaRow, Fig5Check, ARENA_SCHEMA_VERSION,
};
pub use mint::{Mint, MintConfig};
pub use roster::{build_tracker, hydra_config_for_threshold, roster_names};
pub use start::{Start, StartConfig};
pub use tracker::{ActStats, ArenaAdapter, BoxedTracker, Tracker, TrackerDecision};
