//! The arena [`Tracker`] trait and its bridge onto the simulator.
//!
//! # Trait contract
//!
//! A [`Tracker`] is a Row-Hammer mitigation mechanism viewed from the
//! memory controller: it observes every row activation and decides which
//! aggressor rows to mitigate (neighbor-refresh) and what metadata traffic
//! to issue. The contract mirrors
//! [`hydra_types::ActivationTracker`] — the trait every production tracker
//! in this workspace already implements — and adds the introspection the
//! leaderboard needs (`sram_bits`, `params`, `max_spillover`):
//!
//! * [`Tracker::activate`] is called once per activation (demand, victim
//!   refresh, or tracker side traffic — all three disturb neighbors) and
//!   returns a [`TrackerDecision`].
//! * [`Tracker::window_reset`] is called once per 64 ms tracking window.
//! * Implementations must be deterministic given the call sequence;
//!   probabilistic trackers (MINT, PARA) take a seed at construction.
//!
//! # Bridging
//!
//! [`ArenaAdapter`] lifts any [`Tracker`] into an
//! [`hydra_types::ActivationTracker`], so the existing
//! [`hydra_sim::ActivationSim`] replayer, the
//! [`hydra_sim::oracle::ShadowOracle`] sanitizer, and the sharded engine
//! all run arena trackers unchanged. The adapter is a zero-cost shim: it
//! moves the decision's mitigation/side-request vectors straight into the
//! [`hydra_types::TrackerResponse`] without copying, so the proptest in
//! `tests/adapter_equivalence.rs` can require the adapter path to be
//! *byte-identical* to driving the wrapped tracker directly.

use hydra_types::{
    ActivationKind, ActivationTracker, MemCycle, MitigationRequest, RowAddr, SideRequest,
    TrackerResponse,
};

/// Per-activation introspection a tracker reports alongside its decision.
///
/// Diagnostic only: nothing downstream branches on these values, so a
/// tracker that cannot produce them cheaply reports zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActStats {
    /// The tracker's best post-activation count estimate for the reported
    /// row (0 when the tracker does not expose one).
    pub estimate: u64,
    /// Whether the row is resident in the tracker's tables after this
    /// activation.
    pub tracked: bool,
}

/// A tracker's reply to one activation: what to mitigate, what metadata
/// traffic to issue, and what it believes about the row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackerDecision {
    /// Rows that reached the tracker's threshold and must be mitigated.
    pub mitigations: Vec<MitigationRequest>,
    /// Extra DRAM traffic (metadata reads/writes) to schedule.
    pub side_requests: Vec<SideRequest>,
    /// Per-activation introspection.
    pub stats: ActStats,
}

impl TrackerDecision {
    /// A decision requesting nothing.
    pub fn none() -> Self {
        TrackerDecision::default()
    }

    /// A decision requesting a single mitigation and no side traffic.
    pub fn mitigate(aggressor: RowAddr) -> Self {
        TrackerDecision {
            mitigations: vec![MitigationRequest::new(aggressor)],
            side_requests: Vec::new(),
            stats: ActStats::default(),
        }
    }

    /// Wraps an existing [`TrackerResponse`] (from an
    /// [`ActivationTracker`]) without copying its vectors.
    pub fn from_response(response: TrackerResponse, stats: ActStats) -> Self {
        TrackerDecision {
            mitigations: response.mitigations,
            side_requests: response.side_requests,
            stats,
        }
    }

    /// Attaches stats to the decision.
    pub fn with_stats(mut self, stats: ActStats) -> Self {
        self.stats = stats;
        self
    }

    /// Converts into the simulator-facing response, dropping the stats.
    pub fn into_response(self) -> TrackerResponse {
        TrackerResponse {
            mitigations: self.mitigations,
            side_requests: self.side_requests,
        }
    }
}

/// A Row-Hammer tracker as raced in the arena. See the module docs for the
/// full contract.
pub trait Tracker {
    /// Reports one activation of `row` at time `now`; returns the tracker's
    /// decision.
    fn activate(&mut self, row: RowAddr, now: MemCycle, kind: ActivationKind) -> TrackerDecision;

    /// Starts a new tracking window (called once per 64 ms refresh window).
    fn window_reset(&mut self, now: MemCycle);

    /// Stable tracker name (the leaderboard's row key).
    fn name(&self) -> &str;

    /// Human-readable parameter summary (threshold, table sizes, seed, …).
    fn params(&self) -> String;

    /// On-chip state in bits (the leaderboard's instance-SRAM axis).
    fn sram_bits(&self) -> u64;

    /// Worst counting over-estimate the tracker has accrued (Misra-Gries
    /// spillover, sketch collision slack, …). Exact trackers report 0.
    fn max_spillover(&self) -> u64 {
        0
    }
}

impl<T: Tracker + ?Sized> Tracker for Box<T> {
    fn activate(&mut self, row: RowAddr, now: MemCycle, kind: ActivationKind) -> TrackerDecision {
        (**self).activate(row, now, kind)
    }

    fn window_reset(&mut self, now: MemCycle) {
        (**self).window_reset(now)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn params(&self) -> String {
        (**self).params()
    }

    fn sram_bits(&self) -> u64 {
        (**self).sram_bits()
    }

    fn max_spillover(&self) -> u64 {
        (**self).max_spillover()
    }
}

/// A boxed arena tracker (the roster's common currency). `Send` so a
/// boxed contender can be built inside an engine shard worker.
pub type BoxedTracker = Box<dyn Tracker + Send>;

/// Lifts an arena [`Tracker`] into an [`ActivationTracker`], so the
/// existing simulator, sanitizer, and sharded engine run it unchanged.
#[derive(Debug, Clone)]
pub struct ArenaAdapter<T> {
    inner: T,
}

impl<T: Tracker> ArenaAdapter<T> {
    /// Wraps `inner`.
    pub fn new(inner: T) -> Self {
        ArenaAdapter { inner }
    }

    /// The wrapped tracker.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped tracker, mutably.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Tracker> ActivationTracker for ArenaAdapter<T> {
    fn on_activation(
        &mut self,
        row: RowAddr,
        now: MemCycle,
        kind: ActivationKind,
    ) -> TrackerResponse {
        self.inner.activate(row, now, kind).into_response()
    }

    fn reset_window(&mut self, now: MemCycle) {
        self.inner.window_reset(now);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn sram_bytes(&self) -> u64 {
        self.inner.sram_bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mitigates every `n`-th activation of any row.
    struct EveryNth {
        n: u64,
        seen: u64,
    }

    impl Tracker for EveryNth {
        fn activate(
            &mut self,
            row: RowAddr,
            _now: MemCycle,
            _kind: ActivationKind,
        ) -> TrackerDecision {
            self.seen += 1;
            if self.seen.is_multiple_of(self.n) {
                TrackerDecision::mitigate(row).with_stats(ActStats {
                    estimate: self.seen,
                    tracked: true,
                })
            } else {
                TrackerDecision::none()
            }
        }

        fn window_reset(&mut self, _now: MemCycle) {
            self.seen = 0;
        }

        fn name(&self) -> &str {
            "every-nth"
        }

        fn params(&self) -> String {
            format!("n={}", self.n)
        }

        fn sram_bits(&self) -> u64 {
            12
        }
    }

    #[test]
    fn adapter_forwards_decisions_and_rounds_sram_up() {
        let mut a = ArenaAdapter::new(EveryNth { n: 2, seen: 0 });
        let row = RowAddr::new(0, 0, 0, 7);
        assert!(a.on_activation(row, 0, ActivationKind::Demand).is_empty());
        let r = a.on_activation(row, 1, ActivationKind::Demand);
        assert_eq!(r.mitigations.len(), 1);
        assert_eq!(r.mitigations[0].aggressor, row);
        assert_eq!(a.name(), "every-nth");
        // 12 bits → 2 bytes.
        assert_eq!(a.sram_bytes(), 2);
        a.reset_window(5);
        assert_eq!(a.inner().seen, 0);
    }

    #[test]
    fn boxed_tracker_delegates() {
        let mut b: BoxedTracker = Box::new(EveryNth { n: 1, seen: 0 });
        assert_eq!(b.name(), "every-nth");
        assert_eq!(b.params(), "n=1");
        assert_eq!(b.sram_bits(), 12);
        assert_eq!(b.max_spillover(), 0);
        let d = b.activate(RowAddr::new(0, 0, 0, 1), 0, ActivationKind::Demand);
        assert_eq!(d.mitigations.len(), 1);
        assert_eq!(d.stats.estimate, 1);
        b.window_reset(1);
    }

    #[test]
    fn decision_round_trips_a_response() {
        let row = RowAddr::new(0, 0, 1, 9);
        let mut resp = TrackerResponse::mitigate(row);
        resp.side_requests.push(SideRequest::read(row));
        let d = TrackerDecision::from_response(resp.clone(), ActStats::default());
        assert_eq!(d.into_response(), resp);
    }
}
