//! START: scalable tracking for any Row-Hammer threshold
//! (Saxena & Qureshi, HPCA 2024; arxiv 2308.14889).
//!
//! START's insight is that reserving a dedicated counter per DRAM row is
//! wasteful because a 64 ms window touches only a small slice of the row
//! space: tracking state can be allocated *lazily, at cache-line
//! granularity*, the way START carves counter lines out of a configurable
//! fraction of the LLC. This reproduction models that storage discipline
//! directly:
//!
//! * Rows are partitioned into **groups** of `group_rows` consecutive rows
//!   (one group ≈ one counter cache line). A group's counter storage is
//!   allocated the first time any of its rows activates; an untouched
//!   group costs nothing.
//! * Counters are exact. When a row's count reaches `T_H` it is mitigated
//!   and its counter resets — per-row, not per-group.
//! * The allocation pool is capped at `max_groups` per channel
//!   (the configurable per-`T_RH` knob: lower thresholds need more
//!   concurrently-live groups). When the pool is exhausted, an activation
//!   of an *unallocated* group mitigates the incoming row immediately —
//!   safe, never spurious (the row was just activated) — and is counted in
//!   [`Start::pool_full_mitigations`] so the leaderboard exposes
//!   under-provisioning instead of hiding it.
//! * `window_reset` frees every group, so the reported SRAM high-water
//!   mark ([`Start::peak_groups`]) is a per-window figure — the analogue
//!   of START's observation that its worst measured workload used ~4% of
//!   the LLC while the reserved fraction covers the adversarial bound.
//!
//! Safety: counts are exact and mitigation fires at `T_H = T_RH / 2` with
//! the tables cleared each window, so the usual window-split argument
//! bounds any row's unmitigated activations below `T_RH`; the pool-full
//! fallback mitigates rather than drops, so exhaustion degrades
//! performance, never security.

use crate::tracker::{ActStats, Tracker, TrackerDecision};
use hydra_types::{ActivationKind, ConfigError, MemCycle, MemGeometry, RowAddr};
use std::collections::HashMap;

/// START configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartConfig {
    /// Mitigation threshold per window (`T_RH / 2`).
    pub t_h: u32,
    /// Rows per lazily-allocated counter group (one counter cache line).
    pub group_rows: u32,
    /// Maximum concurrently-allocated groups per channel (the reserved
    /// storage fraction).
    pub max_groups: usize,
}

impl StartConfig {
    /// Sizes START for Row-Hammer threshold `t_rh` against a worst case of
    /// `act_max_per_bank` activations per bank per window across
    /// `banks` banks: 8 rows per group (a 64 B line of 8-bit-plus counters)
    /// and enough groups that an adversary touching a fresh group every
    /// `T_H` activations can never exhaust the pool —
    /// `banks · act_max / T_H + 1` groups. That adversarial reservation is
    /// the knob the paper turns per threshold: halving `t_rh` doubles it.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for `t_rh < 4`.
    pub fn for_threshold(
        t_rh: u32,
        act_max_per_bank: u64,
        banks: u32,
    ) -> Result<Self, ConfigError> {
        if t_rh < 4 {
            return Err(ConfigError::new(format!(
                "row-hammer threshold {t_rh} too small for START (min 4)"
            )));
        }
        let t_h = t_rh / 2;
        // One fresh group per activation is the true worst case (each
        // activation can touch a new group), but such an attack never
        // accumulates per-row counts; groups only need to survive while a
        // row inside them can still reach T_H. The binding bound is total
        // activations per window divided by 1 (distinct groups), clamped by
        // how many groups the row space even has — we reserve the paper's
        // pragmatic `ACT_total / T_H` plus slack, and keep the pool-full
        // path safe regardless.
        let act_total = act_max_per_bank.saturating_mul(u64::from(banks));
        let max_groups = (act_total.div_ceil(u64::from(t_h)) + 1) as usize;
        Ok(StartConfig {
            t_h,
            group_rows: 8,
            max_groups,
        })
    }
}

/// Key of one counter group: (rank, bank, row / group_rows).
type GroupKey = (u8, u8, u32);

/// The START tracker for one channel. See the module docs.
#[derive(Debug, Clone)]
pub struct Start {
    config: StartConfig,
    channel: u8,
    /// Lazily-allocated counter groups.
    groups: HashMap<GroupKey, Vec<u32>>,
    /// High-water mark of concurrently-allocated groups (any window).
    peak_groups: usize,
    mitigations: u64,
    pool_full_mitigations: u64,
}

impl Start {
    /// Creates a START instance for one channel of `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a bad channel or a degenerate config.
    pub fn new(
        geometry: MemGeometry,
        channel: u8,
        config: StartConfig,
    ) -> Result<Self, ConfigError> {
        if channel >= geometry.channels() {
            return Err(ConfigError::new("channel out of range"));
        }
        if config.t_h == 0 || config.group_rows == 0 || config.max_groups == 0 {
            return Err(ConfigError::new(
                "START threshold, group size, and pool must be nonzero",
            ));
        }
        Ok(Start {
            config,
            channel,
            groups: HashMap::new(),
            peak_groups: 0,
            mitigations: 0,
            pool_full_mitigations: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &StartConfig {
        &self.config
    }

    /// Mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Mitigations forced by pool exhaustion (0 when provisioned soundly).
    pub fn pool_full_mitigations(&self) -> u64 {
        self.pool_full_mitigations
    }

    /// High-water mark of concurrently-allocated groups.
    pub fn peak_groups(&self) -> usize {
        self.peak_groups
    }

    /// Groups currently allocated.
    pub fn live_groups(&self) -> usize {
        self.groups.len()
    }
}

impl Tracker for Start {
    fn activate(&mut self, row: RowAddr, _now: MemCycle, _kind: ActivationKind) -> TrackerDecision {
        debug_assert_eq!(row.channel, self.channel);
        let t_h = self.config.t_h;
        let group_rows = self.config.group_rows;
        let key: GroupKey = (row.rank, row.bank, row.row / group_rows);
        let slot = (row.row % group_rows) as usize;

        if !self.groups.contains_key(&key) {
            if self.groups.len() >= self.config.max_groups {
                // Pool exhausted: mitigate the incoming row now instead of
                // tracking it. Safe — this very activation touched it.
                self.pool_full_mitigations += 1;
                self.mitigations += 1;
                return TrackerDecision::mitigate(row).with_stats(ActStats {
                    estimate: 1,
                    tracked: false,
                });
            }
            self.groups.insert(key, vec![0u32; group_rows as usize]);
            self.peak_groups = self.peak_groups.max(self.groups.len());
        }
        let counters = match self.groups.get_mut(&key) {
            Some(c) => c,
            // Unreachable: the group was allocated above.
            None => return TrackerDecision::none(),
        };
        counters[slot] += 1;
        let estimate = u64::from(counters[slot]);
        if counters[slot] >= t_h {
            counters[slot] = 0;
            self.mitigations += 1;
            return TrackerDecision::mitigate(row).with_stats(ActStats {
                estimate,
                tracked: true,
            });
        }
        TrackerDecision::none().with_stats(ActStats {
            estimate,
            tracked: true,
        })
    }

    fn window_reset(&mut self, _now: MemCycle) {
        self.groups.clear();
    }

    fn name(&self) -> &str {
        "start"
    }

    fn params(&self) -> String {
        format!(
            "t_h={} group_rows={} max_groups={}",
            self.config.t_h, self.config.group_rows, self.config.max_groups
        )
    }

    fn sram_bits(&self) -> u64 {
        // The reserved pool, whether or not it is currently allocated:
        // max_groups lines of group_rows counters at ceil(log2 T_H) bits,
        // plus a tag per line (17-bit group id at paper scale). See
        // `hydra_baselines::storage::start_bytes_per_rank` for the
        // paper-scale analytic model.
        let counter_bits = u64::from(u32::BITS - self.config.t_h.leading_zeros());
        let line_bits = u64::from(self.config.group_rows) * counter_bits + 17;
        (self.config.max_groups as u64).saturating_mul(line_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_types::ActivationKind::Demand;

    fn start(t_h: u32, max_groups: usize) -> Start {
        let config = StartConfig {
            t_h,
            group_rows: 8,
            max_groups,
        };
        match Start::new(MemGeometry::tiny(), 0, config) {
            Ok(s) => s,
            Err(e) => panic!("start: {e}"),
        }
    }

    #[test]
    fn exact_counting_mitigates_at_every_t_h() {
        let mut s = start(8, 64);
        let row = RowAddr::new(0, 0, 0, 42);
        let mut when = Vec::new();
        for i in 1..=24u64 {
            if !s.activate(row, i, Demand).mitigations.is_empty() {
                when.push(i);
            }
        }
        assert_eq!(when, vec![8, 16, 24]);
    }

    #[test]
    fn groups_allocate_lazily_and_rows_do_not_alias() {
        let mut s = start(8, 64);
        assert_eq!(s.live_groups(), 0);
        // Rows 0 and 7 share group 0; row 8 opens group 1.
        s.activate(RowAddr::new(0, 0, 0, 0), 0, Demand);
        s.activate(RowAddr::new(0, 0, 0, 7), 1, Demand);
        assert_eq!(s.live_groups(), 1);
        s.activate(RowAddr::new(0, 0, 0, 8), 2, Demand);
        assert_eq!(s.live_groups(), 2);
        // Row 0's count is still 1 (row 7 did not alias it).
        let d = s.activate(RowAddr::new(0, 0, 0, 0), 3, Demand);
        assert_eq!(d.stats.estimate, 2);
    }

    #[test]
    fn pool_exhaustion_mitigates_instead_of_dropping() {
        let mut s = start(8, 2);
        s.activate(RowAddr::new(0, 0, 0, 0), 0, Demand); // group 0
        s.activate(RowAddr::new(0, 0, 0, 8), 1, Demand); // group 1
        let d = s.activate(RowAddr::new(0, 0, 0, 16), 2, Demand); // group 2: full
        assert_eq!(d.mitigations.len(), 1);
        assert_eq!(d.mitigations[0].aggressor.row, 16);
        assert_eq!(s.pool_full_mitigations(), 1);
        // Rows in already-allocated groups still count exactly.
        let d = s.activate(RowAddr::new(0, 0, 0, 0), 3, Demand);
        assert_eq!(d.stats.estimate, 2);
    }

    #[test]
    fn window_reset_frees_every_group_but_keeps_the_peak() {
        let mut s = start(8, 64);
        for g in 0..5u32 {
            s.activate(RowAddr::new(0, 0, 0, g * 8), 0, Demand);
        }
        assert_eq!(s.live_groups(), 5);
        s.window_reset(1);
        assert_eq!(s.live_groups(), 0);
        assert_eq!(s.peak_groups(), 5);
        let d = s.activate(RowAddr::new(0, 0, 0, 0), 2, Demand);
        assert_eq!(d.stats.estimate, 1, "fresh window recounts from zero");
    }

    #[test]
    fn for_threshold_scales_the_pool_inversely_with_t_rh() {
        let at = |t_rh| match StartConfig::for_threshold(t_rh, 1_360_000, 16) {
            Ok(c) => c.max_groups,
            Err(e) => panic!("config: {e}"),
        };
        assert_eq!(at(1000), 43_521); // 16×1.36M / 500 + 1
        assert!(at(500) > 2 * at(1000) - 4, "halving T_RH ~doubles the pool");
        assert!(StartConfig::for_threshold(2, 1, 1).is_err());
    }

    #[test]
    fn sram_bits_cover_the_reserved_pool() {
        let s = start(500, 100);
        // 100 lines × (8 counters × 9 bits + 17-bit tag).
        assert_eq!(s.sram_bits(), 100 * (8 * 9 + 17));
    }
}
