//! Sabotage fixtures: deliberately broken trackers the oracle test matrix
//! must flag.
//!
//! A security gate that never fires is indistinguishable from a security
//! gate that works. Every arena tracker is required to pass the
//! [`hydra_sim::oracle::ShadowOracle`] with zero violations — so this
//! module supplies the other half of the proof: wrappers that break a
//! sound tracker in each of the ways the oracle is supposed to catch, and
//! a test matrix (`tests/oracle_matrix.rs`) asserting the oracle *does*
//! catch them. The pattern follows the `LeakyTracker` fixture the Hydra
//! oracle suite has always used, generalized over any [`Tracker`].

use crate::tracker::{Tracker, TrackerDecision};
use hydra_types::{ActivationKind, MemCycle, RowAddr};

/// The ways [`Sabotage`] can break a tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabotageMode {
    /// Swallow every `n`-th mitigation the inner tracker requests. The
    /// aggressor keeps hammering past the threshold →
    /// `ViolationKind::ExcessActivations`.
    DropMitigations {
        /// Drop every `n`-th mitigation (1 = drop all).
        every: u64,
    },
    /// Redirect every mitigation to a row the workload never touches →
    /// the victim keeps accumulating (`ExcessActivations`) *and* the
    /// patsy row is refreshed with zero activations
    /// (`SpuriousMitigation`).
    WrongRow {
        /// The row index every mitigation is redirected to.
        patsy: u32,
    },
    /// Report only every `n`-th activation to the inner tracker, as a
    /// controller that under-samples its command bus would. The inner
    /// tracker under-counts by a factor of `n` → `ExcessActivations`.
    Undercount {
        /// Forward one activation in `n` (2 = halve the counts).
        one_in: u64,
    },
}

/// A wrapper that breaks `inner` per a [`SabotageMode`]. See the module
/// docs.
#[derive(Debug, Clone)]
pub struct Sabotage<T> {
    inner: T,
    mode: SabotageMode,
    seen: u64,
    mitigations_seen: u64,
    dropped: u64,
}

impl<T: Tracker> Sabotage<T> {
    /// Wraps `inner`.
    pub fn new(inner: T, mode: SabotageMode) -> Self {
        Sabotage {
            inner,
            mode,
            seen: 0,
            mitigations_seen: 0,
            dropped: 0,
        }
    }

    /// Mitigations or activations this wrapper has swallowed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<T: Tracker> Tracker for Sabotage<T> {
    fn activate(&mut self, row: RowAddr, now: MemCycle, kind: ActivationKind) -> TrackerDecision {
        self.seen += 1;
        match self.mode {
            SabotageMode::DropMitigations { every } => {
                let mut decision = self.inner.activate(row, now, kind);
                let every = every.max(1);
                let mut kept = Vec::new();
                for m in decision.mitigations.drain(..) {
                    self.mitigations_seen += 1;
                    if self.mitigations_seen.is_multiple_of(every) {
                        self.dropped += 1;
                    } else {
                        kept.push(m);
                    }
                }
                decision.mitigations = kept;
                decision
            }
            SabotageMode::WrongRow { patsy } => {
                let mut decision = self.inner.activate(row, now, kind);
                for m in &mut decision.mitigations {
                    if m.aggressor.row != patsy {
                        self.dropped += 1;
                        m.aggressor.row = patsy;
                    }
                }
                decision
            }
            SabotageMode::Undercount { one_in } => {
                if one_in > 1 && !self.seen.is_multiple_of(one_in) {
                    self.dropped += 1;
                    return TrackerDecision::none();
                }
                self.inner.activate(row, now, kind)
            }
        }
    }

    fn window_reset(&mut self, now: MemCycle) {
        self.inner.window_reset(now);
    }

    fn name(&self) -> &str {
        "sabotage"
    }

    fn params(&self) -> String {
        format!("{:?} over {}", self.mode, self.inner.name())
    }

    fn sram_bits(&self) -> u64 {
        self.inner.sram_bits()
    }

    fn max_spillover(&self) -> u64 {
        self.inner.max_spillover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::start::{Start, StartConfig};
    use hydra_types::ActivationKind::Demand;
    use hydra_types::MemGeometry;

    fn sound() -> Start {
        let config = StartConfig {
            t_h: 8,
            group_rows: 8,
            max_groups: 64,
        };
        match Start::new(MemGeometry::tiny(), 0, config) {
            Ok(s) => s,
            Err(e) => panic!("start: {e}"),
        }
    }

    #[test]
    fn drop_all_swallows_every_mitigation() {
        let mut s = Sabotage::new(sound(), SabotageMode::DropMitigations { every: 1 });
        let row = RowAddr::new(0, 0, 0, 42);
        let mut mitigations = 0;
        for i in 0..64u64 {
            mitigations += s.activate(row, i, Demand).mitigations.len();
        }
        assert_eq!(mitigations, 0);
        assert!(s.dropped() >= 8);
    }

    #[test]
    fn wrong_row_redirects_to_the_patsy() {
        let mut s = Sabotage::new(sound(), SabotageMode::WrongRow { patsy: 999 });
        let row = RowAddr::new(0, 0, 0, 42);
        for i in 0..8u64 {
            let d = s.activate(row, i, Demand);
            for m in &d.mitigations {
                assert_eq!(m.aggressor.row, 999);
            }
        }
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn undercount_hides_activations_from_the_inner_tracker() {
        let mut s = Sabotage::new(sound(), SabotageMode::Undercount { one_in: 2 });
        let row = RowAddr::new(0, 0, 0, 42);
        let mut mitigations = 0;
        for i in 0..16u64 {
            mitigations += s.activate(row, i, Demand).mitigations.len();
        }
        // 16 true activations, 8 forwarded, T_H = 8 → exactly one firing
        // where a sound tracker would have fired twice.
        assert_eq!(mitigations, 1);
        assert_eq!(s.dropped(), 8);
    }

    #[test]
    fn passthrough_metadata_delegates() {
        let s = Sabotage::new(sound(), SabotageMode::Undercount { one_in: 2 });
        assert_eq!(s.name(), "sabotage");
        assert!(s.params().contains("start"));
        assert!(s.sram_bits() > 0);
    }
}
