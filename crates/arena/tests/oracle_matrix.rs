//! The arena's security matrix: **every roster tracker × every canonical
//! attack × every swept threshold** runs under the shadow oracle with zero
//! contract violations — and the sabotage fixtures prove the oracle would
//! have caught a violation if one existed.
//!
//! The two halves are one proof. "No tracker ever let an aggressor past
//! `T_RH`, and no tracker refreshed a never-touched row" is only evidence
//! if the instrument can fail; the second half breaks each tracker in the
//! three ways a real implementation bug would (swallowed mitigations,
//! wrong-victim mitigations, undercounted activations) and asserts the
//! oracle flags every one.

use hydra_arena::fixtures::{Sabotage, SabotageMode};
use hydra_arena::{build_tracker, roster_names, ArenaAdapter, Tracker};
use hydra_dram::DramTiming;
use hydra_sim::oracle::ShadowOracle;
use hydra_sim::ActivationSim;
use hydra_types::{MemGeometry, RowAddr};
use hydra_workloads::attacks::AttackPattern;

/// The paper's threshold sweep (Fig. 5): conventional, low, ultra-low.
const T_RHS: [u32; 3] = [4800, 1_000, 500];

/// Every canonical attack pattern the workload crate ships.
const ATTACKS: [&str; 5] = [
    "single_sided",
    "double_sided",
    "many_sided",
    "half_double",
    "thrash",
];

/// Demand activations per matrix cell — several tracking windows at the
/// bench window scale, so cross-window accumulation is exercised too.
const ACTS: u64 = 5_000;

fn scaled_timing() -> DramTiming {
    DramTiming::ddr4_3200().with_scaled_window(1_000)
}

fn attack_rows(name: &str, geometry: MemGeometry, acts: u64) -> Vec<RowAddr> {
    let pattern = match AttackPattern::canonical(name, geometry) {
        Some(p) => p,
        None => panic!("unknown canonical attack {name}"),
    };
    let mut rows = pattern.rows(geometry);
    (0..acts)
        .map(|_| {
            let mut row = rows.next_row();
            row.channel = 0;
            row
        })
        .collect()
}

/// Runs `tracker` under the oracle against `rows`; returns total violations
/// and the worst unmitigated count.
fn oracle_run(
    tracker: Box<dyn Tracker + Send>,
    t_rh: u32,
    geometry: MemGeometry,
    rows: Vec<RowAddr>,
) -> (u64, u64) {
    let oracle = ShadowOracle::new(ArenaAdapter::new(tracker), t_rh);
    let mut sim = ActivationSim::new(geometry, oracle).with_timing(scaled_timing());
    sim.run(rows);
    let report = sim.tracker().report();
    (report.violations_total, report.worst_unmitigated)
}

#[test]
fn every_roster_tracker_survives_every_attack_at_every_threshold() {
    let geometry = MemGeometry::tiny();
    let window_acts = scaled_timing().max_activations_per_window();
    let mut cells = 0;
    for &t_rh in &T_RHS {
        for attack in ATTACKS {
            let rows = attack_rows(attack, geometry, ACTS);
            for name in roster_names() {
                let tracker = match build_tracker(name, geometry, 0, t_rh, 42, window_acts) {
                    Ok(t) => t,
                    Err(e) => panic!("{name}@{t_rh}: {e}"),
                };
                let (violations, worst) = oracle_run(tracker, t_rh, geometry, rows.clone());
                assert_eq!(
                    violations, 0,
                    "{name} violated the contract under {attack} at T_RH={t_rh} \
                     (worst unmitigated count {worst})"
                );
                assert!(
                    worst < u64::from(t_rh),
                    "{name} under {attack} at T_RH={t_rh}: worst unmitigated {worst}"
                );
                cells += 1;
            }
        }
    }
    assert_eq!(
        cells,
        T_RHS.len() * ATTACKS.len() * roster_names().len(),
        "the matrix must cover the full roster"
    );
}

/// Swallowing every mitigation turns each tracker into a leaky tracker:
/// the aggressor sails past `T_RH` and the oracle must say so — for every
/// roster entry, including the probabilistic ones.
#[test]
fn dropped_mitigations_are_flagged_for_every_tracker() {
    let geometry = MemGeometry::tiny();
    let window_acts = scaled_timing().max_activations_per_window();
    let rows = attack_rows("single_sided", geometry, ACTS);
    for name in roster_names() {
        let tracker = match build_tracker(name, geometry, 0, 500, 42, window_acts) {
            Ok(t) => t,
            Err(e) => panic!("{name}: {e}"),
        };
        let sabotaged: Box<dyn Tracker + Send> = Box::new(Sabotage::new(
            tracker,
            SabotageMode::DropMitigations { every: 1 },
        ));
        let (violations, worst) = oracle_run(sabotaged, 500, geometry, rows.clone());
        assert!(
            violations > 0,
            "oracle must flag {name} with all mitigations dropped"
        );
        assert!(
            worst >= 500,
            "{name}: the aggressor must actually cross T_RH (worst {worst})"
        );
    }
}

/// Redirecting every mitigation to a never-activated patsy row leaves the
/// real aggressor hammering (excess) *and* refreshes a row with no
/// activations (spurious); the oracle must flag every roster entry.
#[test]
fn wrong_row_mitigations_are_flagged_for_every_tracker() {
    let geometry = MemGeometry::tiny();
    let window_acts = scaled_timing().max_activations_per_window();
    let rows = attack_rows("double_sided", geometry, ACTS);
    for name in roster_names() {
        let tracker = match build_tracker(name, geometry, 0, 500, 42, window_acts) {
            Ok(t) => t,
            Err(e) => panic!("{name}: {e}"),
        };
        let sabotaged: Box<dyn Tracker + Send> = Box::new(Sabotage::new(
            tracker,
            SabotageMode::WrongRow { patsy: 1_000 },
        ));
        let (violations, _) = oracle_run(sabotaged, 500, geometry, rows.clone());
        assert!(
            violations > 0,
            "oracle must flag {name} with mitigations sent to the wrong row"
        );
    }
}

/// A controller that under-samples its command bus defeats any exact
/// counter: the tracker fires at 3× the true threshold, far past `T_RH`.
/// Probabilistic samplers (PARA, MINT) are excluded — undercounting only
/// rescales their sampling rate, which is a provisioning error, not a
/// counting error, and the oracle has nothing deterministic to catch.
#[test]
fn undercounting_is_flagged_for_every_exact_tracker() {
    let geometry = MemGeometry::tiny();
    let window_acts = scaled_timing().max_activations_per_window();
    let rows = attack_rows("single_sided", geometry, ACTS);
    for name in roster_names() {
        if matches!(*name, "para" | "mint") {
            continue;
        }
        let tracker = match build_tracker(name, geometry, 0, 500, 42, window_acts) {
            Ok(t) => t,
            Err(e) => panic!("{name}: {e}"),
        };
        let sabotaged: Box<dyn Tracker + Send> = Box::new(Sabotage::new(
            tracker,
            SabotageMode::Undercount { one_in: 3 },
        ));
        let (violations, worst) = oracle_run(sabotaged, 500, geometry, rows.clone());
        assert!(
            violations > 0,
            "oracle must flag {name} seeing one activation in three (worst {worst})"
        );
    }
}
