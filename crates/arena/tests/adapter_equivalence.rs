//! The arena's non-interference proof: racing Hydra through the arena's
//! trait-object plumbing is **call-for-call identical** to the concrete
//! Hydra path every existing gate uses.
//!
//! Two layers are pinned down, both by proptest over arbitrary activation
//! streams:
//!
//! 1. **Simulator layer** — `ActivationSim<ArenaAdapter<HydraTracker>>`
//!    produces the same report, the same mitigated-row log, and the same
//!    tracker stats as `ActivationSim<Hydra>` on the same stream.
//! 2. **Engine layer** — the tracker-generic `TrackerShardedSim` running
//!    the roster's boxed `hydra` entry matches the concrete `ShardedSim`
//!    bit-for-bit (report and sorted mitigated union).
//!
//! Nothing here is statistical: the adapter moves the tracker's response
//! vectors without copying, so any divergence is a real behavioral bug.

use hydra_arena::{build_tracker, ArenaAdapter, HydraTracker};
use hydra_core::{Hydra, HydraConfig};
use hydra_dram::DramTiming;
use hydra_engine::{ShardTrackerFactory, ShardedSim, TrackerShardedSim, WorkerPool};
use hydra_sim::ActivationSim;
use hydra_types::tracker::ActivationTracker;
use hydra_types::{MemGeometry, RowAddr};
use proptest::prelude::*;

/// Hammer-biased streams: most activations collapse onto a hot row set so
/// thresholds actually trip and the comparison is non-vacuous.
fn stream(channels: u8) -> impl Strategy<Value = Vec<RowAddr>> {
    prop::collection::vec(
        (0..channels, 0u8..4, 0u32..1024).prop_map(|(ch, bank, row)| {
            let row = if row % 3 == 0 { row % 8 } else { row };
            RowAddr::new(ch, 0, bank, row)
        }),
        0..800,
    )
}

fn test_config(geometry: MemGeometry, channel: u8) -> HydraConfig {
    let mut b = HydraConfig::builder(geometry, channel);
    b.thresholds(16, 12).gct_entries(64).rcc_entries(32);
    match b.build() {
        Ok(c) => c,
        Err(e) => panic!("config: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulator layer: adapter path ≡ concrete path, including the
    /// mitigated-row log and the tracker's own counters.
    #[test]
    fn adapter_sim_is_identical_to_concrete_sim(rows in stream(1)) {
        let geometry = MemGeometry::tiny();
        let timing = DramTiming::ddr4_3200().with_scaled_window(1_000);
        let config = test_config(geometry, 0);

        let concrete = match Hydra::new(config.clone()) {
            Ok(h) => h,
            Err(e) => panic!("hydra: {e}"),
        };
        let adapted = match HydraTracker::new(config) {
            Ok(t) => ArenaAdapter::new(t),
            Err(e) => panic!("adapter: {e}"),
        };
        let mut concrete_sim = ActivationSim::new(geometry, concrete).with_timing(timing);
        let mut adapted_sim = ActivationSim::new(geometry, adapted).with_timing(timing);

        let concrete_report = concrete_sim.run(rows.iter().copied());
        let adapted_report = adapted_sim.run(rows.iter().copied());

        prop_assert_eq!(adapted_report, concrete_report);
        prop_assert_eq!(adapted_sim.drain_mitigated(), concrete_sim.drain_mitigated());
        prop_assert_eq!(
            adapted_sim.tracker().inner().inner().stats(),
            concrete_sim.tracker().stats()
        );
        prop_assert_eq!(adapted_sim.tracker().name(), concrete_sim.tracker().name());
    }

    /// Engine layer: the roster's boxed `hydra` on the generic sharded
    /// path ≡ the concrete `ShardedSim`, for 2-channel streams and any
    /// worker count.
    #[test]
    fn roster_hydra_on_the_generic_engine_matches_the_concrete_engine(
        rows in stream(2),
        workers in 1usize..5,
    ) {
        let geometry = match MemGeometry::tiny_with_channels(2) {
            Ok(g) => g,
            Err(e) => panic!("geometry: {e}"),
        };
        let timing = DramTiming::ddr4_3200().with_scaled_window(1_000);
        let window_acts = timing.max_activations_per_window();
        const T_RH: u32 = 32;

        let concrete_configs = (0..geometry.channels())
            .map(|c| match HydraConfig::for_threshold(geometry, c, T_RH) {
                Ok(c) => c,
                Err(e) => panic!("config: {e}"),
            })
            .collect();
        let concrete_sim = match ShardedSim::new(geometry, concrete_configs) {
            Ok(s) => s.with_timing(timing),
            Err(e) => panic!("concrete sim: {e}"),
        };

        let factory: ShardTrackerFactory = Box::new(move |channel| {
            build_tracker("hydra", geometry, channel, T_RH, 42, window_acts)
                .map(|t| Box::new(ArenaAdapter::new(t)) as Box<dyn ActivationTracker + Send>)
                .map_err(|e| e.to_string())
        });
        let generic_sim = match TrackerShardedSim::new(geometry, factory) {
            Ok(s) => s.with_timing(timing),
            Err(e) => panic!("generic sim: {e}"),
        };

        let concrete = match concrete_sim.run_sequential(&rows) {
            Ok(m) => m,
            Err(e) => panic!("concrete run: {e}"),
        };
        let generic = match generic_sim.run_parallel(&WorkerPool::new(workers), &rows) {
            Ok(m) => m,
            Err(e) => panic!("generic run: {e}"),
        };

        prop_assert_eq!(generic.report, concrete.report);
        prop_assert_eq!(generic.mitigated, concrete.mitigated);
    }
}

/// A dense deterministic hammer so the proptests above are known to cover
/// the mitigating case (an all-quiet stream would pass vacuously).
#[test]
fn dense_hammer_stays_identical_and_mitigates() {
    let geometry = MemGeometry::tiny();
    let timing = DramTiming::ddr4_3200().with_scaled_window(1_000);
    let config = test_config(geometry, 0);
    let rows: Vec<RowAddr> = (0..6_000u32)
        .map(|i| RowAddr::new(0, 0, (i % 3) as u8, 100 + (i % 2) * 2))
        .collect();

    let concrete = match Hydra::new(config.clone()) {
        Ok(h) => h,
        Err(e) => panic!("hydra: {e}"),
    };
    let adapted = match HydraTracker::new(config) {
        Ok(t) => ArenaAdapter::new(t),
        Err(e) => panic!("adapter: {e}"),
    };
    let mut concrete_sim = ActivationSim::new(geometry, concrete).with_timing(timing);
    let mut adapted_sim = ActivationSim::new(geometry, adapted).with_timing(timing);
    let concrete_report = concrete_sim.run(rows.iter().copied());
    let adapted_report = adapted_sim.run(rows.iter().copied());
    assert_eq!(adapted_report, concrete_report);
    assert!(
        concrete_report.mitigations > 0,
        "dense hammer must mitigate: {concrete_report:?}"
    );
    assert_eq!(
        adapted_sim.drain_mitigated(),
        concrete_sim.drain_mitigated()
    );
}
