//! Table 3: workload characteristics — MPKI, unique rows per window, rows
//! with 250+ activations per window, and mean ACTs per row.
//!
//! Measures what our calibrated generators actually produce over one scaled
//! tracking window and prints it next to the paper's targets (scaled by S
//! where applicable). This is the calibration audit for the whole harness.

use hydra_bench::{ExperimentScale, Table};
use hydra_types::{MemGeometry, RowAddr};
use hydra_workloads::{registry, TraceSource};
use std::collections::HashMap;

fn main() {
    let scale = ExperimentScale::from_env();
    let geom = MemGeometry::isca22_baseline();
    // One scaled window's worth of activations at full bandwidth is
    // ACT_max/S per bank; workloads use a fraction of that. Feed each
    // generator the number of accesses its spec implies for one window.
    println!(
        "\n=== Table 3: workload characteristics over one scaled window (S={}) ===\n",
        scale.scale
    );
    let mut table = Table::new(vec![
        "workload",
        "MPKI(paper)",
        "uniq rows (meas/target)",
        "ACT-250+ (meas/target)",
        "ACTs/row (meas/paper)",
    ]);

    for spec in &registry::ALL {
        let mut trace = spec.build(geom, scale.scale, scale.seed);
        // Accesses per window implied by the spec: activations × burst.
        let accesses = (spec.expected_activations(scale.scale) * spec.burst) as u64;
        let mut acts: HashMap<RowAddr, u64> = HashMap::new();
        let mut last_row: Option<RowAddr> = None;
        for _ in 0..accesses.max(100) {
            let op = trace.next_op();
            let row = geom.row_of_line(op.addr);
            if last_row != Some(row) {
                *acts.entry(row).or_insert(0) += 1;
                last_row = Some(row);
            }
        }
        let unique = acts.len() as u64;
        let hot = acts.values().filter(|&&c| c > 250).count() as u64;
        let total_acts: u64 = acts.values().sum();
        let acts_per_row = total_acts as f64 / unique.max(1) as f64;
        table.row(vec![
            spec.name.to_string(),
            format!("{:.2}", spec.mpki),
            format!("{unique} / {}", (spec.unique_rows / scale.scale).max(8)),
            format!(
                "{hot} / {}",
                if spec.act250_rows == 0 {
                    0
                } else {
                    (spec.act250_rows / scale.scale).max(1)
                }
            ),
            format!("{:.1} / {:.1}", acts_per_row, spec.acts_per_row),
        ]);
    }
    table.print();
    match table.export_csv("table3") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }
    println!("\nTargets are the paper's Table 3 values divided by the time-compression S.");
}
