//! Sections 5.2 / 5.3: adaptive-attack experiments.
//!
//! For each attack pattern, replay millions of adversarial activations
//! through Hydra next to an exact oracle and report (a) the maximum
//! unmitigated activation count any row ever reached (must stay below
//! T_H = T_RH/2) and (b) the bandwidth inflation the attack manages to
//! inflict (the Sec. 5.3 memory performance attack).

use hydra_bench::{scaled_hydra, ExperimentScale, Table};
use hydra_dram::DramTiming;
use hydra_sim::ActivationSim;
use hydra_types::{MemGeometry, RowAddr};
use hydra_workloads::AttackPattern;
use std::collections::HashMap;

struct AttackOutcome {
    max_unmitigated: u32,
    inflation: f64,
    mitigations: u64,
}

fn run_attack(pattern: &AttackPattern, acts: u64, scale: &ExperimentScale) -> AttackOutcome {
    let geom = MemGeometry::isca22_baseline();
    let hydra = scaled_hydra(geom, 0, scale, 250, 200, 32_768, 8_192, true, true).expect("hydra");
    let t_h = hydra.config().t_h;
    let mut sim = ActivationSim::new(geom, hydra)
        .with_timing(DramTiming::ddr4_3200().with_scaled_window(scale.scale));
    let mut rows = pattern.rows(geom);

    // Exact per-row oracle over *all* activations (demand + mitigation):
    // we cannot see mitigation ACTs individually here, so the invariant is
    // audited on demand activations: a row's demand count since its last
    // mitigation must stay below T_H.
    let mut oracle: HashMap<RowAddr, u32> = HashMap::new();
    let mut max_unmitigated = 0u32;
    let mut seen_resets = 0;
    for _ in 0..acts {
        let mut row = rows.next_row();
        row.channel = 0; // the per-channel tracker under test
                         // Theorem-1 bounds unmitigated activations *within a tracking
                         // window*; across a reset a row may legally accumulate up to
                         // 2·T_H − 1 (hence T_H = T_RH / 2, Sec. 4.6). Audit per window.
        if sim.report().window_resets > seen_resets {
            seen_resets = sim.report().window_resets;
            oracle.clear();
        }
        *oracle.entry(row).or_insert(0) += 1;
        sim.activate(row);
        // Reset exactly the rows the tracker mitigated (feedback can
        // mitigate rows other than the one just activated).
        for mitigated in sim.drain_mitigated() {
            oracle.insert(mitigated, 0);
        }
        let c = *oracle.get(&row).unwrap_or(&0);
        max_unmitigated = max_unmitigated.max(c);
    }
    assert!(
        max_unmitigated <= t_h,
        "attack {} exceeded T_H: {max_unmitigated}",
        pattern.name()
    );
    AttackOutcome {
        max_unmitigated,
        inflation: sim.report().bandwidth_inflation(),
        mitigations: sim.report().mitigations,
    }
}

fn main() {
    let scale = ExperimentScale::from_env();
    let acts: u64 = std::env::var("HYDRA_ACTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000);
    println!(
        "\n=== Secs. 5.2/5.3: adaptive attacks vs Hydra (S={}, {} ACTs each) ===\n",
        scale.scale, acts
    );

    let geom = MemGeometry::isca22_baseline();
    let victim = RowAddr::new(0, 0, 3, 5000);
    let patterns = [
        AttackPattern::SingleSided { aggressor: victim },
        AttackPattern::DoubleSided { victim },
        AttackPattern::ManySided {
            first: victim,
            n: 16,
        },
        AttackPattern::HalfDouble { victim, ratio: 16 },
        AttackPattern::Thrash {
            rows: 200_000,
            seed: 11,
        },
    ];

    let mut table = Table::new(vec![
        "attack",
        "max unmitigated ACTs",
        "T_H bound",
        "mitigations",
        "bandwidth inflation",
    ]);
    let mut worst_inflation: f64 = 1.0;
    for pattern in &patterns {
        let out = run_attack(pattern, acts, &scale);
        worst_inflation = worst_inflation.max(out.inflation);
        table.row(vec![
            pattern.name().to_string(),
            out.max_unmitigated.to_string(),
            "250".into(),
            out.mitigations.to_string(),
            format!("{:.2}x", out.inflation),
        ]);
    }
    table.print();

    // Counter-row attack (Sec. 5.2.2): hammer the reserved RCT rows through
    // tracker-side pressure; RIT-ACT must mitigate them.
    let hydra = scaled_hydra(geom, 0, &scale, 250, 200, 32_768, 8_192, true, true).expect("hydra");
    let reserved = RowAddr::new(0, 0, geom.banks_per_rank() - 1, geom.rows_per_bank() - 1);
    assert!(hydra.is_reserved_row(reserved));
    let mut sim = ActivationSim::new(geom, hydra)
        .with_timing(DramTiming::ddr4_3200().with_scaled_window(scale.scale));
    for _ in 0..100_000u32 {
        sim.activate(reserved);
    }
    let rit = sim.tracker().stats().rit_mitigations;
    println!("\nCounter-row attack: 100000 ACTs on an RCT row -> {rit} RIT-ACT mitigations");
    // Window resets drop partial RIT counts (the run spans ~18 scaled
    // windows), so allow one lost mitigation per window.
    assert!(
        rit >= 100_000 / 250 - 25,
        "RIT-ACT must protect RCT rows: {rit}"
    );

    println!(
        "\nSec. 5.3 bound: worst-case inflation {:.2}x (paper argues ~2x extra activations worst case): {}",
        worst_inflation,
        if worst_inflation < 3.5 { "OK" } else { "MISMATCH" }
    );
    println!("All attacks stayed within the Theorem-1 bound (max unmitigated <= T_H).");
}
