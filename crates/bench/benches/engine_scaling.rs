//! Parallel-engine scaling: wall-clock of the sharded multi-channel
//! simulator as the worker pool grows, on a fixed 4-channel hammer-plus-
//! scatter stream.
//!
//! Two things are checked, only one of them about speed:
//!
//! 1. every parallel run is **bit-identical** to the sequential reference
//!    (the run aborts loudly if not — a benchmark that silently benchmarks
//!    a wrong answer is worse than no benchmark);
//! 2. wall-clock is non-pathological as workers grow. With one shard per
//!    channel the speedup ceiling is `min(workers, channels)`; beyond that
//!    extra workers must cost ~nothing (they sit idle on the queue).
//!
//! No speedup floor is asserted — CI machines share cores — but the
//! measured table makes regressions visible in the logs.

use hydra_bench::Table;
use hydra_core::HydraConfig;
use hydra_dram::DramTiming;
use hydra_engine::{ShardedSim, WorkerPool};
use hydra_types::{MemGeometry, RowAddr};
use std::time::Instant;

const CHANNELS: u8 = 4;
const ACTS: u64 = 400_000;
const T_H: u32 = 64;
const T_G: u32 = 48;

fn sharded() -> ShardedSim {
    let geom = MemGeometry::tiny_with_channels(CHANNELS).expect("valid geometry");
    let configs = (0..CHANNELS)
        .map(|ch| {
            HydraConfig::builder(geom, ch)
                .thresholds(T_H, T_G)
                .gct_entries(256)
                .rcc_entries(64)
                .build()
                .expect("valid config")
        })
        .collect();
    ShardedSim::new(geom, configs)
        .expect("valid shard plan")
        .with_timing(DramTiming::ddr4_3200().with_scaled_window(1_000))
}

/// A deterministic stream balanced across channels: three of four ACTs
/// hammer a small hot set, the rest scatter, so every shard carries real
/// tracker work (spills, RCC traffic, mitigations).
fn stream() -> Vec<RowAddr> {
    (0..ACTS)
        .map(|i| {
            let ch = (i % u64::from(CHANNELS)) as u8;
            let bank = ((i / 7) % 4) as u8;
            let row = if i % 4 < 3 {
                ((i / 16) % 8) as u32
            } else {
                ((i * 131) % 1024) as u32
            };
            RowAddr::new(ch, 0, bank, row)
        })
        .collect()
}

fn main() {
    println!("\n=== Engine scaling: sharded {CHANNELS}-channel run, {ACTS} ACTs ===\n");

    let sim = sharded();
    let rows = stream();

    let t0 = Instant::now();
    let reference = sim.run_sequential(&rows).expect("sequential run");
    let seq_secs = t0.elapsed().as_secs_f64();
    println!(
        "sequential reference: {:.3}s, {} mitigations, {} total ACTs tracked",
        seq_secs, reference.stats.mitigations, reference.stats.activations
    );

    let mut table = Table::new(vec!["workers", "wall_s", "speedup", "identical"]);
    for workers in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        let t = Instant::now();
        let run = sim.run_parallel(&pool, &rows).expect("parallel run");
        let secs = t.elapsed().as_secs_f64();
        let identical = run == reference;
        table.row(vec![
            workers.to_string(),
            format!("{secs:.3}"),
            format!("{:.2}x", seq_secs / secs.max(1e-9)),
            identical.to_string(),
        ]);
        assert!(
            identical,
            "parallel run with {workers} workers diverged from the sequential reference"
        );
    }
    table.print();
    match table.export_csv("engine_scaling") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }

    println!("\nCeiling is min(workers, {CHANNELS}) with one shard per channel;");
    println!("all rows identical to the sequential reference by construction check.");
}
