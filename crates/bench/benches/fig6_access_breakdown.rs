//! Figure 6: where Hydra's activation-count updates are satisfied —
//! GCT-only / RCC-hit / RCT-access (DRAM). Paper averages: 90.7 % / 9.0 % /
//! 0.3 %.
//!
//! Uses the activation-level simulator: Fig. 6 is a property of the
//! activation stream and tracker state, independent of queueing.

use hydra_bench::{scaled_hydra, ExperimentScale, Table};
use hydra_dram::DramTiming;
use hydra_sim::ActivationSim;
use hydra_types::MemGeometry;
use hydra_workloads::{registry, TraceSource};

fn main() {
    let scale = ExperimentScale::from_env();
    let geom = MemGeometry::isca22_baseline();
    let acts_per_workload: u64 = std::env::var("HYDRA_ACTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300_000);

    println!(
        "\n=== Figure 6: Hydra activation-update breakdown (S={}, {} ACTs/workload) ===\n",
        scale.scale, acts_per_workload
    );
    let mut table = Table::new(vec!["workload", "GCT-only %", "RCC-hit %", "RCT-access %"]);
    let mut sums = [0.0f64; 3];

    for spec in &registry::ALL {
        let hydra =
            scaled_hydra(geom, 0, &scale, 250, 200, 32_768, 8_192, true, true).expect("hydra");
        let timing = DramTiming::ddr4_3200().with_scaled_window(scale.scale);
        // Pace activations to the workload's Table-3 rate: `expected`
        // activations per window on this channel (half the system total).
        let acts_per_window = (spec.expected_activations(scale.scale) / 2.0).max(1.0);
        let cycles_per_act = ((timing.refresh_window as f64 / acts_per_window) as u64).max(1);
        let mut sim = ActivationSim::new(geom, hydra)
            .with_timing(timing)
            .with_cycles_per_activation(cycles_per_act);
        let mut trace = spec.build(geom, scale.scale, scale.seed);
        let mut fed = 0;
        let mut last_row = None;
        while fed < acts_per_workload {
            let op = trace.next_op();
            let row = geom.row_of_line(op.addr);
            // Row-buffer filter: consecutive same-row accesses are hits, not
            // activations.
            if last_row == Some(row) {
                continue;
            }
            last_row = Some(row);
            if row.channel != 0 {
                continue; // one channel's tracker is representative
            }
            sim.activate(row);
            fed += 1;
        }
        let stats = sim.tracker().stats();
        let shares = [
            stats.gct_only_fraction() * 100.0,
            stats.rcc_hit_fraction() * 100.0,
            stats.rct_access_fraction() * 100.0,
        ];
        for (s, v) in sums.iter_mut().zip(shares) {
            *s += v;
        }
        table.row(vec![
            spec.name.to_string(),
            format!("{:.1}", shares[0]),
            format!("{:.1}", shares[1]),
            format!("{:.2}", shares[2]),
        ]);
    }
    let n = registry::ALL.len() as f64;
    table.row(vec![
        "MEAN-ALL(36)".into(),
        format!("{:.1}", sums[0] / n),
        format!("{:.1}", sums[1] / n),
        format!("{:.2}", sums[2] / n),
    ]);
    table.print();
    match table.export_csv("fig6") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }
    println!("\nPaper means: GCT-only 90.7 %, RCC-hit 9.0 %, RCT-access 0.3 %.");
    println!(
        "Shape check: GCT filters most updates ({:.1} % >= 60 %), DRAM accesses rare ({:.2} % <= 10 %): {}",
        sums[0] / n,
        sums[2] / n,
        if sums[0] / n >= 60.0 && sums[2] / n <= 10.0 { "OK" } else { "MISMATCH" }
    );
}
