//! Table 5: total SRAM overhead for the 32 GB (2-rank) system at
//! T_RH = 500, DDR4 (16 banks/rank) versus DDR5 (32 banks/rank). Per-bank
//! trackers double on DDR5; Hydra does not (its structures scale with rows,
//! not banks).

use hydra_baselines::storage::{Scheme, DDR4_BANKS_PER_RANK, DDR5_BANKS_PER_RANK};
use hydra_bench::{fmt_bytes, Table};
use hydra_core::{HydraConfig, HydraStorage};
use hydra_types::MemGeometry;

fn main() {
    const RANKS: u64 = 2;
    let geom = MemGeometry::isca22_baseline();
    let hydra = HydraStorage::for_system(
        &HydraConfig::isca22_default(geom, 0).expect("config"),
        u32::from(geom.channels()),
    );

    println!("\n=== Table 5: total SRAM overhead, 32 GB system, T_RH = 500 ===\n");
    let mut table = Table::new(vec![
        "scheme",
        "DDR4 (16 banks/rank)",
        "DDR5 (32 banks/rank)",
    ]);
    for scheme in [Scheme::Graphene, Scheme::Twice, Scheme::Cat, Scheme::Dcbf] {
        let ddr4 = scheme.bytes_per_rank(500, DDR4_BANKS_PER_RANK) * RANKS;
        let ddr5 = if scheme.scales_with_banks() {
            scheme.bytes_per_rank(500, DDR5_BANKS_PER_RANK) * RANKS
        } else {
            // D-CBF is a rank-level filter: Table 5 keeps it constant.
            ddr4
        };
        table.row(vec![
            scheme.name().to_string(),
            fmt_bytes(ddr4),
            fmt_bytes(ddr5),
        ]);
    }
    table.row(vec![
        "Hydra".into(),
        fmt_bytes(hydra.total_sram_bytes()),
        fmt_bytes(hydra.total_sram_bytes()),
    ]);
    table.print();
    println!("\nPaper: Graphene 680 KB / 1.4 MB, TWiCE 4.6 / 9.2 MB, CAT 3 / 6 MB,");
    println!("       D-CBF 1.5 / 1.5 MB, Hydra 56.5 / 56.5 KB.");
    assert!(hydra.total_sram_bytes() < 64 * 1024);
}
