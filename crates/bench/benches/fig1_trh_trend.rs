//! Figure 1(a): the published Row-Hammer threshold trend, 2014 → 2020, and
//! the derived count of simultaneously-attackable rows per bank
//! (ACT_max / T_RH) that drives tracker sizing (Sec. 4.1).

use hydra_bench::Table;
use hydra_dram::DramTiming;

fn main() {
    let act_max = DramTiming::ddr4_3200().max_activations_per_window();
    println!("\n=== Figure 1(a): Row-Hammer threshold over time ===\n");
    let mut table = Table::new(vec!["device (year)", "T_RH", "attackable rows/bank"]);
    for (device, t_rh) in [
        ("DDR3 (2014)", 139_000u64),
        ("DDR4 (2017)", 22_000),
        ("DDR4 (2018)", 18_000),
        ("DDR4 (2019)", 10_000),
        ("LPDDR4 (2020)", 4_800),
        ("ultra-low (this paper)", 500),
        ("ultra-low (Fig. 7 min)", 125),
    ] {
        table.row(vec![
            device.to_string(),
            t_rh.to_string(),
            (act_max / t_rh).to_string(),
        ]);
    }
    table.print();
    println!("\nACT_max per bank per 64 ms window: {act_max} (paper: ~1.36 M)");
}
