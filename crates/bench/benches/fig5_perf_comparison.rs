//! Figure 5: performance of Graphene, CRA (64 KB metadata cache) and Hydra,
//! normalized to the non-secure baseline, across all 36 workloads plus
//! per-suite geometric means.
//!
//! Expected shape (paper): Graphene ≈ 1.0 (0.1 % slowdown), Hydra ≈ 0.993
//! (0.7 % slowdown), CRA ≈ 0.75 (25 % slowdown). Runs are time-compressed
//! (see `hydra_bench` docs); set `HYDRA_SCALE` / `HYDRA_INSTRS` to trade
//! fidelity for runtime.

use hydra_bench::{run_workload, ExperimentScale, Table, TrackerKind};
use hydra_sim::geometric_mean;
use hydra_workloads::{registry, Suite};

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "\n=== Figure 5: normalized performance (scale S={}, {} instrs/core) ===\n",
        scale.scale, scale.instructions_per_core
    );

    let kinds = [
        TrackerKind::Cra {
            cache_bytes: 64 * 1024,
        },
        TrackerKind::Graphene,
        TrackerKind::Hydra,
    ];
    let mut table = Table::new(vec!["workload", "suite", "CRA-64KB", "Graphene", "Hydra"]);
    let mut per_suite: Vec<(Suite, [Vec<f64>; 3])> = vec![
        (Suite::Spec2017, [vec![], vec![], vec![]]),
        (Suite::Parsec, [vec![], vec![], vec![]]),
        (Suite::Gap, [vec![], vec![], vec![]]),
        (Suite::Gups, [vec![], vec![], vec![]]),
    ];
    let mut all: [Vec<f64>; 3] = [vec![], vec![], vec![]];

    for spec in &registry::ALL {
        let baseline = run_workload(spec, TrackerKind::Baseline, &scale).expect("workload run");
        let mut cells = vec![spec.name.to_string(), spec.suite.label().to_string()];
        for (k, kind) in kinds.iter().enumerate() {
            let run = run_workload(spec, *kind, &scale).expect("workload run");
            let norm = run.result.normalized_to(&baseline.result);
            cells.push(format!("{norm:.3}"));
            all[k].push(norm);
            for (suite, lists) in &mut per_suite {
                if *suite == spec.suite {
                    lists[k].push(norm);
                }
            }
        }
        table.row(cells);
    }
    for (suite, lists) in &per_suite {
        table.row(vec![
            format!("GEOMEAN-{}", suite.label()),
            String::new(),
            format!("{:.3}", geometric_mean(&lists[0])),
            format!("{:.3}", geometric_mean(&lists[1])),
            format!("{:.3}", geometric_mean(&lists[2])),
        ]);
    }
    table.row(vec![
        "GEOMEAN-ALL(36)".into(),
        String::new(),
        format!("{:.3}", geometric_mean(&all[0])),
        format!("{:.3}", geometric_mean(&all[1])),
        format!("{:.3}", geometric_mean(&all[2])),
    ]);
    table.print();
    match table.export_csv("fig5") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }

    let cra = geometric_mean(&all[0]);
    let graphene = geometric_mean(&all[1]);
    let hydra = geometric_mean(&all[2]);
    println!("\nPaper: CRA ~0.75 (25 % slowdown), Graphene ~0.999, Hydra ~0.993.");
    println!(
        "Shape check: CRA ({cra:.3}) < Hydra ({hydra:.3}) <= ~Graphene ({graphene:.3}): {}",
        if cra < hydra && hydra <= graphene + 0.02 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
