//! Criterion micro-benchmarks of the tracker data structures: the per-
//! activation cost of each design's bookkeeping (GCT increment, RCC
//! hit/miss, Graphene's Misra-Gries update, CRA's metadata cache, full
//! tracker `on_activation` paths).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hydra_baselines::{Cra, CraConfig, Graphene, GrapheneConfig, MisraGries, Ocpr};
use hydra_core::{GroupCountTable, Hydra, HydraConfig, RowCountCache};
use hydra_types::{ActivationKind, ActivationTracker, MemGeometry, RowAddr};

fn bench_gct(c: &mut Criterion) {
    let mut gct = GroupCountTable::new(16 * 1024, 200);
    let mut i = 0usize;
    c.bench_function("gct_increment", |b| {
        b.iter(|| {
            i = (i + 7) & (16 * 1024 - 1);
            black_box(gct.increment(i));
        })
    });
}

fn bench_rcc(c: &mut Criterion) {
    let mut rcc = RowCountCache::new(4096, 16);
    for s in 0..4096u64 {
        rcc.insert(s, 200);
    }
    let mut s = 0u64;
    c.bench_function("rcc_hit", |b| {
        b.iter(|| {
            s = (s + 13) % 4096;
            black_box(rcc.lookup_mut(s));
        })
    });
    let mut t = 1 << 20;
    c.bench_function("rcc_miss_insert_evict", |b| {
        b.iter(|| {
            t += 4096;
            let _ = rcc.lookup_mut(t);
            black_box(rcc.insert(t, 200));
        })
    });
}

fn bench_misra_gries(c: &mut Criterion) {
    let mut mg: MisraGries<u32> = MisraGries::new(5441);
    let mut r = 0u32;
    c.bench_function("misra_gries_update", |b| {
        b.iter(|| {
            r = (r * 1103515245 + 12345) % 131_072;
            black_box(mg.increment(&r));
        })
    });
}

fn full_tracker_bench(c: &mut Criterion) {
    let geom = MemGeometry::isca22_baseline();
    let mut group = c.benchmark_group("tracker_on_activation");

    let mut hydra = Hydra::new(HydraConfig::isca22_default(geom, 0).unwrap()).unwrap();
    let mut i = 0u32;
    group.bench_function("hydra", |b| {
        b.iter(|| {
            i = (i * 1103515245 + 12345) % 131_000;
            black_box(hydra.on_activation(
                RowAddr::new(0, 0, (i % 16) as u8, i),
                0,
                ActivationKind::Demand,
            ));
        })
    });

    let mut graphene =
        Graphene::new(GrapheneConfig::for_threshold(geom, 0, 500, 1_360_000).unwrap());
    let mut j = 0u32;
    group.bench_function("graphene", |b| {
        b.iter(|| {
            j = (j * 1103515245 + 12345) % 131_000;
            black_box(graphene.on_activation(
                RowAddr::new(0, 0, (j % 16) as u8, j),
                0,
                ActivationKind::Demand,
            ));
        })
    });

    let mut cra = Cra::new(CraConfig::for_threshold(geom, 0, 500, 64 * 1024).unwrap()).unwrap();
    let mut k = 0u32;
    group.bench_function("cra", |b| {
        b.iter(|| {
            k = (k * 1103515245 + 12345) % 131_000;
            black_box(cra.on_activation(
                RowAddr::new(0, 0, (k % 16) as u8, k),
                0,
                ActivationKind::Demand,
            ));
        })
    });

    let mut ocpr = Ocpr::new(geom, 0, 250).unwrap();
    let mut m = 0u32;
    group.bench_function("ocpr", |b| {
        b.iter(|| {
            m = (m * 1103515245 + 12345) % 131_000;
            black_box(ocpr.on_activation(
                RowAddr::new(0, 0, (m % 16) as u8, m),
                0,
                ActivationKind::Demand,
            ));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gct,
    bench_rcc,
    bench_misra_gries,
    full_tracker_bench
);
criterion_main!(benches);
