//! Section 6.8: power analysis.
//!
//! (1) DRAM power: the extra accesses from RCT traffic and mitigation are a
//!     tiny fraction of total DRAM energy (paper: 0.2 %).
//! (2) SRAM power: the GCT and RCC draw tens of milliwatts (paper: 10.6 mW
//!     + 8 mW at 22 nm from CACTI).

use hydra_bench::{run_workload, ExperimentScale, SramPowerModel, Table, TrackerKind};
use hydra_dram::{DramEnergyModel, PowerCounters};
use hydra_types::Clock;
use hydra_workloads::registry;

fn main() {
    let scale = ExperimentScale::from_env();
    let clock = Clock::ddr4_3200();
    let energy_model = DramEnergyModel::ddr4_3200();
    println!(
        "\n=== Section 6.8: power analysis (S={}) ===\n",
        scale.scale
    );

    // DRAM side: compare energy with and without Hydra on the most
    // memory-intensive workloads.
    let mut table = Table::new(vec![
        "workload",
        "baseline dyn energy (uJ)",
        "hydra dyn energy (uJ)",
        "overhead %",
    ]);
    let mut overheads = Vec::new();
    for name in ["bwaves", "parest", "mcf", "bc_t", "gups", "stream"] {
        let spec = registry::by_name(name).expect("registered");
        let base = run_workload(spec, TrackerKind::Baseline, &scale).expect("workload run");
        let hydra = run_workload(spec, TrackerKind::Hydra, &scale).expect("workload run");
        let energy = |run: &hydra_bench::WorkloadRun| -> f64 {
            let counters =
                run.result
                    .controllers
                    .iter()
                    .fold(PowerCounters::default(), |acc, c| {
                        acc.combined(PowerCounters {
                            activations: c.demand_acts + c.mitigation_acts + c.side_acts,
                            reads: c.reads_done + c.side_done / 2,
                            writes: c.writes_done + c.side_done / 2,
                            precharges: c.demand_acts,
                            refreshes: 0,
                        })
                    });
            energy_model
                .energy(&counters, run.result.cycles, 2, &clock)
                .total_nj()
                / 1000.0
        };
        let e_base = energy(&base);
        let e_hydra = energy(&hydra);
        let overhead = (e_hydra / e_base - 1.0) * 100.0;
        overheads.push(overhead);
        table.row(vec![
            name.to_string(),
            format!("{e_base:.1}"),
            format!("{e_hydra:.1}"),
            format!("{overhead:.2}%"),
        ]);
    }
    table.print();
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!(
        "\nMean DRAM dynamic-energy overhead: {mean:.2}% (paper: ~0.2 % of total DRAM power)."
    );

    // SRAM side.
    let sram = SramPowerModel::cacti_22nm();
    // A memory-intensive 8-core workload sustains on the order of 10^8–10^9
    // activations per second system-wide; every activation touches the GCT,
    // ~9 % touch the RCC.
    let act_rate = 5.0e8;
    let gct_mw = sram.power_mw(32 * 1024, act_rate);
    let rcc_mw = sram.power_mw(24 * 1024, act_rate * 0.093);
    println!("\nSRAM power (CACTI-substitute model at 22 nm):");
    println!("  GCT (32 KB): {gct_mw:.1} mW   (paper: 10.6 mW)");
    println!("  RCC (24 KB): {rcc_mw:.1} mW   (paper: 8.0 mW)");
    println!(
        "  total      : {:.1} mW   (paper: 18.6 mW)",
        gct_mw + rcc_mw
    );
    let total = gct_mw + rcc_mw;
    println!(
        "Shape check: tens of mW, negligible vs DRAM ({total:.1} mW in [5, 60]): {}",
        if (5.0..60.0).contains(&total) {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
