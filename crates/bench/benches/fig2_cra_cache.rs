//! Figure 2: CRA's normalized performance as its metadata cache grows from
//! 64 KB to 256 KB. The paper's point: even 4× the cache leaves CRA with a
//! large slowdown (25.8 % → 16.8 % on average), because counter lines have
//! poor locality over large row footprints.

use hydra_bench::{run_workload, ExperimentScale, Table, TrackerKind};
use hydra_sim::geometric_mean;
use hydra_workloads::registry;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "\n=== Figure 2: CRA vs metadata-cache size (scale S={}) ===\n",
        scale.scale
    );

    let sizes = [64 * 1024, 128 * 1024, 256 * 1024];
    let mut table = Table::new(vec!["workload", "CRA-64KB", "CRA-128KB", "CRA-256KB"]);
    let mut means: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for spec in &registry::ALL {
        let baseline = run_workload(spec, TrackerKind::Baseline, &scale).expect("workload run");
        let mut cells = vec![spec.name.to_string()];
        for (i, &cache_bytes) in sizes.iter().enumerate() {
            let run =
                run_workload(spec, TrackerKind::Cra { cache_bytes }, &scale).expect("workload run");
            let norm = run.result.normalized_to(&baseline.result);
            cells.push(format!("{norm:.3}"));
            means[i].push(norm);
        }
        table.row(cells);
    }
    table.row(vec![
        "GEOMEAN-ALL(36)".into(),
        format!("{:.3}", geometric_mean(&means[0])),
        format!("{:.3}", geometric_mean(&means[1])),
        format!("{:.3}", geometric_mean(&means[2])),
    ]);
    table.print();
    match table.export_csv("fig2") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }

    let g64 = geometric_mean(&means[0]);
    let g256 = geometric_mean(&means[2]);
    println!("\nPaper: 0.742 at 64 KB -> 0.832 at 256 KB (still a big slowdown).");
    println!(
        "Shape check: larger cache helps but slowdown remains ({g64:.3} -> {g256:.3}): {}",
        if g256 >= g64 && g256 < 0.995 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
