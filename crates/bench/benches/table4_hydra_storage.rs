//! Table 4: Hydra's SRAM storage breakdown for the 32 GB / 2-channel
//! baseline — GCT 32 KB, RCC 24 KB, RIT-ACT 0.5 KB, total 56.5 KB — plus the
//! 4 MB in-DRAM RCT (< 0.02 % of capacity).

use hydra_bench::{fmt_bytes, Table};
use hydra_core::{HydraConfig, HydraStorage};
use hydra_types::MemGeometry;

fn main() {
    let geom = MemGeometry::isca22_baseline();
    let config = HydraConfig::isca22_default(geom, 0).expect("baseline config");
    let storage = HydraStorage::for_system(&config, u32::from(geom.channels()));

    println!("\n=== Table 4: Hydra storage overhead (32 GB memory, 2 channels) ===\n");
    let mut table = Table::new(vec!["structure", "entry", "entries", "cost"]);
    table.row(vec![
        "GCT".into(),
        "8-bit counter".into(),
        "32K".into(),
        fmt_bytes(storage.gct_bytes),
    ]);
    table.row(vec![
        "RCC".into(),
        "24-bit (valid+tag+SRRIP+count)".into(),
        "8K".into(),
        fmt_bytes(storage.rcc_bytes),
    ]);
    table.row(vec![
        "RIT-ACT".into(),
        "8-bit counter".into(),
        "512".into(),
        fmt_bytes(storage.rit_bytes),
    ]);
    table.row(vec![
        "Total SRAM".into(),
        "".into(),
        "".into(),
        fmt_bytes(storage.total_sram_bytes()),
    ]);
    table.print();

    let frac = storage.dram_overhead_fraction(geom.capacity_bytes());
    println!(
        "\nIn-DRAM RCT: {} ({:.4} % of the 32 GB capacity; paper: 4 MB, < 0.02 %)",
        fmt_bytes(storage.rct_dram_bytes),
        frac * 100.0
    );
    assert_eq!(
        storage.total_sram_bytes(),
        57_856,
        "must match the paper's 56.5 KB"
    );
}
