//! Table 1: per-rank SRAM/CAM storage required by prior trackers for a
//! 16 GB rank (16 banks, 8 KB rows), versus the ≤64 KB goal.
//!
//! Analytic: uses the calibrated storage models of
//! `hydra_baselines::storage`; paper-claimed values are printed alongside
//! for comparison.

use hydra_baselines::storage::{Scheme, DDR4_BANKS_PER_RANK};
use hydra_bench::{fmt_bytes, Table};

/// Paper-claimed Table 1 values in KB, by (threshold row, scheme column).
fn paper_claim(t_rh: u32, scheme: Scheme) -> &'static str {
    match (t_rh, scheme) {
        (250, Scheme::Graphene) => "679 KB",
        (250, Scheme::Twice) => ">2 MB",
        (250, Scheme::Cat) => ">2 MB",
        (250, Scheme::Dcbf) => "1.5 MB",
        (250, Scheme::Ocpr) => "2.0 MB",
        (500, Scheme::Graphene) => "340 KB",
        (500, Scheme::Twice) => "2.3 MB",
        (500, Scheme::Cat) => "1.5 MB",
        (500, Scheme::Dcbf) => "768 KB",
        (500, Scheme::Ocpr) => "2.3 MB",
        (1000, Scheme::Graphene) => "170 KB",
        (1000, Scheme::Twice) => "1.2 MB",
        (1000, Scheme::Cat) => "784 KB",
        (1000, Scheme::Dcbf) => "384 KB",
        (1000, Scheme::Ocpr) => "2.5 MB",
        (32_000, Scheme::Graphene) => "5 KB",
        (32_000, Scheme::Twice) => "37 KB",
        (32_000, Scheme::Cat) => "25 KB",
        (32_000, Scheme::Dcbf) => "53 KB",
        (32_000, Scheme::Ocpr) => "3.8 MB",
        _ => "?",
    }
}

fn main() {
    println!("\n=== Table 1: per-rank storage of prior trackers (16 GB rank, DDR4) ===\n");
    let mut table = Table::new(vec!["T_RH", "scheme", "model", "paper", "goal"]);
    for t_rh in [250u32, 500, 1000, 32_000] {
        for scheme in Scheme::ALL {
            let bytes = scheme.bytes_per_rank(t_rh, DDR4_BANKS_PER_RANK);
            table.row(vec![
                t_rh.to_string(),
                scheme.name().to_string(),
                fmt_bytes(bytes),
                paper_claim(t_rh, scheme).to_string(),
                if t_rh == 32_000 {
                    "-".into()
                } else {
                    "<= 64 KB".into()
                },
            ]);
        }
    }
    table.print();
    match table.export_csv("table1") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }
    println!("\nAll prior schemes exceed the 64 KB goal at T_RH <= 1000;");
    println!("Hydra's total is 56.5 KB for the whole 32 GB system (Table 4).");
}
