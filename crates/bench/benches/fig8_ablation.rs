//! Figure 8: the relative contribution of Hydra's two SRAM structures —
//! Hydra-NoGCT (20 % average slowdown), Hydra-NoRCC (4.5 %), full Hydra
//! (0.7 %). The GCT's filtering is the critical component.

use hydra_bench::{run_workload, ExperimentScale, Table, TrackerKind};
use hydra_sim::geometric_mean;
use hydra_workloads::registry;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "\n=== Figure 8: Hydra component ablation (S={}) ===\n",
        scale.scale
    );

    let variants = [
        (
            "Hydra-NoGCT",
            TrackerKind::HydraCustom {
                t_h: 250,
                t_g: 200,
                gct_total: 32_768,
                rcc_total: 8_192,
                use_gct: false,
                use_rcc: true,
            },
        ),
        (
            "Hydra-NoRCC",
            TrackerKind::HydraCustom {
                t_h: 250,
                t_g: 200,
                gct_total: 32_768,
                rcc_total: 8_192,
                use_gct: true,
                use_rcc: false,
            },
        ),
        ("Hydra", TrackerKind::Hydra),
    ];

    let mut table = Table::new(vec!["workload", "Hydra-NoGCT", "Hydra-NoRCC", "Hydra"]);
    let mut norms: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for spec in &registry::ALL {
        let baseline = run_workload(spec, TrackerKind::Baseline, &scale).expect("workload run");
        let mut cells = vec![spec.name.to_string()];
        for (i, (_, kind)) in variants.iter().enumerate() {
            let run = run_workload(spec, *kind, &scale).expect("workload run");
            let norm = run.result.normalized_to(&baseline.result);
            cells.push(format!("{norm:.3}"));
            norms[i].push(norm);
        }
        table.row(cells);
    }
    table.row(vec![
        "GEOMEAN-ALL(36)".into(),
        format!("{:.3}", geometric_mean(&norms[0])),
        format!("{:.3}", geometric_mean(&norms[1])),
        format!("{:.3}", geometric_mean(&norms[2])),
    ]);
    table.print();
    match table.export_csv("fig8") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }

    let no_gct = geometric_mean(&norms[0]);
    let no_rcc = geometric_mean(&norms[1]);
    let full = geometric_mean(&norms[2]);
    println!("\nPaper: NoGCT ~0.83 (20 % slowdown), NoRCC ~0.957 (4.5 %), Hydra ~0.993 (0.7 %).");
    println!(
        "Shape check: NoGCT ({no_gct:.3}) < NoRCC ({no_rcc:.3}) <= Hydra ({full:.3}): {}",
        if no_gct < no_rcc && no_rcc <= full + 0.005 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
