//! Figure 10: the effect of the GCT threshold T_G, swept as a percentage of
//! T_H = 250 — 50 % (125), 65 % (162), 80 % (200), 95 % (237).
//!
//! Low T_G saturates groups too early (GUPS suffers); T_G too close to T_H
//! forces a mitigation almost immediately after every spill for newly
//! arriving rows. The paper picks 80 %.

use hydra_bench::{run_workload, ExperimentScale, Table, TrackerKind};
use hydra_sim::geometric_mean;
use hydra_workloads::{registry, Suite};

fn hydra_with_tg(t_g: u32) -> TrackerKind {
    TrackerKind::HydraCustom {
        t_h: 250,
        t_g,
        // Pressure-rescaled (÷8) so activations-per-group sits between the
        // swept T_G values, as in the paper's system (see fig9 and
        // EXPERIMENTS.md for the argument).
        gct_total: 32_768 / 8,
        rcc_total: 8_192,
        use_gct: true,
        use_rcc: true,
    }
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "\n=== Figure 10: Hydra slowdown vs T_G (S={}) ===\n",
        scale.scale
    );

    let tgs = [
        (125u32, "50% (125)"),
        (162, "65% (162)"),
        (200, "80% (200)"),
        (237, "95% (237)"),
    ];
    let suites = [Suite::Spec2017, Suite::Parsec, Suite::Gap, Suite::Gups];
    let mut by_suite: Vec<Vec<Vec<f64>>> = vec![vec![vec![]; tgs.len()]; suites.len()];
    let mut all: Vec<Vec<f64>> = vec![vec![]; tgs.len()];

    for spec in &registry::ALL {
        let baseline = run_workload(spec, TrackerKind::Baseline, &scale).expect("workload run");
        for (i, &(t_g, _)) in tgs.iter().enumerate() {
            let run = run_workload(spec, hydra_with_tg(t_g), &scale).expect("workload run");
            let ratio = 1.0 + run.result.slowdown_pct(&baseline.result) / 100.0;
            all[i].push(ratio);
            let s = suites.iter().position(|&s| s == spec.suite).expect("suite");
            by_suite[s][i].push(ratio);
        }
    }

    let headers: Vec<String> = std::iter::once("suite".to_string())
        .chain(tgs.iter().map(|&(_, label)| label.to_string()))
        .collect();
    let mut table = Table::new(headers);
    for (s, suite) in suites.iter().enumerate() {
        let mut cells = vec![suite.label().to_string()];
        for ratios in by_suite[s].iter().take(tgs.len()) {
            cells.push(format!("{:.2}%", (geometric_mean(ratios) - 1.0) * 100.0));
        }
        table.row(cells);
    }
    let overall: Vec<f64> = all
        .iter()
        .map(|v| (geometric_mean(v) - 1.0) * 100.0)
        .collect();
    table.row(
        std::iter::once("ALL(36)".to_string())
            .chain(overall.iter().map(|v| format!("{v:.2}%")))
            .collect(),
    );
    table.print();
    match table.export_csv("fig10") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }

    println!("\nPaper: GUPS suffers at T_G = 50 % (16 %); the default 80 % balances both ends.");
    println!(
        "Shape check: the 50 % point is the worst overall ({:.2}% >= {:.2}%): {}",
        overall[0],
        overall[2],
        if overall[0] >= overall[2] - 0.2 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
