//! Figure 7: Hydra slowdown as the Row-Hammer threshold falls from 500 to
//! 250 to 125, with structures scaled proportionally (2×, 4×).
//!
//! Paper: 0.7 % → 1.6 % → 4 % average slowdown, with GUPS hit hardest.

use hydra_bench::{run_workload, ExperimentScale, Table, TrackerKind};
use hydra_sim::geometric_mean;
use hydra_workloads::{registry, Suite};

/// Thresholds are pressure-rescaled (÷4) alongside the structures: the
/// compressed window gives each row proportionally fewer activations, so an
/// unscaled threshold would mask the trend the figure demonstrates (see
/// EXPERIMENTS.md). T_RH 500/250/125 → T_H 62/31/15.
fn hydra_for_trh(t_rh: u32) -> TrackerKind {
    let factor = (500 / t_rh).max(1) as usize;
    let t_h = (t_rh / 8).max(8);
    TrackerKind::HydraCustom {
        t_h,
        t_g: (t_h * 4 / 5).max(1),
        gct_total: 32_768 * factor,
        rcc_total: 8_192 * factor,
        use_gct: true,
        use_rcc: true,
    }
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "\n=== Figure 7: Hydra slowdown vs T_RH (S={}) ===\n",
        scale.scale
    );

    let thresholds = [500u32, 250, 125];
    let suites = [Suite::Spec2017, Suite::Parsec, Suite::Gap, Suite::Gups];
    let mut table = Table::new(vec!["suite", "T_RH=500", "T_RH=250", "T_RH=125"]);
    let mut all: Vec<Vec<f64>> = vec![vec![]; thresholds.len()];
    let mut by_suite: Vec<Vec<Vec<f64>>> = vec![vec![vec![]; thresholds.len()]; suites.len()];

    for spec in &registry::ALL {
        let baseline = run_workload(spec, TrackerKind::Baseline, &scale).expect("workload run");
        for (t, &t_rh) in thresholds.iter().enumerate() {
            let run = run_workload(spec, hydra_for_trh(t_rh), &scale).expect("workload run");
            let slowdown = run.result.slowdown_pct(&baseline.result);
            all[t].push(1.0 + slowdown / 100.0);
            let s = suites.iter().position(|&s| s == spec.suite).expect("suite");
            by_suite[s][t].push(1.0 + slowdown / 100.0);
        }
    }
    for (s, suite) in suites.iter().enumerate() {
        let mut cells = vec![suite.label().to_string()];
        for ratios in by_suite[s].iter().take(thresholds.len()) {
            cells.push(format!("{:.2}%", (geometric_mean(ratios) - 1.0) * 100.0));
        }
        table.row(cells);
    }
    let mut cells = vec!["ALL(36)".to_string()];
    let mut overall = Vec::new();
    for values in &all {
        let slow = (geometric_mean(values) - 1.0) * 100.0;
        overall.push(slow);
        cells.push(format!("{slow:.2}%"));
    }
    table.row(cells);
    table.print();
    match table.export_csv("fig7") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }

    println!("\nPaper: 0.7 % at 500, 1.6 % at 250, 4 % at 125.");
    println!(
        "Shape check: slowdown grows as T_RH falls ({:.2}% <= {:.2}% <= {:.2}%): {}",
        overall[0],
        overall[1],
        overall[2],
        if overall[0] <= overall[1] + 0.3 && overall[1] <= overall[2] + 0.3 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
