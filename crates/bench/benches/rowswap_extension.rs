//! Extension experiment (Sec. 8): Hydra with row-swap mitigation instead of
//! victim refresh — the "row migration" future work the paper names.
//!
//! Compares the two mitigation policies under Hydra on hot-row workloads:
//! row swap pays two full row copies per mitigation (vs. 4 victim-refresh
//! activations) but breaks aggressor/victim spatial correlation, and its
//! cost concentrates on genuinely hot rows.

use hydra_bench::{ExperimentScale, Table, TrackerKind};
use hydra_sim::{geometric_mean, SystemSim};
use hydra_types::mitigation::MitigationPolicy;
use hydra_workloads::registry;

fn main() {
    let mut scale = ExperimentScale::from_env();
    // Budget sized so hot rows cross the scaled threshold and swaps
    // actually fire (see delay_mitigation).
    scale.instructions_per_core = 40_000;
    println!(
        "\n=== Extension: victim-refresh vs row-swap mitigation (S={}) ===\n",
        scale.scale
    );

    // Threshold scaled (250 -> 31) like the structures so mitigations fire
    // at compressed-window activation rates (see delay_mitigation).
    let tracker = TrackerKind::HydraCustom {
        t_h: 31,
        t_g: 24,
        gct_total: 32_768,
        rcc_total: 8_192,
        use_gct: true,
        use_rcc: true,
    };
    // parest/cactuBSSN (thousands of hot rows) make row swapping pathologically
    // expensive — every hot row pays two full row copies per T_H activations,
    // a finding in itself; the runnable comparison uses moderate hot-row
    // counts.
    let names = ["stream", "ferret", "gups", "mcf"];
    let mut table = Table::new(vec![
        "workload",
        "victim-refresh slowdown",
        "row-swap slowdown",
        "swaps",
    ]);
    let mut refresh_all = Vec::new();
    let mut swap_all = Vec::new();

    for name in names {
        let spec = registry::by_name(name).expect("registered");
        let run = |policy: MitigationPolicy| {
            let mut config = scale.system_config();
            config.mitigation = policy;
            let geometry = config.geometry;
            let seed = scale.seed;
            let s = scale.scale;
            let mut sim = SystemSim::new(config, |core| {
                spec.build(geometry, s, seed ^ (core as u64).wrapping_mul(0x9E37))
            })
            .with_trackers(|ch| tracker.build(geometry, ch, &scale).expect("tracker"));
            sim.run()
        };
        let baseline = {
            let config = scale.system_config();
            let geometry = config.geometry;
            let seed = scale.seed;
            let s = scale.scale;
            SystemSim::new(config, |core| {
                spec.build(geometry, s, seed ^ (core as u64).wrapping_mul(0x9E37))
            })
            .run()
        };
        let refresh = run(MitigationPolicy::default());
        let swap = run(MitigationPolicy::RowSwap { seed: 0xABCD });
        let refresh_pct = refresh.slowdown_pct(&baseline);
        let swap_pct = swap.slowdown_pct(&baseline);
        let swaps: u64 = swap.controllers.iter().map(|c| c.row_swaps).sum();
        refresh_all.push(1.0 + refresh_pct / 100.0);
        swap_all.push(1.0 + swap_pct / 100.0);
        table.row(vec![
            name.to_string(),
            format!("{refresh_pct:.2}%"),
            format!("{swap_pct:.2}%"),
            swaps.to_string(),
        ]);
    }
    let refresh_mean = (geometric_mean(&refresh_all) - 1.0) * 100.0;
    let swap_mean = (geometric_mean(&swap_all) - 1.0) * 100.0;
    table.row(vec![
        "GEOMEAN".into(),
        format!("{refresh_mean:.2}%"),
        format!("{swap_mean:.2}%"),
        String::new(),
    ]);
    table.print();
    println!("\nRow swap trades ~128x more data movement per mitigation for breaking");
    println!("spatial correlation; with Hydra's low mitigation rate both stay modest.");
    println!(
        "Observed: victim-refresh {refresh_mean:.2}% vs row-swap {swap_mean:.2}% average slowdown."
    );
}
