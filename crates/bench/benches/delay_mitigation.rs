//! Extension experiment (footnotes 5–6): why delay-based mitigation is
//! unviable at ultra-low thresholds.
//!
//! The paper argues that rate-limiting a hot row at T_RH = 500 caps its
//! access rate ~1000× below baseline — a denial of service even for benign
//! workloads, since several workloads legitimately have thousands of rows
//! with 250+ activations per window (Table 3). This bench runs hot-row
//! workloads under victim-refresh vs. rate-limit mitigation with the same
//! Hydra tracker and reports the slowdown of each.

use hydra_bench::{ExperimentScale, Table, TrackerKind};

use hydra_sim::{geometric_mean, SystemSim};
use hydra_types::mitigation::MitigationPolicy;
use hydra_workloads::registry;

fn main() {
    let mut scale = ExperimentScale::from_env();
    // Budget sized so hot rows cross the scaled threshold (~70+ ACTs per
    // hot row needs ~80 K instructions/core for these workloads); the
    // rate-limited runs then genuinely stall until window boundaries.
    scale.instructions_per_core = 40_000;
    println!(
        "\n=== Footnote 6: victim-refresh vs delay mitigation (S={}) ===\n",
        scale.scale
    );

    // Hot-row-heavy workloads suffer most under rate control. The tracker
    // threshold is scaled (250 -> 31) like the structures: compressed
    // windows give hot rows proportionally fewer activations per window, so
    // an unscaled threshold would never fire and the policies would be
    // indistinguishable.
    let tracker = TrackerKind::HydraCustom {
        t_h: 31,
        t_g: 24,
        gct_total: 32_768,
        rcc_total: 8_192,
        use_gct: true,
        use_rcc: true,
    };
    let names = [
        "parest",
        "cactuBSSN",
        "xz",
        "blender",
        "ferret",
        "stream",
        "gups",
    ];
    let mut table = Table::new(vec![
        "workload",
        "victim-refresh slowdown",
        "rate-limit slowdown",
    ]);
    let mut refresh_all = Vec::new();
    let mut delay_all = Vec::new();

    for name in names {
        let spec = registry::by_name(name).expect("registered");
        let run = |policy: MitigationPolicy| {
            let mut config = scale.system_config();
            config.mitigation = policy;
            let geometry = config.geometry;
            let seed = scale.seed;
            let s = scale.scale;
            let mut sim = SystemSim::new(config, |core| {
                spec.build(geometry, s, seed ^ (core as u64).wrapping_mul(0x9E37))
            })
            .with_trackers(|ch| tracker.build(geometry, ch, &scale).expect("tracker"));
            sim.run()
        };
        let baseline = {
            let config = scale.system_config();
            let geometry = config.geometry;
            let seed = scale.seed;
            let s = scale.scale;
            SystemSim::new(config, |core| {
                spec.build(geometry, s, seed ^ (core as u64).wrapping_mul(0x9E37))
            })
            .run()
        };
        let refresh = run(MitigationPolicy::default()).slowdown_pct(&baseline);
        let delay = run(MitigationPolicy::RateLimit).slowdown_pct(&baseline);
        refresh_all.push(1.0 + refresh / 100.0);
        delay_all.push(1.0 + delay / 100.0);
        table.row(vec![
            name.to_string(),
            format!("{refresh:.2}%"),
            format!("{delay:.2}%"),
        ]);
    }
    let refresh_mean = (geometric_mean(&refresh_all) - 1.0) * 100.0;
    let delay_mean = (geometric_mean(&delay_all) - 1.0) * 100.0;
    table.row(vec![
        "GEOMEAN".into(),
        format!("{refresh_mean:.2}%"),
        format!("{delay_mean:.2}%"),
    ]);
    table.print();

    println!("\nPaper's argument: delay insertion throttles legitimately hot rows into");
    println!("a denial of service at ultra-low thresholds, while victim refresh stays cheap.");
    println!(
        "Shape check: rate-limit slowdown ({delay_mean:.1}%) >> victim-refresh ({refresh_mean:.1}%): {}",
        if delay_mean > refresh_mean + 1.0 { "OK" } else { "MISMATCH" }
    );
}
