//! Figure 9: sensitivity of Hydra's slowdown to GCT capacity (16K / 32K /
//! 64K entries at paper scale). Halving the GCT doubles the row-group size,
//! so entries saturate faster; the paper sees GUPS blow up at 16K while 32K
//! is a good cost/performance point.

use hydra_bench::{run_workload, ExperimentScale, Table, TrackerKind};
use hydra_sim::geometric_mean;
use hydra_workloads::{registry, Suite};

/// The sweep's paper-scale sizes are additionally divided by 4 ("pressure
/// rescaling"): our scaled runs sustain a different activations-per-window
/// rate than the paper's testbed, and this factor places the
/// activations-per-group-vs-T_G knee at the same sweep point (16K) where
/// the paper observes the GUPS blowup. See EXPERIMENTS.md.
const PRESSURE: usize = 4;

fn hydra_with_gct(gct_total: usize) -> TrackerKind {
    TrackerKind::HydraCustom {
        t_h: 250,
        t_g: 200,
        gct_total: gct_total / PRESSURE,
        rcc_total: 8_192,
        use_gct: true,
        use_rcc: true,
    }
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "\n=== Figure 9: Hydra slowdown vs GCT size (S={}) ===\n",
        scale.scale
    );

    let sizes = [16_384usize, 32_768, 65_536];
    let suites = [Suite::Spec2017, Suite::Parsec, Suite::Gap, Suite::Gups];
    let mut by_suite: Vec<Vec<Vec<f64>>> = vec![vec![vec![]; sizes.len()]; suites.len()];
    let mut all: Vec<Vec<f64>> = vec![vec![]; sizes.len()];

    for spec in &registry::ALL {
        let baseline = run_workload(spec, TrackerKind::Baseline, &scale).expect("workload run");
        for (i, &size) in sizes.iter().enumerate() {
            let run = run_workload(spec, hydra_with_gct(size), &scale).expect("workload run");
            let ratio = 1.0 + run.result.slowdown_pct(&baseline.result) / 100.0;
            all[i].push(ratio);
            let s = suites.iter().position(|&s| s == spec.suite).expect("suite");
            by_suite[s][i].push(ratio);
        }
    }

    let mut table = Table::new(vec!["suite", "GCT=16K", "GCT=32K", "GCT=64K"]);
    for (s, suite) in suites.iter().enumerate() {
        let mut cells = vec![suite.label().to_string()];
        for ratios in by_suite[s].iter().take(sizes.len()) {
            cells.push(format!("{:.2}%", (geometric_mean(ratios) - 1.0) * 100.0));
        }
        table.row(cells);
    }
    let overall: Vec<f64> = all
        .iter()
        .map(|v| (geometric_mean(v) - 1.0) * 100.0)
        .collect();
    table.row(vec![
        "ALL(36)".into(),
        format!("{:.2}%", overall[0]),
        format!("{:.2}%", overall[1]),
        format!("{:.2}%", overall[2]),
    ]);
    table.print();
    match table.export_csv("fig9") {
        Ok(Some(path)) => println!("(csv written to {})", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("csv export failed: {e}"),
    }

    println!("\nPaper: 16K hurts (GUPS 18.3 %); 32K is the sweet spot; 64K is marginal.");
    println!(
        "Shape check: slowdown non-increasing with GCT size ({:.2}% >= {:.2}% >= {:.2}%): {}",
        overall[0],
        overall[1],
        overall[2],
        if overall[0] >= overall[1] - 0.2 && overall[1] >= overall[2] - 0.2 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
