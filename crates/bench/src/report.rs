//! Plain-text table reporting for the bench targets.
//!
//! Every bench target prints the rows/series its paper table or figure
//! reports, in a fixed-width layout that survives `cargo bench` output.

use std::fmt::Write as _;

/// A simple fixed-width table printer.
///
/// # Example
///
/// ```
/// use hydra_bench::Table;
/// let mut t = Table::new(vec!["scheme", "bytes"]);
/// t.row(vec!["hydra".into(), "57856".into()]);
/// let s = t.render();
/// assert!(s.contains("hydra"));
/// assert!(s.contains("scheme"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let rule: String = widths.iter().map(|w| "-".repeat(*w) + "  ").collect();
        out.push_str(rule.trim_end());
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells containing
    /// commas or quotes), for downstream plotting.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| cell(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Writes the CSV rendering to `path` (used by bench targets when
    /// `HYDRA_CSV_DIR` is set, so results can be plotted).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// If the `HYDRA_CSV_DIR` environment variable is set, writes this
    /// table there as `<name>.csv` (creating the directory) and returns the
    /// written path. Returns `Ok(None)` when the variable is unset. The
    /// caller decides how to report the path — the library never prints.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write errors.
    pub fn export_csv(&self, name: &str) -> std::io::Result<Option<std::path::PathBuf>> {
        let Ok(dir) = std::env::var("HYDRA_CSV_DIR") else {
            return Ok(None);
        };
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        self.write_csv(&path)?;
        Ok(Some(path))
    }
}

/// Formats a byte count the way the paper's tables do (KB / MB).
///
/// # Example
///
/// ```
/// use hydra_bench::fmt_bytes;
/// assert_eq!(fmt_bytes(57_856), "56.5 KB");
/// assert_eq!(fmt_bytes(2 * 1024 * 1024), "2.0 MB");
/// ```
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= MB {
        format!("{:.1} MB", b / MB)
    } else {
        format!("{:.1} KB", b / KB)
    }
}

/// Formats a byte count as whole KB (for the ≤64 KB goal column).
pub fn fmt_kb(bytes: u64) -> String {
    format!("{} KB", bytes / 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('1'));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\"\n"));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(340 * 1024), "340.0 KB");
        assert_eq!(fmt_bytes(2_411_724), "2.3 MB");
        assert_eq!(fmt_kb(64 * 1024), "64 KB");
    }
}
