//! Experiment harness for the Hydra reproduction.
//!
//! One bench target per table/figure of the paper lives in `benches/`; this
//! library provides what they share: the scaled experiment configuration
//! ([`ExperimentScale`]), tracker factories ([`TrackerKind`]), the
//! workload runner ([`run_workload`]), and plain-text table reporting.
//!
//! # Scaling
//!
//! Full-length runs (8 cores × 250 M instructions × 64 ms windows) are not
//! feasible for a test harness, so experiments *compress time* by a factor
//! `S` (default 256, override with `HYDRA_SCALE`): workload footprints and
//! the tracking window shrink by `S`, tracker structures by `S/16` (our
//! scaled memory system runs near DRAM saturation where the paper's
//! testbed-calibrated workloads used only a few percent of the activation
//! budget — the `S/16` divisor restores the paper's ratio of activations
//! per window to tracker capacity), and thresholds (`T_H`, `T_G`) and
//! per-row activation counts stay at paper values. This preserves the
//! ratios that drive the results, so the *shape* of each figure reproduces
//! even though absolute IPCs differ from the authors' testbed.
//! EXPERIMENTS.md records the scale used for every reported number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod sram_power;

pub use report::{fmt_bytes, fmt_kb, Table};
pub use runner::{run_workload, scaled_hydra, ExperimentScale, TrackerKind, WorkloadRun};
pub use sram_power::SramPowerModel;
