//! Scaled workload runner shared by all bench targets.

use hydra_baselines::{Cra, CraConfig, Graphene, GrapheneConfig, Ocpr, Para};
use hydra_core::{Hydra, HydraConfig};
use hydra_sim::{SystemConfig, SystemSim};
use hydra_types::error::ConfigError;
use hydra_types::geometry::MemGeometry;
use hydra_types::tracker::{ActivationTracker, NullTracker};
use hydra_workloads::WorkloadSpec;

/// The time-compression configuration for an experiment run (see the crate
/// docs for the scaling argument).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Time-compression factor `S`.
    pub scale: u64,
    /// Instructions each of the 8 cores retires per run.
    pub instructions_per_core: u64,
    /// RNG seed base.
    pub seed: u64,
}

impl ExperimentScale {
    /// Reads the scale from the environment (`HYDRA_SCALE`, `HYDRA_INSTRS`)
    /// or uses the defaults (S = 256, 50 K instructions/core — sized so the
    /// full `cargo bench` suite finishes in tens of minutes; lower S and
    /// raise the instruction budget for higher fidelity).
    pub fn from_env() -> Self {
        let scale = std::env::var("HYDRA_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let instructions_per_core = std::env::var("HYDRA_INSTRS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50_000);
        ExperimentScale {
            scale,
            instructions_per_core,
            seed: 0x5EED,
        }
    }

    /// The scaled system configuration (paper geometry, window / S).
    pub fn system_config(&self) -> SystemConfig {
        let mut config = SystemConfig::scaled(self.scale);
        config.instructions_per_core = self.instructions_per_core;
        config
    }

    /// The divisor applied to tracker structure sizes.
    ///
    /// Structures shrink less than the window does (S/16 instead of S):
    /// the paper's workloads utilize only a few percent of the DRAM
    /// activation budget per window (Table 3: ≤2 M ACTs against a 21.8 M
    /// per-channel budget), while our scaled runs drive the memory system
    /// much closer to saturation. Dividing structures by S/16 restores the
    /// paper's ratio of activations-per-window to GCT/RCC capacity — the
    /// quantity that determines filter rates (Fig. 6) and Hydra's overhead.
    pub fn structure_divisor(&self) -> u64 {
        (self.scale / 16).max(1)
    }

    /// Scaled structure size: `total / structure_divisor()`, floored at
    /// `min`, rounded to a power of two.
    pub fn scaled_entries(&self, total: usize, min: usize) -> usize {
        ((total as u64 / self.structure_divisor()).max(min as u64) as usize).next_power_of_two()
    }
}

/// Which tracker a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerKind {
    /// No mitigation: the non-secure baseline every figure normalizes to.
    Baseline,
    /// Hydra at the paper's default design point (scaled).
    Hydra,
    /// Hydra with a custom (T_H, T_G, GCT entries, RCC entries) — entries
    /// are *totals* (split across channels) at paper scale, scaled by S.
    HydraCustom {
        /// Mitigation threshold.
        t_h: u32,
        /// GCT threshold.
        t_g: u32,
        /// Total GCT entries at paper scale.
        gct_total: usize,
        /// Total RCC entries at paper scale.
        rcc_total: usize,
        /// Disable the GCT (Fig. 8 ablation).
        use_gct: bool,
        /// Disable the RCC (Fig. 8 ablation).
        use_rcc: bool,
    },
    /// Graphene sized for T_RH = 500 (scaled ACT_max).
    Graphene,
    /// CRA with the given total metadata-cache bytes at paper scale.
    Cra {
        /// Total metadata cache size at paper scale (64 KB default).
        cache_bytes: usize,
    },
    /// PARA with p sized for T_RH = 500.
    Para,
    /// The exact one-counter-per-row oracle.
    Ocpr,
}

impl TrackerKind {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            TrackerKind::Baseline => "baseline".into(),
            TrackerKind::Hydra => "hydra".into(),
            TrackerKind::HydraCustom {
                t_h,
                t_g,
                gct_total,
                use_gct,
                use_rcc,
                ..
            } => {
                if !use_gct {
                    "hydra-nogct".into()
                } else if !use_rcc {
                    "hydra-norcc".into()
                } else {
                    format!("hydra(th={t_h},tg={t_g},gct={gct_total})")
                }
            }
            TrackerKind::Graphene => "graphene".into(),
            TrackerKind::Cra { cache_bytes } => format!("cra-{}KB", cache_bytes / 1024),
            TrackerKind::Para => "para".into(),
            TrackerKind::Ocpr => "ocpr".into(),
        }
    }

    /// Builds the tracker for one channel under the given scale.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the scaled configuration is invalid for
    /// the geometry (e.g. structures that cannot shrink far enough).
    pub fn build(
        &self,
        geometry: MemGeometry,
        channel: u8,
        scale: &ExperimentScale,
    ) -> Result<Box<dyn ActivationTracker>, ConfigError> {
        let channels = usize::from(geometry.channels());
        Ok(match *self {
            TrackerKind::Baseline => Box::new(NullTracker),
            TrackerKind::Hydra => Box::new(scaled_hydra(
                geometry, channel, scale, 250, 200, 32_768, 8_192, true, true,
            )?),
            TrackerKind::HydraCustom {
                t_h,
                t_g,
                gct_total,
                rcc_total,
                use_gct,
                use_rcc,
            } => Box::new(scaled_hydra(
                geometry, channel, scale, t_h, t_g, gct_total, rcc_total, use_gct, use_rcc,
            )?),
            TrackerKind::Graphene => {
                // ACT_max shrinks with the window.
                let act_max = 1_360_000 / scale.scale.max(1);
                let config =
                    GrapheneConfig::for_threshold(geometry, channel, 500, act_max.max(1000))?;
                Box::new(Graphene::new(config))
            }
            TrackerKind::Cra { cache_bytes } => {
                let scaled =
                    (cache_bytes as u64 / scale.structure_divisor()).max(512) as usize * channels;
                let config = CraConfig::for_threshold(geometry, channel, 500, scaled)?;
                Box::new(Cra::new(config)?)
            }
            TrackerKind::Para => Box::new(Para::for_threshold(
                500,
                1e-6,
                scale.seed ^ u64::from(channel),
            )?),
            TrackerKind::Ocpr => Box::new(Ocpr::new(geometry, channel, 250)?),
        })
    }
}

/// Builds a concrete scaled Hydra instance (entry totals given at paper
/// scale; divided by `S` and floored). Used by bench targets that need
/// Hydra-specific statistics (Figs. 6, 9, 10).
///
/// # Errors
///
/// Returns [`ConfigError`] if the scaled entry counts are invalid for the
/// geometry.
#[allow(clippy::too_many_arguments)]
pub fn scaled_hydra(
    geometry: MemGeometry,
    channel: u8,
    scale: &ExperimentScale,
    t_h: u32,
    t_g: u32,
    gct_total: usize,
    rcc_total: usize,
    use_gct: bool,
    use_rcc: bool,
) -> Result<Hydra, ConfigError> {
    let channels = usize::from(geometry.channels());
    let gct = scale.scaled_entries(gct_total / channels, 16);
    let rcc = scale.scaled_entries(rcc_total / channels, 8);
    let mut builder = HydraConfig::builder(geometry, channel);
    builder
        .thresholds(t_h, t_g)
        .gct_entries(gct)
        .rcc_entries(rcc)
        .rcc_ways(rcc.min(16));
    if !use_gct {
        builder.without_gct();
    }
    if !use_rcc {
        builder.without_rcc();
    }
    Hydra::new(builder.build()?)
}

/// The outcome of one workload × tracker run.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Workload name.
    pub workload: String,
    /// Tracker label.
    pub tracker: String,
    /// Cycles to retire the instruction budget.
    pub cycles: u64,
    /// Full result (controller stats etc.).
    pub result: hydra_sim::SimResult,
}

/// Runs one workload under one tracker at the given scale.
///
/// # Errors
///
/// Returns [`ConfigError`] if the tracker cannot be built for the scaled
/// geometry.
pub fn run_workload(
    spec: &WorkloadSpec,
    kind: TrackerKind,
    scale: &ExperimentScale,
) -> Result<WorkloadRun, ConfigError> {
    let config = scale.system_config();
    let geometry = config.geometry;
    let seed = scale.seed;
    let workload_scale = scale.scale;
    // Build (and thereby validate) all per-channel trackers up front, so
    // the infallible with_trackers closure only hands them out.
    let mut trackers: Vec<Option<Box<dyn ActivationTracker>>> = (0..geometry.channels())
        .map(|ch| kind.build(geometry, ch, scale).map(Some))
        .collect::<Result<_, _>>()?;
    let mut sim = SystemSim::new(config, |core| {
        spec.build(
            geometry,
            workload_scale,
            seed ^ (core as u64).wrapping_mul(0x9E37),
        )
    })
    .with_trackers(|ch| {
        trackers
            .get_mut(usize::from(ch))
            .and_then(Option::take)
            .unwrap_or_else(|| Box::new(NullTracker))
    });
    let result = sim.run();
    Ok(WorkloadRun {
        workload: spec.name.to_string(),
        tracker: kind.label(),
        cycles: result.cycles,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_workloads::registry;

    fn quick_scale() -> ExperimentScale {
        ExperimentScale {
            scale: 1024,
            instructions_per_core: 5_000,
            seed: 7,
        }
    }

    #[test]
    fn baseline_and_hydra_runs_complete() {
        let spec = registry::by_name("gups").unwrap();
        let scale = quick_scale();
        let base = run_workload(spec, TrackerKind::Baseline, &scale).expect("baseline run");
        let hydra = run_workload(spec, TrackerKind::Hydra, &scale).expect("hydra run");
        assert!(base.cycles > 0);
        assert!(hydra.cycles >= base.cycles / 2);
    }

    #[test]
    fn tracker_labels_are_distinct() {
        let labels = [
            TrackerKind::Baseline.label(),
            TrackerKind::Hydra.label(),
            TrackerKind::Graphene.label(),
            TrackerKind::Cra { cache_bytes: 65536 }.label(),
            TrackerKind::Para.label(),
            TrackerKind::Ocpr.label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn scaled_entries_floor_and_pow2() {
        let s = quick_scale(); // scale 1024 -> structure divisor 64
        assert_eq!(s.structure_divisor(), 64);
        assert_eq!(s.scaled_entries(32_768, 16), 512);
        assert_eq!(s.scaled_entries(100, 16), 16);
    }

    #[test]
    fn all_tracker_kinds_build() {
        let geom = MemGeometry::isca22_baseline();
        let s = quick_scale();
        for kind in [
            TrackerKind::Baseline,
            TrackerKind::Hydra,
            TrackerKind::Graphene,
            TrackerKind::Cra { cache_bytes: 65536 },
            TrackerKind::Para,
            TrackerKind::Ocpr,
            TrackerKind::HydraCustom {
                t_h: 125,
                t_g: 100,
                gct_total: 65_536,
                rcc_total: 16_384,
                use_gct: true,
                use_rcc: false,
            },
        ] {
            let t = kind.build(geom, 0, &s).expect("tracker builds");
            assert!(!t.name().is_empty());
        }
    }
}
