//! SRAM power model for Sec. 6.8 (the CACTI substitute).
//!
//! The paper reports, from CACTI at 22 nm, 10.6 mW for the 32 KB GCT and
//! 8 mW for the 24 KB RCC (18.6 mW total). We model SRAM power as dynamic
//! (per-access energy × access rate) plus leakage (per-KB), with constants
//! calibrated to land in the same regime as CACTI's 22 nm numbers for
//! structures of this size and access rate:
//!
//! * read/write energy: ~8 pJ per access for tens-of-KB arrays;
//! * leakage: ~0.25 mW per KB at 22 nm.
//!
//! The reproduction target is the *order of magnitude* (tens of mW — i.e.
//! negligible next to DRAM power), not CACTI's exact figures.

/// Per-structure SRAM power estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramPowerModel {
    /// Dynamic energy per access (picojoules).
    pub access_pj: f64,
    /// Leakage power per kilobyte (milliwatts).
    pub leakage_mw_per_kb: f64,
}

impl SramPowerModel {
    /// Calibrated 22 nm constants (see module docs).
    pub fn cacti_22nm() -> Self {
        SramPowerModel {
            access_pj: 8.0,
            leakage_mw_per_kb: 0.25,
        }
    }

    /// Average power of a structure of `bytes` capacity receiving
    /// `accesses_per_sec` accesses.
    pub fn power_mw(&self, bytes: u64, accesses_per_sec: f64) -> f64 {
        let dynamic_mw = self.access_pj * 1e-12 * accesses_per_sec * 1e3;
        let leakage_mw = self.leakage_mw_per_kb * bytes as f64 / 1024.0;
        dynamic_mw + leakage_mw
    }
}

impl Default for SramPowerModel {
    fn default() -> Self {
        SramPowerModel::cacti_22nm()
    }
}

/// A named tracker's paper-scale SRAM footprint and its power under this
/// model — the rows of the arena leaderboard's power column.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerSramProfile {
    /// Arena roster name (`comet`, `abacus`, `mint`, `start`, …).
    pub tracker: String,
    /// Row-Hammer threshold the structure is provisioned for.
    pub t_rh: u32,
    /// Paper-scale SRAM bytes per rank (DDR4 provisioning).
    pub sram_bytes: u64,
    /// Average power at `accesses_per_sec` under this model (mW).
    pub power_mw: f64,
}

/// Paper-scale SRAM bytes per rank for the arena's analytic-model
/// trackers, evaluated at the DDR4 design point
/// ([`storage::ACT_MAX_PER_BANK`], [`storage::DDR4_BANKS_PER_RANK`]).
/// `None` for names without an analytic per-rank model here (Hydra's own
/// storage is tallied by `hydra_core::HydraStorage`; PARA holds no state).
///
/// [`storage::ACT_MAX_PER_BANK`]: hydra_baselines::storage::ACT_MAX_PER_BANK
/// [`storage::DDR4_BANKS_PER_RANK`]: hydra_baselines::storage::DDR4_BANKS_PER_RANK
pub fn tracker_sram_bytes(tracker: &str, t_rh: u32) -> Option<u64> {
    use hydra_baselines::storage;
    let act_max = storage::ACT_MAX_PER_BANK;
    let banks = storage::DDR4_BANKS_PER_RANK;
    match tracker {
        "graphene" => Some(storage::graphene_bytes_per_rank(t_rh, act_max, banks)),
        "comet" => Some(storage::comet_bytes_per_rank(t_rh, banks)),
        "abacus" => Some(storage::abacus_bytes_per_rank(t_rh, act_max, banks)),
        "mint" => Some(storage::mint_bytes_per_rank(t_rh, banks)),
        "start" => Some(storage::start_bytes_per_rank(t_rh, act_max, banks)),
        _ => None,
    }
}

impl SramPowerModel {
    /// The power profile of every analytic-model arena tracker at `t_rh`,
    /// each structure receiving `accesses_per_sec` accesses (trackers sit
    /// on the ACT command stream, so one rate fits all).
    pub fn tracker_profiles(&self, t_rh: u32, accesses_per_sec: f64) -> Vec<TrackerSramProfile> {
        ["graphene", "comet", "abacus", "mint", "start"]
            .iter()
            .filter_map(|name| {
                let sram_bytes = tracker_sram_bytes(name, t_rh)?;
                Some(TrackerSramProfile {
                    tracker: (*name).to_string(),
                    t_rh,
                    sram_bytes,
                    power_mw: self.power_mw(sram_bytes, accesses_per_sec),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydra_structures_land_in_the_cacti_regime() {
        // GCT: 32 KB, accessed on every activation. Peak activation rate per
        // system ~ 2 channels × 16 banks × (1 / 45 ns) is the theoretical
        // max; a memory-intensive workload sustains ~10^8 ACTs/s.
        let m = SramPowerModel::cacti_22nm();
        let gct = m.power_mw(32 * 1024, 1.0e9);
        let rcc = m.power_mw(24 * 1024, 1.0e8);
        // Paper: 10.6 mW and 8 mW. Accept the same order of magnitude.
        assert!((2.0..40.0).contains(&gct), "GCT {gct} mW");
        assert!((1.0..30.0).contains(&rcc), "RCC {rcc} mW");
    }

    #[test]
    fn leakage_dominates_at_idle() {
        let m = SramPowerModel::cacti_22nm();
        let idle = m.power_mw(32 * 1024, 0.0);
        assert!((idle - 8.0).abs() < 0.01, "idle {idle}");
    }

    #[test]
    fn power_scales_with_access_rate() {
        let m = SramPowerModel::cacti_22nm();
        assert!(m.power_mw(1024, 1e9) > m.power_mw(1024, 1e6));
    }

    #[test]
    fn arena_trackers_cross_check_their_headline_kb_figures() {
        // The analytic models' headline numbers at T_RH = 1000, per rank:
        // CoMeT ~74 KB (512×4 sketch + 128-entry RAT per bank), ABACuS
        // ~13.6 KB (one shared row-ID table), MINT under 100 B (a handful
        // of per-bank sampling cursors), START ~473 KB (4–8% of an 8 MB
        // LLC reserved as counter cache).
        let kb = |name: &str| match tracker_sram_bytes(name, 1_000) {
            Some(b) => b as f64 / 1024.0,
            None => panic!("{name} must have an analytic model"),
        };
        assert!(
            (70.0..80.0).contains(&kb("comet")),
            "comet {} KB",
            kb("comet")
        );
        assert!(
            (10.0..20.0).contains(&kb("abacus")),
            "abacus {} KB",
            kb("abacus")
        );
        assert!(kb("mint") < 0.1, "mint {} KB", kb("mint"));
        let llc_kb = 8.0 * 1024.0;
        let start_frac = kb("start") / llc_kb;
        assert!((0.04..0.08).contains(&start_frac), "start {start_frac}");
        // No analytic per-rank model for the non-baseline names.
        assert!(tracker_sram_bytes("hydra", 1_000).is_none());
        assert!(tracker_sram_bytes("para", 1_000).is_none());
    }

    #[test]
    fn tracker_profiles_stay_negligible_next_to_dram() {
        // Sec. 6.8's point transfers to every contender: at a sustained
        // 10^8 ACT/s, even START's half-megabyte slab burns ~0.1 W —
        // noise against multi-watt DRAM ranks.
        let m = SramPowerModel::cacti_22nm();
        let profiles = m.tracker_profiles(1_000, 1.0e8);
        assert_eq!(profiles.len(), 5);
        for p in &profiles {
            assert!(p.power_mw > 0.0, "{}: {} mW", p.tracker, p.power_mw);
            assert!(p.power_mw < 200.0, "{}: {} mW", p.tracker, p.power_mw);
        }
        // Ordering mirrors the SRAM axis: MINT cheapest, START dearest.
        let mw = |name: &str| match profiles.iter().find(|p| p.tracker == name) {
            Some(p) => p.power_mw,
            None => panic!("{name} missing from profiles"),
        };
        assert!(mw("mint") < mw("abacus"));
        assert!(mw("abacus") < mw("comet"));
        assert!(mw("comet") < mw("start"));
    }
}
