//! SRAM power model for Sec. 6.8 (the CACTI substitute).
//!
//! The paper reports, from CACTI at 22 nm, 10.6 mW for the 32 KB GCT and
//! 8 mW for the 24 KB RCC (18.6 mW total). We model SRAM power as dynamic
//! (per-access energy × access rate) plus leakage (per-KB), with constants
//! calibrated to land in the same regime as CACTI's 22 nm numbers for
//! structures of this size and access rate:
//!
//! * read/write energy: ~8 pJ per access for tens-of-KB arrays;
//! * leakage: ~0.25 mW per KB at 22 nm.
//!
//! The reproduction target is the *order of magnitude* (tens of mW — i.e.
//! negligible next to DRAM power), not CACTI's exact figures.

/// Per-structure SRAM power estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramPowerModel {
    /// Dynamic energy per access (picojoules).
    pub access_pj: f64,
    /// Leakage power per kilobyte (milliwatts).
    pub leakage_mw_per_kb: f64,
}

impl SramPowerModel {
    /// Calibrated 22 nm constants (see module docs).
    pub fn cacti_22nm() -> Self {
        SramPowerModel {
            access_pj: 8.0,
            leakage_mw_per_kb: 0.25,
        }
    }

    /// Average power of a structure of `bytes` capacity receiving
    /// `accesses_per_sec` accesses.
    pub fn power_mw(&self, bytes: u64, accesses_per_sec: f64) -> f64 {
        let dynamic_mw = self.access_pj * 1e-12 * accesses_per_sec * 1e3;
        let leakage_mw = self.leakage_mw_per_kb * bytes as f64 / 1024.0;
        dynamic_mw + leakage_mw
    }
}

impl Default for SramPowerModel {
    fn default() -> Self {
        SramPowerModel::cacti_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydra_structures_land_in_the_cacti_regime() {
        // GCT: 32 KB, accessed on every activation. Peak activation rate per
        // system ~ 2 channels × 16 banks × (1 / 45 ns) is the theoretical
        // max; a memory-intensive workload sustains ~10^8 ACTs/s.
        let m = SramPowerModel::cacti_22nm();
        let gct = m.power_mw(32 * 1024, 1.0e9);
        let rcc = m.power_mw(24 * 1024, 1.0e8);
        // Paper: 10.6 mW and 8 mW. Accept the same order of magnitude.
        assert!((2.0..40.0).contains(&gct), "GCT {gct} mW");
        assert!((1.0..30.0).contains(&rcc), "RCC {rcc} mW");
    }

    #[test]
    fn leakage_dominates_at_idle() {
        let m = SramPowerModel::cacti_22nm();
        let idle = m.power_mw(32 * 1024, 0.0);
        assert!((idle - 8.0).abs() < 0.01, "idle {idle}");
    }

    #[test]
    fn power_scales_with_access_rate() {
        let m = SramPowerModel::cacti_22nm();
        assert!(m.power_mw(1024, 1e9) > m.power_mw(1024, 1e6));
    }
}
