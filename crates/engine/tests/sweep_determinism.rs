//! The sweep determinism gate, as a test: `hydra sweep --smoke` with four
//! workers must produce exactly the rows, Pareto frontier, and trend
//! verdicts of the sequential run — only `wall_secs` may differ, and the
//! deterministic projection strips it.
//!
//! This is the same invariant CI's `sweep-smoke` job and
//! `hydra-audit --sweep` enforce on the shipped binaries; here it runs
//! in-process so a regression is caught by `cargo test` before either.

use hydra_engine::sweep::{run_sweep, SweepGrid, SWEEP_SCHEMA_VERSION};
use hydra_sim::batch::BatchConfig;
use std::time::Duration;

fn batch(jobs: usize) -> BatchConfig {
    BatchConfig {
        retries: 1,
        backoff_base: Duration::from_millis(10),
        watchdog: Duration::from_secs(300),
        artifact_dir: None,
        jobs,
    }
}

#[test]
fn smoke_sweep_is_identical_across_worker_counts() {
    let grid = SweepGrid::smoke();
    let sequential = run_sweep(&grid, batch(1)).expect("sequential sweep");
    let parallel = run_sweep(&grid, batch(4)).expect("parallel sweep");

    assert!(sequential.failures.is_empty(), "{:?}", sequential.failures);
    assert!(parallel.failures.is_empty(), "{:?}", parallel.failures);
    // Whole-row equality would compare wall_secs too; everything except
    // the wall clock must match, which is exactly the deterministic
    // projection.
    for (s, p) in sequential.rows.iter().zip(parallel.rows.iter()) {
        assert_eq!(s.deterministic_json(), p.deterministic_json());
    }
    assert_eq!(
        sequential.deterministic_lines(),
        parallel.deterministic_lines(),
        "deterministic projections must be byte-identical"
    );
    assert_eq!(sequential.pareto(), parallel.pareto());
    assert_eq!(
        sequential.trend_checks().len(),
        parallel.trend_checks().len()
    );
}

#[test]
fn smoke_sweep_satisfies_the_paper_shaped_invariants() {
    let outcome = run_sweep(&SweepGrid::smoke(), batch(4)).expect("smoke sweep");

    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    assert_eq!(
        outcome.rows.len(),
        SweepGrid::smoke().cells().expect("cells").len(),
        "every cell must complete"
    );
    assert!(
        !outcome.pareto().is_empty(),
        "a non-degenerate grid has a Pareto frontier"
    );
    assert!(
        !outcome.trend_checks().is_empty(),
        "the smoke grid spans multiple GCT sizes, so trend groups exist"
    );
    assert!(
        outcome.trend_ok(),
        "growing the GCT at fixed T_RH must not raise mitigations or slowdown: {:?}",
        outcome.trend_checks()
    );
}

#[test]
fn jsonl_output_is_schema_versioned_and_well_formed() {
    let outcome = run_sweep(&SweepGrid::smoke(), batch(2)).expect("smoke sweep");
    let lines = outcome.jsonl_lines();

    // meta line + one line per cell + summary line.
    assert_eq!(lines.len(), outcome.rows.len() + 2);
    let meta = &lines[0];
    assert!(meta.contains("\"kind\":\"meta\""), "{meta}");
    assert!(
        meta.contains(&format!("\"schema\":\"{SWEEP_SCHEMA_VERSION}\"")),
        "{meta}"
    );
    for line in &lines[1..lines.len() - 1] {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"kind\":\"cell\""), "{line}");
        assert!(line.contains("\"wall_secs\":"), "{line}");
    }
    let summary = lines.last().expect("summary line");
    assert!(summary.contains("\"kind\":\"summary\""), "{summary}");
    assert!(summary.contains("\"pareto\":"), "{summary}");
    assert!(summary.contains("\"trend_ok\":"), "{summary}");

    // The deterministic projection is the same shape minus wall clocks.
    let det = outcome.deterministic_lines();
    assert_eq!(det.len(), lines.len());
    assert!(det.iter().all(|l| !l.contains("wall_secs")));
}
