//! The engine's headline guarantee, property-tested: a sharded
//! multi-channel run on the worker pool is **bit-identical** to the
//! sequential per-shard reference, for arbitrary activation streams,
//! channel counts of 2 and 4, and any worker count.
//!
//! Nothing here is statistical. Per-channel trackers share no state, the
//! merge is a commutative counter sum plus a sorted mitigation union, so
//! scheduling order must be invisible in the result — and this test is the
//! contract that keeps it that way.

use hydra_core::HydraConfig;
use hydra_dram::DramTiming;
use hydra_engine::{ShardedSim, WorkerPool};
use hydra_types::{MemGeometry, RowAddr};
use proptest::prelude::*;

const T_H: u32 = 16;
const T_G: u32 = 12;

/// A sharded simulator over `channels` tiny channels, sized so short
/// streams still trip spills, RCC traffic, and mitigations, with a
/// shrunken refresh window so window resets occur too.
fn sharded(channels: u8) -> ShardedSim {
    let geom = MemGeometry::tiny_with_channels(channels).expect("valid geometry");
    let configs = (0..channels)
        .map(|ch| {
            HydraConfig::builder(geom, ch)
                .thresholds(T_H, T_G)
                .gct_entries(64)
                .rcc_entries(16)
                .rcc_ways(4)
                .build()
                .expect("valid test config")
        })
        .collect();
    ShardedSim::new(geom, configs)
        .expect("valid shard plan")
        .with_timing(DramTiming::ddr4_3200().with_scaled_window(1_000))
}

/// Hammer-biased multi-channel streams: most activations collapse onto a
/// hot row set per channel so thresholds actually trip.
fn channel_stream(channels: u8) -> impl Strategy<Value = Vec<RowAddr>> {
    prop::collection::vec(
        (0..channels, 0u8..4, 0u32..1024).prop_map(|(ch, bank, row)| {
            let row = if row % 3 == 0 { row % 8 } else { row };
            RowAddr::new(ch, 0, bank, row)
        }),
        0..800,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two channels, any worker count: parallel == sequential, bit for bit.
    #[test]
    fn two_channel_parallel_is_bit_identical(
        stream in channel_stream(2),
        workers in 1usize..9,
    ) {
        let sim = sharded(2);
        let pool = WorkerPool::new(workers);
        let parallel = sim.run_parallel(&pool, &stream).expect("parallel run");
        let sequential = sim.run_sequential(&stream).expect("sequential run");
        prop_assert_eq!(parallel, sequential);
    }

    /// Four channels, any worker count: parallel == sequential, bit for bit.
    #[test]
    fn four_channel_parallel_is_bit_identical(
        stream in channel_stream(4),
        workers in 1usize..9,
    ) {
        let sim = sharded(4);
        let pool = WorkerPool::new(workers);
        let parallel = sim.run_parallel(&pool, &stream).expect("parallel run");
        let sequential = sim.run_sequential(&stream).expect("sequential run");
        prop_assert_eq!(parallel, sequential);
    }

    /// Repeated parallel runs of the same stream are identical to each
    /// other (no hidden scheduling nondeterminism between runs either).
    #[test]
    fn parallel_runs_are_self_consistent(stream in channel_stream(4)) {
        let sim = sharded(4);
        let first = sim.run_parallel(&WorkerPool::new(4), &stream).expect("run 1");
        let second = sim.run_parallel(&WorkerPool::new(3), &stream).expect("run 2");
        prop_assert_eq!(first, second);
    }
}

/// A deterministic hammer stream dense enough to force mitigations, so the
/// bit-identity above is known to cover the non-trivial case (a vacuous
/// all-zero-stats equality would pass the proptests without proving much).
#[test]
fn dense_hammer_produces_mitigations_and_stays_identical() {
    let sim = sharded(2);
    let stream: Vec<RowAddr> = (0..12_000)
        .map(|i| {
            let ch = (i % 2) as u8;
            let row = if i % 4 < 3 {
                (i / 4 % 4) as u32
            } else {
                (i % 997) as u32
            };
            RowAddr::new(ch, 0, 0, row)
        })
        .collect();
    let parallel = sim
        .run_parallel(&WorkerPool::new(4), &stream)
        .expect("parallel run");
    let sequential = sim.run_sequential(&stream).expect("sequential run");
    assert_eq!(parallel, sequential);
    assert!(
        parallel.stats.mitigations > 0,
        "dense hammer must trip mitigations: {:?}",
        parallel.stats
    );
    assert!(!parallel.mitigated.is_empty());
    let mut sorted = parallel.mitigated.clone();
    sorted.sort_unstable();
    assert_eq!(parallel.mitigated, sorted, "merged mitigations are sorted");
}
