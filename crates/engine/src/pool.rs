//! Hand-rolled worker pool with bounded MPSC work distribution.
//!
//! The build environment vendors its few dependencies, so there is no
//! `rayon`/`crossbeam` here: the pool is plain `std` — scoped worker
//! threads pulling `(index, item)` pairs off a *bounded*
//! [`mpsc::sync_channel`] and reporting results on an unbounded return
//! channel. The bound keeps memory flat when items are heavy (a sweep cell
//! owns its whole activation stream); the index makes output ordering
//! deterministic regardless of which worker finishes first.
//!
//! Panic policy: the pool contains **no** `catch_unwind` — that privilege
//! belongs to the batch harness (`hydra_sim::batch`), which the sweep
//! driver runs its cells through. A task that panics here kills only its
//! worker thread: the panic payload is recovered from the thread's join
//! handle and recorded as [`CellOutcome::Panicked`] against the item the
//! worker had claimed, and the surviving workers keep draining the queue.
//! Only items left unclaimed after *every* worker has died come back as
//! [`CellOutcome::Skipped`].

use std::any::Any;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

pub use crate::protocol::CellOutcome;
use crate::protocol::{ProtocolVariant, Supervisor, WorkerMsg};

/// A fixed-width worker pool. Cheap to construct; each
/// [`run_ordered`](WorkerPool::run_ordered) call spawns fresh scoped
/// threads and tears them down before returning.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every item on the pool and returns one outcome per
    /// item, **in submission order** — completion order never shows
    /// through. Zero items return an empty vector without spawning
    /// anything; more workers than items spawn only `items.len()` workers.
    pub fn run_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<CellOutcome<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Production always runs the faithful protocol; the mutations in
        // `ProtocolVariant` exist only for the schedule explorer (see
        // `crate::protocol`) and are never selected here.
        let variant = ProtocolVariant::Faithful;
        let workers = self.workers.min(n);

        // Bounded hand-off queue: the feeder blocks once `workers` items
        // are in flight. The receiver is shared via Arc so that when the
        // last worker exits (normally or by panic) the channel disconnects
        // and a blocked feeder unblocks with an error instead of
        // deadlocking.
        let (work_tx, work_rx) =
            mpsc::sync_channel::<(usize, T)>(variant.queue_capacity(workers, n));
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (msg_tx, msg_rx) = mpsc::channel::<WorkerMsg<R>>();

        let mut supervisor = Supervisor::new(n, workers, variant);
        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let work_rx = Arc::clone(&work_rx);
                let msg_tx = msg_tx.clone();
                let f = &f;
                handles.push(scope.spawn(move || loop {
                    let next = match work_rx.lock() {
                        Ok(rx) => rx.recv(),
                        // A poisoned queue lock means another worker died
                        // holding it; nothing more can be distributed.
                        Err(_) => return,
                    };
                    let Ok((index, item)) = next else { return };
                    if variant.claim_before_compute()
                        && msg_tx.send(WorkerMsg::Claimed { worker, index }).is_err()
                    {
                        return;
                    }
                    let result = f(index, item);
                    if msg_tx.send(WorkerMsg::Done { index, result }).is_err() {
                        return;
                    }
                }));
            }
            // The supervisor keeps no receiver handle of its own: dropping
            // these two ends makes channel disconnection equivalent to
            // "all workers gone".
            drop(work_rx);
            drop(msg_tx);

            for pair in items.into_iter().enumerate() {
                if work_tx.send(pair).is_err() {
                    break; // every worker died; remaining items stay Skipped
                }
            }
            drop(work_tx);

            while let Ok(msg) = msg_rx.recv() {
                supervisor.on_message(msg);
            }
            for (worker, handle) in handles.into_iter().enumerate() {
                if let Err(payload) = handle.join() {
                    supervisor.on_worker_panic(worker, panic_message(payload));
                }
            }
        });
        supervisor.into_outcomes()
    }
}

/// Renders a panic payload: `&str` and `String` payloads verbatim, anything
/// else as a placeholder.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "opaque panic payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn zero_items_return_empty() {
        let pool = WorkerPool::new(4);
        let out: Vec<CellOutcome<u32>> = pool.run_ordered(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_processes_everything_in_order() {
        let pool = WorkerPool::new(1);
        let out = pool.run_ordered((0..16u32).collect(), |_, x| x * 2);
        let values: Vec<u32> = out.into_iter().filter_map(CellOutcome::into_done).collect();
        assert_eq!(values, (0..16).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_items_completes() {
        let pool = WorkerPool::new(64);
        let out = pool.run_ordered(vec![1u32, 2, 3], |_, x| x + 1);
        let values: Vec<u32> = out.into_iter().filter_map(CellOutcome::into_done).collect();
        assert_eq!(values, vec![2, 3, 4]);
    }

    #[test]
    fn ordering_is_deterministic_despite_completion_order() {
        // Earlier items sleep longer, so completion order is roughly the
        // reverse of submission order; the output must not care.
        let pool = WorkerPool::new(4);
        let out = pool.run_ordered((0..12u64).collect(), |_, x| {
            std::thread::sleep(Duration::from_millis(12u64.saturating_sub(x)));
            x * 10
        });
        let values: Vec<u64> = out.into_iter().filter_map(CellOutcome::into_done).collect();
        assert_eq!(values, (0..12).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_item_is_attributed_and_others_complete() {
        let pool = WorkerPool::new(2);
        let out = pool.run_ordered((0..8u32).collect(), |_, x| {
            if x == 3 {
                panic!("cell {x} exploded");
            }
            x
        });
        for (i, outcome) in out.iter().enumerate() {
            if i == 3 {
                match outcome {
                    CellOutcome::Panicked(msg) => assert!(msg.contains("cell 3 exploded")),
                    other => panic!("expected Panicked, got {other:?}"),
                }
            } else {
                assert_eq!(*outcome, CellOutcome::Done(i as u32), "item {i}");
            }
        }
    }

    #[test]
    fn sole_worker_panicking_skips_the_tail_without_deadlock() {
        // With one worker, a panic on the first item leaves the rest
        // unclaimed; the feeder must unblock (channel disconnect), not hang.
        let pool = WorkerPool::new(1);
        let out = pool.run_ordered((0..6u32).collect(), |_, x| {
            if x == 0 {
                panic!("first cell dies");
            }
            x
        });
        assert!(matches!(out[0], CellOutcome::Panicked(_)));
        assert!(out[1..].iter().all(|o| *o == CellOutcome::Skipped));
    }

    #[test]
    fn all_items_run_exactly_once() {
        let calls = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        let out = pool.run_ordered((0..100u32).collect(), |_, x| {
            calls.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(calls.load(Ordering::SeqCst), 100);
        assert!(out.iter().all(CellOutcome::is_done));
    }
}
