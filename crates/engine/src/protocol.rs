//! The worker-pool wire protocol, factored out of [`crate::pool`] so the
//! verification layer can model-check it.
//!
//! [`pool::WorkerPool`](crate::pool::WorkerPool) runs this protocol on real
//! threads; `hydra-analysis`'s schedule explorer runs the *same* types and
//! the *same* supervisor settlement logic inside a virtual single-threaded
//! scheduler that enumerates every interleaving. Anything duplicated
//! between the two would be exactly the code the model checker silently
//! stops checking — so the message enum, the outcome type, the settlement
//! state machine ([`Supervisor`]) and the protocol decision points
//! ([`ProtocolVariant`]) all live here and nowhere else.
//!
//! # Seeded mutations
//!
//! With the `verify-mutations` cargo feature, [`ProtocolVariant`] grows
//! deliberately broken variants (skip the Claimed handshake, slot results
//! by completion order, drop the submission bound). Production code always
//! passes [`ProtocolVariant::Faithful`]; the mutations exist so the
//! explorer can prove it would catch a protocol regression — a checker
//! that has never seen a bug it can find is just a very slow comment.

/// Terminal state of one pool item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellOutcome<R> {
    /// The task ran to completion.
    Done(R),
    /// The task panicked on its worker; the payload message is preserved.
    Panicked(String),
    /// The task was never claimed (every worker died before reaching it).
    Skipped,
}

impl<R> CellOutcome<R> {
    /// True iff the task completed.
    pub fn is_done(&self) -> bool {
        matches!(self, CellOutcome::Done(_))
    }

    /// The completed result, if any.
    pub fn into_done(self) -> Option<R> {
        match self {
            CellOutcome::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Worker → supervisor messages. `Claimed` precedes the computation so a
/// panicking worker can be attributed to the exact item it was running.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkerMsg<R> {
    /// Worker `worker` is about to run item `index`.
    Claimed {
        /// Worker slot that claimed the item.
        worker: usize,
        /// Item index being claimed.
        index: usize,
    },
    /// Item `index` completed with `result`.
    Done {
        /// Item index that completed.
        index: usize,
        /// The computed result.
        result: R,
    },
}

/// Which variant of the protocol to run. Production is always
/// [`ProtocolVariant::Faithful`]; the mutations are compiled only under
/// the `verify-mutations` feature and exist to prove the schedule explorer
/// has teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolVariant {
    /// The shipping protocol.
    Faithful,
    /// Mutation: workers never send `Claimed`, so a panicking worker can
    /// no longer be attributed to its item (the item decays to `Skipped`).
    #[cfg(feature = "verify-mutations")]
    SkipClaimedHandshake,
    /// Mutation: the supervisor slots `Done` results in completion order
    /// instead of by submission index.
    #[cfg(feature = "verify-mutations")]
    CompletionOrderDelivery,
    /// Mutation: the submission queue is unbounded, letting the feeder
    /// race arbitrarily far ahead of the workers.
    #[cfg(feature = "verify-mutations")]
    UnboundedSubmission,
}

impl ProtocolVariant {
    /// Does a worker announce its claim before computing?
    pub fn claim_before_compute(self) -> bool {
        #[cfg(feature = "verify-mutations")]
        if self == ProtocolVariant::SkipClaimedHandshake {
            return false;
        }
        true
    }

    /// Does the supervisor slot a `Done` result at its submission index?
    pub fn slot_by_index(self) -> bool {
        #[cfg(feature = "verify-mutations")]
        if self == ProtocolVariant::CompletionOrderDelivery {
            return false;
        }
        true
    }

    /// Capacity of the bounded submission queue.
    pub fn queue_capacity(self, workers: usize, items: usize) -> usize {
        #[cfg(feature = "verify-mutations")]
        if self == ProtocolVariant::UnboundedSubmission {
            return items.max(workers);
        }
        let _ = items;
        workers
    }
}

/// The supervisor's settlement state machine: consumes [`WorkerMsg`]s
/// during the drain phase and panic reports during the join phase, and
/// produces the final per-item outcome vector. Shared verbatim between the
/// threaded pool and the schedule explorer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Supervisor<R> {
    outcomes: Vec<CellOutcome<R>>,
    claimed: Vec<Option<usize>>,
    next_slot: usize,
    variant: ProtocolVariant,
}

impl<R> Supervisor<R> {
    /// A settlement machine for `items` items across `workers` workers.
    pub fn new(items: usize, workers: usize, variant: ProtocolVariant) -> Self {
        Supervisor {
            outcomes: (0..items).map(|_| CellOutcome::Skipped).collect(),
            claimed: vec![None; workers],
            next_slot: 0,
            variant,
        }
    }

    /// Handles one worker message (drain phase).
    pub fn on_message(&mut self, msg: WorkerMsg<R>) {
        match msg {
            WorkerMsg::Claimed { worker, index } => {
                if let Some(slot) = self.claimed.get_mut(worker) {
                    *slot = Some(index);
                }
            }
            WorkerMsg::Done { index, result } => {
                let slot = if self.variant.slot_by_index() {
                    index
                } else {
                    let s = self.next_slot;
                    self.next_slot += 1;
                    s
                };
                if let Some(out) = self.outcomes.get_mut(slot) {
                    *out = CellOutcome::Done(result);
                }
            }
        }
    }

    /// Handles one worker's panic payload (join phase): the panic lands on
    /// the item the worker last claimed, unless that item already
    /// completed (the worker panicked between finishing it and exiting).
    pub fn on_worker_panic(&mut self, worker: usize, message: String) {
        if let Some(Some(index)) = self.claimed.get(worker) {
            if let Some(out) = self.outcomes.get_mut(*index) {
                if !out.is_done() {
                    *out = CellOutcome::Panicked(message);
                }
            }
        }
    }

    /// The item currently attributed to `worker`, if any.
    pub fn claimed_by(&self, worker: usize) -> Option<usize> {
        self.claimed.get(worker).copied().flatten()
    }

    /// Read access to the outcomes settled so far.
    pub fn outcomes(&self) -> &[CellOutcome<R>] {
        &self.outcomes
    }

    /// Finishes settlement and yields the per-item outcomes in submission
    /// order.
    pub fn into_outcomes(self) -> Vec<CellOutcome<R>> {
        self.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_variant_keeps_the_shipping_decisions() {
        let v = ProtocolVariant::Faithful;
        assert!(v.claim_before_compute());
        assert!(v.slot_by_index());
        assert_eq!(v.queue_capacity(3, 100), 3);
    }

    #[test]
    fn supervisor_settles_done_by_index_and_attributes_panics() {
        let mut sup: Supervisor<u32> = Supervisor::new(3, 2, ProtocolVariant::Faithful);
        sup.on_message(WorkerMsg::Claimed {
            worker: 0,
            index: 1,
        });
        sup.on_message(WorkerMsg::Done {
            index: 2,
            result: 20,
        });
        assert_eq!(sup.claimed_by(0), Some(1));
        sup.on_worker_panic(0, "boom".to_string());
        sup.on_worker_panic(1, "never claimed anything".to_string());
        let out = sup.into_outcomes();
        assert_eq!(out[0], CellOutcome::Skipped);
        assert_eq!(out[1], CellOutcome::Panicked("boom".to_string()));
        assert_eq!(out[2], CellOutcome::Done(20));
    }

    #[test]
    fn panic_after_completion_does_not_clobber_the_result() {
        let mut sup: Supervisor<u32> = Supervisor::new(1, 1, ProtocolVariant::Faithful);
        sup.on_message(WorkerMsg::Claimed {
            worker: 0,
            index: 0,
        });
        sup.on_message(WorkerMsg::Done {
            index: 0,
            result: 7,
        });
        sup.on_worker_panic(0, "late panic".to_string());
        assert_eq!(sup.into_outcomes()[0], CellOutcome::Done(7));
    }

    #[cfg(feature = "verify-mutations")]
    #[test]
    fn mutations_flip_exactly_their_own_decision() {
        let skip = ProtocolVariant::SkipClaimedHandshake;
        assert!(!skip.claim_before_compute());
        assert!(skip.slot_by_index());
        let order = ProtocolVariant::CompletionOrderDelivery;
        assert!(order.claim_before_compute());
        assert!(!order.slot_by_index());
        let unbounded = ProtocolVariant::UnboundedSubmission;
        assert_eq!(unbounded.queue_capacity(2, 5), 5);
    }
}
