//! Sharded multi-channel simulation with a deterministic merge.
//!
//! Hydra's tracker lives per memory controller: the paper's baseline runs
//! one instance per channel and its SRAM structures "are evenly divided
//! across the two channels" (Sec. 6). That makes the channel a natural
//! shard boundary — no tracker state is shared across channels, and the
//! activation simulator advances its clock per *shard-local* activation, so
//! replaying channel `c`'s substream through channel `c`'s instance is the
//! same computation whether the other channels run before, after, or
//! concurrently.
//!
//! [`ShardedSim`] exploits exactly that: it partitions a system-wide
//! activation stream by channel (preserving each channel's arrival order),
//! runs one independent `Hydra` per shard — in parallel on a
//! [`WorkerPool`](crate::pool::WorkerPool) or sequentially as the reference
//! — and merges per-shard results with order-insensitive reductions:
//! counter sums for [`HydraStats`]/[`ActivationSimReport`] and a *sorted*
//! union for the mitigated-row set. The merged result is therefore
//! bit-identical between the parallel and sequential paths, which
//! `crates/engine/tests/shard_determinism.rs` proves by proptest.

use crate::pool::{CellOutcome, WorkerPool};
use crate::EngineError;
use hydra_core::{Hydra, HydraConfig, HydraStats};
use hydra_dram::DramTiming;
use hydra_profiler::{phase, ProfileTree, SpanSink, TreeProfiler};
use hydra_sim::{ActivationSim, ActivationSimReport};
use hydra_types::addr::RowAddr;
use hydra_types::geometry::MemGeometry;
use hydra_types::tracker::ActivationTracker;

/// The outcome of one channel shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardResult {
    /// The channel this shard covered.
    pub channel: u8,
    /// Demand activations routed to this shard.
    pub shard_acts: u64,
    /// The shard tracker's cumulative counters.
    pub stats: HydraStats,
    /// The shard simulator's report.
    pub report: ActivationSimReport,
    /// Rows mitigated in this shard, in mitigation order.
    pub mitigated: Vec<RowAddr>,
}

/// A full multi-channel run after the deterministic merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedRun {
    /// Per-shard results, ordered by channel.
    pub shards: Vec<ShardResult>,
    /// System-wide tracker counters (order-insensitive sum over shards).
    pub stats: HydraStats,
    /// System-wide simulator counters (order-insensitive sum over shards).
    pub report: ActivationSimReport,
    /// Every mitigated row across all shards, sorted (deduplication is the
    /// caller's choice; repeats preserve mitigation multiplicity).
    pub mitigated: Vec<RowAddr>,
}

/// A multi-channel simulation sharded by channel.
#[derive(Debug, Clone)]
pub struct ShardedSim {
    geometry: MemGeometry,
    configs: Vec<HydraConfig>,
    timing: DramTiming,
}

impl ShardedSim {
    /// Builds a sharded simulator from one tracker config per channel.
    /// `configs[c]` must cover channel `c` of `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the config count does not match the
    /// channel count, a config's channel or geometry disagrees with its
    /// slot, or a config cannot instantiate a tracker.
    pub fn new(geometry: MemGeometry, configs: Vec<HydraConfig>) -> Result<Self, EngineError> {
        if configs.len() != usize::from(geometry.channels()) {
            return Err(EngineError::new(format!(
                "expected one config per channel ({}), got {}",
                geometry.channels(),
                configs.len()
            )));
        }
        for (slot, config) in configs.iter().enumerate() {
            if usize::from(config.channel) != slot {
                return Err(EngineError::new(format!(
                    "config in slot {slot} covers channel {}",
                    config.channel
                )));
            }
            if config.geometry != geometry {
                return Err(EngineError::new(format!(
                    "config for channel {slot} built for a different geometry"
                )));
            }
            // Surface invalid configs at construction, not mid-run on a
            // worker thread.
            Hydra::new(config.clone())
                .map_err(|e| EngineError::new(format!("channel {slot} config rejected: {e}")))?;
        }
        Ok(ShardedSim {
            geometry,
            configs,
            timing: DramTiming::ddr4_3200(),
        })
    }

    /// A sharded simulator using the paper's per-channel default config on
    /// every channel.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the default config does not fit
    /// `geometry`.
    pub fn isca22_default(geometry: MemGeometry) -> Result<Self, EngineError> {
        let configs = (0..geometry.channels())
            .map(|c| {
                HydraConfig::isca22_default(geometry, c)
                    .map_err(|e| EngineError::new(format!("channel {c}: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        ShardedSim::new(geometry, configs)
    }

    /// Overrides the DRAM timing used by every shard (e.g. a scaled window).
    pub fn with_timing(mut self, timing: DramTiming) -> Self {
        self.timing = timing;
        self
    }

    /// The simulated geometry.
    pub fn geometry(&self) -> MemGeometry {
        self.geometry
    }

    /// Splits a system-wide activation stream into one substream per
    /// channel, preserving each channel's arrival order.
    pub fn partition_by_channel(&self, rows: &[RowAddr]) -> Vec<Vec<RowAddr>> {
        partition_by_channel(self.geometry.channels(), rows)
    }

    /// Runs every shard on the pool and merges. The merge is deterministic:
    /// the result is bit-identical to [`run_sequential`](Self::run_sequential)
    /// on the same stream regardless of worker count or completion order.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if any shard panics or is skipped; partial
    /// results are discarded (a merged run with a missing channel would
    /// silently under-count).
    pub fn run_parallel(
        &self,
        pool: &WorkerPool,
        rows: &[RowAddr],
    ) -> Result<MergedRun, EngineError> {
        let shards = self.partition_by_channel(rows);
        let items: Vec<(HydraConfig, Vec<RowAddr>)> =
            self.configs.iter().cloned().zip(shards).collect();
        let geometry = self.geometry;
        let timing = self.timing;
        let outcomes = pool.run_ordered(items, move |_, (config, sub)| {
            run_shard(geometry, timing, config, &sub)
        });
        let mut results = Vec::with_capacity(outcomes.len());
        for (channel, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                CellOutcome::Done(Ok(result)) => results.push(result),
                CellOutcome::Done(Err(e)) => {
                    return Err(EngineError::new(format!("shard {channel} failed: {e}")));
                }
                CellOutcome::Panicked(msg) => {
                    return Err(EngineError::new(format!("shard {channel} panicked: {msg}")));
                }
                CellOutcome::Skipped => {
                    return Err(EngineError::new(format!("shard {channel} never ran")));
                }
            }
        }
        Ok(merge_shards(results))
    }

    /// The sequential reference: runs each shard one at a time, in channel
    /// order, on the calling thread, then merges identically to
    /// [`run_parallel`](Self::run_parallel).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if a shard's tracker cannot be built.
    pub fn run_sequential(&self, rows: &[RowAddr]) -> Result<MergedRun, EngineError> {
        let shards = self.partition_by_channel(rows);
        let mut results = Vec::with_capacity(shards.len());
        for (config, sub) in self.configs.iter().cloned().zip(shards) {
            let channel = config.channel;
            results.push(
                run_shard(self.geometry, self.timing, config, &sub)
                    .map_err(|e| EngineError::new(format!("shard {channel} failed: {e}")))?,
            );
        }
        Ok(merge_shards(results))
    }

    /// [`run_parallel`](Self::run_parallel) with per-worker span profiling:
    /// each shard gets its own thread-local
    /// [`TreeProfiler`](hydra_profiler::TreeProfiler) (the profiler handle
    /// is deliberately not `Send`; only the exported [`ProfileTree`] crosses
    /// threads), its tracker phases nest under a `shard` root span, and the
    /// per-shard trees fold into one tree with the order-insensitive
    /// [`ProfileTree::merge`] — commutative and associative by the proptest
    /// in `hydra-profiler/tests/merge_laws.rs`, so the merged profile is
    /// deterministic up to timing noise regardless of completion order.
    ///
    /// The simulation outcome is unaffected: the [`MergedRun`] is
    /// bit-identical to the unprofiled paths on the same stream.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] under the same conditions as
    /// [`run_parallel`](Self::run_parallel).
    pub fn run_parallel_profiled(
        &self,
        pool: &WorkerPool,
        rows: &[RowAddr],
    ) -> Result<(MergedRun, ProfileTree), EngineError> {
        let shards = self.partition_by_channel(rows);
        let items: Vec<(HydraConfig, Vec<RowAddr>)> =
            self.configs.iter().cloned().zip(shards).collect();
        let geometry = self.geometry;
        let timing = self.timing;
        let outcomes = pool.run_ordered(items, move |_, (config, sub)| {
            run_shard_profiled(geometry, timing, config, &sub)
        });
        let mut results = Vec::with_capacity(outcomes.len());
        let mut profile = ProfileTree::new();
        for (channel, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                CellOutcome::Done(Ok((result, tree))) => {
                    results.push(result);
                    profile.merge(&tree);
                }
                CellOutcome::Done(Err(e)) => {
                    return Err(EngineError::new(format!("shard {channel} failed: {e}")));
                }
                CellOutcome::Panicked(msg) => {
                    return Err(EngineError::new(format!("shard {channel} panicked: {msg}")));
                }
                CellOutcome::Skipped => {
                    return Err(EngineError::new(format!("shard {channel} never ran")));
                }
            }
        }
        Ok((merge_shards(results), profile))
    }

    /// [`run_sequential`](Self::run_sequential) with span profiling — the
    /// reference for [`run_parallel_profiled`](Self::run_parallel_profiled).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if a shard's tracker cannot be built.
    pub fn run_sequential_profiled(
        &self,
        rows: &[RowAddr],
    ) -> Result<(MergedRun, ProfileTree), EngineError> {
        let shards = self.partition_by_channel(rows);
        let mut results = Vec::with_capacity(shards.len());
        let mut profile = ProfileTree::new();
        for (config, sub) in self.configs.iter().cloned().zip(shards) {
            let channel = config.channel;
            let (result, tree) = run_shard_profiled(self.geometry, self.timing, config, &sub)
                .map_err(|e| EngineError::new(format!("shard {channel} failed: {e}")))?;
            results.push(result);
            profile.merge(&tree);
        }
        Ok((merge_shards(results), profile))
    }
}

/// Splits `rows` into per-channel substreams, preserving arrival order
/// within each channel.
pub fn partition_by_channel(channels: u8, rows: &[RowAddr]) -> Vec<Vec<RowAddr>> {
    let mut shards: Vec<Vec<RowAddr>> = (0..channels).map(|_| Vec::new()).collect();
    for row in rows {
        let slot = usize::from(row.channel) % shards.len();
        shards[slot].push(*row);
    }
    shards
}

/// Replays one channel's substream through a fresh tracker.
fn run_shard(
    geometry: MemGeometry,
    timing: DramTiming,
    config: HydraConfig,
    rows: &[RowAddr],
) -> Result<ShardResult, String> {
    let channel = config.channel;
    let tracker = Hydra::new(config).map_err(|e| e.to_string())?;
    let mut sim = ActivationSim::new(geometry, tracker).with_timing(timing);
    let report = sim.run(rows.iter().copied());
    let mitigated = sim.drain_mitigated();
    Ok(ShardResult {
        channel,
        shard_acts: rows.len() as u64,
        stats: sim.tracker().stats(),
        report,
        mitigated,
    })
}

/// Replays one channel's substream through a fresh span-instrumented
/// tracker, returning the shard result plus its profile tree. The
/// [`TreeProfiler`] lives and dies on the calling (worker) thread; the
/// bracketing `shard` root span makes each tracker phase's ancestry
/// explicit in the folded export (`shard;activate;rcc_probe …`).
fn run_shard_profiled(
    geometry: MemGeometry,
    timing: DramTiming,
    config: HydraConfig,
    rows: &[RowAddr],
) -> Result<(ShardResult, ProfileTree), String> {
    let channel = config.channel;
    let profiler = TreeProfiler::new();
    let tracker = Hydra::with_spans(config, profiler.clone()).map_err(|e| e.to_string())?;
    let mut sim = ActivationSim::new(geometry, tracker).with_timing(timing);
    let mut driver = profiler.clone();
    driver.enter(phase::SHARD);
    let report = sim.run(rows.iter().copied());
    driver.exit(phase::SHARD);
    let mitigated = sim.drain_mitigated();
    let result = ShardResult {
        channel,
        shard_acts: rows.len() as u64,
        stats: sim.tracker().stats(),
        report,
        mitigated,
    };
    Ok((result, profiler.tree()))
}

/// Merges shard results with order-insensitive reductions: shards are
/// reordered by channel, counters are summed (u64 addition is commutative
/// and associative), and the union of mitigated rows is sorted. Feeding the
/// same shard set in any order produces a bit-identical [`MergedRun`].
pub fn merge_shards(mut shards: Vec<ShardResult>) -> MergedRun {
    shards.sort_by_key(|s| s.channel);
    let mut stats = HydraStats::default();
    let mut report = ActivationSimReport::default();
    let mut mitigated = Vec::new();
    for shard in &shards {
        stats.merge(&shard.stats);
        report.merge(&shard.report);
        mitigated.extend_from_slice(&shard.mitigated);
    }
    mitigated.sort_unstable();
    MergedRun {
        shards,
        stats,
        report,
        mitigated,
    }
}

/// A factory building one tracker per channel shard. The factory is called
/// once per channel (on whichever worker runs that shard), so trackers
/// never cross threads — only the factory and the results do.
pub type ShardTrackerFactory =
    Box<dyn Fn(u8) -> Result<Box<dyn ActivationTracker + Send>, String> + Send + Sync>;

/// The outcome of one tracker-generic channel shard. The Hydra-specific
/// [`ShardResult`] additionally carries [`HydraStats`]; a generic tracker
/// has no common stats surface beyond the simulator's report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerShardResult {
    /// The channel this shard covered.
    pub channel: u8,
    /// Demand activations routed to this shard.
    pub shard_acts: u64,
    /// The shard simulator's report.
    pub report: ActivationSimReport,
    /// Rows mitigated in this shard, in mitigation order.
    pub mitigated: Vec<RowAddr>,
}

/// A tracker-generic multi-channel run after the deterministic merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerMergedRun {
    /// Per-shard results, ordered by channel.
    pub shards: Vec<TrackerShardResult>,
    /// System-wide simulator counters (order-insensitive sum over shards).
    pub report: ActivationSimReport,
    /// Every mitigated row across all shards, sorted.
    pub mitigated: Vec<RowAddr>,
}

/// [`ShardedSim`] generalized over the tracker: the same channel-sharded,
/// deterministically-merged simulation for **any** [`ActivationTracker`] —
/// the hook `hydra-arena` uses to race its whole roster on the engine.
///
/// The Hydra-specific [`ShardedSim`] is untouched by this type (its
/// per-shard computation, merge, and profiled paths are shared code only
/// below the tracker boundary), so every existing Hydra gate keeps its
/// byte-identical output.
pub struct TrackerShardedSim {
    geometry: MemGeometry,
    factory: ShardTrackerFactory,
    timing: DramTiming,
}

impl TrackerShardedSim {
    /// Builds a sharded simulator that constructs `factory(c)` for channel
    /// `c`. Every channel's tracker is built once up front to surface
    /// invalid configurations at construction, not mid-run on a worker.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the factory rejects any channel.
    pub fn new(geometry: MemGeometry, factory: ShardTrackerFactory) -> Result<Self, EngineError> {
        for channel in 0..geometry.channels() {
            factory(channel)
                .map_err(|e| EngineError::new(format!("channel {channel} config rejected: {e}")))?;
        }
        Ok(TrackerShardedSim {
            geometry,
            factory,
            timing: DramTiming::ddr4_3200(),
        })
    }

    /// Overrides the DRAM timing used by every shard (e.g. a scaled window).
    pub fn with_timing(mut self, timing: DramTiming) -> Self {
        self.timing = timing;
        self
    }

    /// The simulated geometry.
    pub fn geometry(&self) -> MemGeometry {
        self.geometry
    }

    /// Runs every shard on the pool and merges. Deterministic: bit-identical
    /// to [`run_sequential`](Self::run_sequential) on the same stream
    /// regardless of worker count or completion order, provided the factory
    /// builds deterministic trackers (every roster tracker does — PARA and
    /// MINT take their RNG seed at construction).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if any shard fails, panics, or is skipped.
    pub fn run_parallel(
        &self,
        pool: &WorkerPool,
        rows: &[RowAddr],
    ) -> Result<TrackerMergedRun, EngineError> {
        let shards = partition_by_channel(self.geometry.channels(), rows);
        let items: Vec<(u8, Vec<RowAddr>)> = shards
            .into_iter()
            .enumerate()
            .map(|(c, sub)| (c as u8, sub))
            .collect();
        let geometry = self.geometry;
        let timing = self.timing;
        let factory = &self.factory;
        let outcomes = pool.run_ordered(items, move |_, (channel, sub)| {
            run_tracker_shard(geometry, timing, channel, factory, &sub)
        });
        let mut results = Vec::with_capacity(outcomes.len());
        for (channel, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                CellOutcome::Done(Ok(result)) => results.push(result),
                CellOutcome::Done(Err(e)) => {
                    return Err(EngineError::new(format!("shard {channel} failed: {e}")));
                }
                CellOutcome::Panicked(msg) => {
                    return Err(EngineError::new(format!("shard {channel} panicked: {msg}")));
                }
                CellOutcome::Skipped => {
                    return Err(EngineError::new(format!("shard {channel} never ran")));
                }
            }
        }
        Ok(merge_tracker_shards(results))
    }

    /// The sequential reference: runs each shard one at a time, in channel
    /// order, on the calling thread, then merges identically to
    /// [`run_parallel`](Self::run_parallel).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if a shard's tracker cannot be built.
    pub fn run_sequential(&self, rows: &[RowAddr]) -> Result<TrackerMergedRun, EngineError> {
        let shards = partition_by_channel(self.geometry.channels(), rows);
        let mut results = Vec::with_capacity(shards.len());
        for (channel, sub) in shards.into_iter().enumerate() {
            let channel = channel as u8;
            results.push(
                run_tracker_shard(self.geometry, self.timing, channel, &self.factory, &sub)
                    .map_err(|e| EngineError::new(format!("shard {channel} failed: {e}")))?,
            );
        }
        Ok(merge_tracker_shards(results))
    }
}

impl std::fmt::Debug for TrackerShardedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackerShardedSim")
            .field("geometry", &self.geometry)
            .field("timing", &self.timing)
            .finish_non_exhaustive()
    }
}

/// Replays one channel's substream through a freshly built tracker.
fn run_tracker_shard(
    geometry: MemGeometry,
    timing: DramTiming,
    channel: u8,
    factory: &ShardTrackerFactory,
    rows: &[RowAddr],
) -> Result<TrackerShardResult, String> {
    let tracker = factory(channel)?;
    let mut sim = ActivationSim::new(geometry, tracker).with_timing(timing);
    let report = sim.run(rows.iter().copied());
    let mitigated = sim.drain_mitigated();
    Ok(TrackerShardResult {
        channel,
        shard_acts: rows.len() as u64,
        report,
        mitigated,
    })
}

/// Merges tracker-generic shard results exactly like [`merge_shards`]:
/// shards reordered by channel, counters summed, mitigated rows sorted.
pub fn merge_tracker_shards(mut shards: Vec<TrackerShardResult>) -> TrackerMergedRun {
    shards.sort_by_key(|s| s.channel);
    let mut report = ActivationSimReport::default();
    let mut mitigated = Vec::new();
    for shard in &shards {
        report.merge(&shard.report);
        mitigated.extend_from_slice(&shard.mitigated);
    }
    mitigated.sort_unstable();
    TrackerMergedRun {
        shards,
        report,
        mitigated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny2() -> MemGeometry {
        match MemGeometry::tiny_with_channels(2) {
            Ok(g) => g,
            Err(e) => panic!("tiny 2-channel geometry: {e}"),
        }
    }

    fn sharded(geometry: MemGeometry) -> ShardedSim {
        let configs = (0..geometry.channels())
            .map(|c| {
                let mut b = HydraConfig::builder(geometry, c);
                b.thresholds(16, 12).gct_entries(64).rcc_entries(32);
                match b.build() {
                    Ok(c) => c,
                    Err(e) => panic!("config: {e}"),
                }
            })
            .collect();
        match ShardedSim::new(geometry, configs) {
            Ok(s) => s,
            Err(e) => panic!("sharded sim: {e}"),
        }
    }

    fn interleaved_hammer(geometry: MemGeometry, acts: u64) -> Vec<RowAddr> {
        (0..acts)
            .map(|i| {
                let channel = (i % u64::from(geometry.channels())) as u8;
                RowAddr::new(channel, 0, (i % 3) as u8, 100 + (i % 2) as u32 * 2)
            })
            .collect()
    }

    #[test]
    fn rejects_wrong_config_count() {
        let geometry = tiny2();
        let config = match HydraConfig::builder(geometry, 0)
            .thresholds(16, 12)
            .gct_entries(64)
            .build()
        {
            Ok(c) => c,
            Err(e) => panic!("config: {e}"),
        };
        assert!(ShardedSim::new(geometry, vec![config]).is_err());
    }

    #[test]
    fn rejects_misplaced_channel_config() {
        let geometry = tiny2();
        let mk = |ch| {
            let mut b = HydraConfig::builder(geometry, ch);
            b.thresholds(16, 12).gct_entries(64);
            b.build()
        };
        let (c0, c1) = match (mk(0), mk(1)) {
            (Ok(a), Ok(b)) => (a, b),
            _ => panic!("configs"),
        };
        assert!(ShardedSim::new(geometry, vec![c1, c0]).is_err());
    }

    #[test]
    fn partition_preserves_per_channel_order() {
        let rows = vec![
            RowAddr::new(1, 0, 0, 5),
            RowAddr::new(0, 0, 0, 1),
            RowAddr::new(1, 0, 0, 6),
            RowAddr::new(0, 0, 0, 2),
        ];
        let shards = partition_by_channel(2, &rows);
        assert_eq!(
            shards[0],
            vec![RowAddr::new(0, 0, 0, 1), RowAddr::new(0, 0, 0, 2)]
        );
        assert_eq!(
            shards[1],
            vec![RowAddr::new(1, 0, 0, 5), RowAddr::new(1, 0, 0, 6)]
        );
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let geometry = tiny2();
        let sim = sharded(geometry);
        let rows = interleaved_hammer(geometry, 6000);
        let pool = WorkerPool::new(4);
        let (par, seq) = match (sim.run_parallel(&pool, &rows), sim.run_sequential(&rows)) {
            (Ok(p), Ok(s)) => (p, s),
            other => panic!("run failed: {other:?}"),
        };
        assert_eq!(par, seq);
        assert!(par.stats.mitigations > 0, "hammer must trigger mitigations");
    }

    #[test]
    fn merge_is_order_insensitive() {
        let geometry = tiny2();
        let sim = sharded(geometry);
        let rows = interleaved_hammer(geometry, 4000);
        let seq = match sim.run_sequential(&rows) {
            Ok(s) => s,
            Err(e) => panic!("sequential run: {e}"),
        };
        let mut reversed = seq.shards.clone();
        reversed.reverse();
        assert_eq!(merge_shards(reversed), seq);
    }

    #[test]
    fn profiled_runs_match_unprofiled_bit_for_bit() {
        let geometry = tiny2();
        let sim = sharded(geometry);
        let rows = interleaved_hammer(geometry, 6000);
        let pool = WorkerPool::new(4);
        let seq = match sim.run_sequential(&rows) {
            Ok(s) => s,
            Err(e) => panic!("sequential run: {e}"),
        };
        let (par_profiled, par_tree) = match sim.run_parallel_profiled(&pool, &rows) {
            Ok(r) => r,
            Err(e) => panic!("parallel profiled run: {e}"),
        };
        let (seq_profiled, seq_tree) = match sim.run_sequential_profiled(&rows) {
            Ok(r) => r,
            Err(e) => panic!("sequential profiled run: {e}"),
        };
        // Instrumentation changes nothing the merge can observe.
        assert_eq!(par_profiled, seq);
        assert_eq!(seq_profiled, seq);
        // The merged tree has one `shard` root carrying every shard's spans
        // (span counts are deterministic; only the timings are not).
        for tree in [&par_tree, &seq_tree] {
            let roots: Vec<&str> = tree.roots.keys().map(String::as_str).collect();
            assert_eq!(roots, vec!["shard"]);
            let shard = &tree.roots["shard"];
            assert_eq!(shard.count, u64::from(geometry.channels()));
            assert_eq!(
                shard.children["activate"].count,
                seq.report.total_ops(),
                "one activate span per activation fed to any shard tracker"
            );
            if let Err(e) = tree.check_conservation(0.0) {
                panic!("conservation: {e}");
            }
        }
    }

    #[test]
    fn merged_totals_cover_every_shard() {
        let geometry = tiny2();
        let sim = sharded(geometry);
        let rows = interleaved_hammer(geometry, 4000);
        let merged = match sim.run_sequential(&rows) {
            Ok(m) => m,
            Err(e) => panic!("sequential run: {e}"),
        };
        let shard_acts: u64 = merged.shards.iter().map(|s| s.shard_acts).sum();
        assert_eq!(shard_acts, rows.len() as u64);
        let shard_mitigations: u64 = merged.shards.iter().map(|s| s.report.mitigations).sum();
        assert_eq!(merged.report.mitigations, shard_mitigations);
        let mut sorted = merged.mitigated.clone();
        sorted.sort_unstable();
        assert_eq!(merged.mitigated, sorted, "mitigated set is sorted");
    }

    /// A factory building the same per-channel Hydra the concrete
    /// [`ShardedSim`] tests use, behind the generic trait object.
    fn hydra_factory(geometry: MemGeometry) -> ShardTrackerFactory {
        Box::new(move |channel| {
            let mut b = HydraConfig::builder(geometry, channel);
            b.thresholds(16, 12).gct_entries(64).rcc_entries(32);
            let config = b.build().map_err(|e| e.to_string())?;
            let tracker = Hydra::new(config).map_err(|e| e.to_string())?;
            Ok(Box::new(tracker) as Box<dyn ActivationTracker + Send>)
        })
    }

    #[test]
    fn generic_path_matches_the_concrete_hydra_path() {
        let geometry = tiny2();
        let rows = interleaved_hammer(geometry, 6000);
        let concrete = match sharded(geometry).run_sequential(&rows) {
            Ok(m) => m,
            Err(e) => panic!("concrete run: {e}"),
        };
        let generic_sim = match TrackerShardedSim::new(geometry, hydra_factory(geometry)) {
            Ok(s) => s,
            Err(e) => panic!("generic sim: {e}"),
        };
        let generic = match generic_sim.run_sequential(&rows) {
            Ok(m) => m,
            Err(e) => panic!("generic run: {e}"),
        };
        assert_eq!(generic.report, concrete.report);
        assert_eq!(generic.mitigated, concrete.mitigated);
        assert!(generic.report.mitigations > 0, "non-vacuous comparison");
    }

    #[test]
    fn generic_parallel_matches_generic_sequential() {
        let geometry = tiny2();
        let rows = interleaved_hammer(geometry, 6000);
        let sim = match TrackerShardedSim::new(geometry, hydra_factory(geometry)) {
            Ok(s) => s,
            Err(e) => panic!("generic sim: {e}"),
        };
        let par = match sim.run_parallel(&WorkerPool::new(4), &rows) {
            Ok(m) => m,
            Err(e) => panic!("parallel run: {e}"),
        };
        let seq = match sim.run_sequential(&rows) {
            Ok(m) => m,
            Err(e) => panic!("sequential run: {e}"),
        };
        assert_eq!(par, seq);
    }

    #[test]
    fn generic_factory_rejection_surfaces_at_construction() {
        let geometry = tiny2();
        let factory: ShardTrackerFactory =
            Box::new(|channel| Err(format!("channel {channel} refused")));
        assert!(TrackerShardedSim::new(geometry, factory).is_err());
    }
}
