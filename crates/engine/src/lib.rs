//! hydra-engine: the parallel execution subsystem of the Hydra
//! reproduction.
//!
//! Hydra's headline results are *design-space* results: sensitivity sweeps
//! over GCT size, RCC size, `T_G`, and the Row-Hammer threshold (Figures
//! 9–12, Tables 4–6), each point a full (config × workload) simulation.
//! Running hundreds of cells one at a time is what made the seed repo's
//! sweeps impractical; this crate makes them parallel without giving up the
//! property every other subsystem leans on — determinism.
//!
//! Three layers, bottom up:
//!
//! - [`pool`] — a hand-rolled worker pool (plain `std`, no registry
//!   dependencies): scoped threads over a bounded MPSC queue, results
//!   returned in submission order, panics attributed to the exact item
//!   that raised them. Its wire protocol lives in [`protocol`], shared
//!   with `hydra-analysis`'s exhaustive schedule explorer so the checked
//!   model and the shipped code cannot drift apart.
//! - [`shard`] — the sharded multi-channel simulator: one independent
//!   tracker per memory channel, per-channel substreams replayed
//!   concurrently, merged with order-insensitive reductions so the
//!   parallel run is bit-identical to the sequential reference.
//! - [`sweep`] — the design-space exploration driver behind `hydra sweep`:
//!   a declarative grid fanned across the parallel batch harness
//!   (`hydra_sim::batch`, keeping its panic isolation, watchdog, and
//!   retries per cell), emitting schema-versioned
//!   [`hydra-sweep-v1`](sweep::SWEEP_SCHEMA_VERSION) JSONL plus a
//!   Pareto-frontier summary over (SRAM bytes, slowdown, mitigations).
//!
//! Threading discipline: `repo-lint`'s `thread-spawn-layer` rule confines
//! thread spawning to this crate and the batch harness, the same way
//! `catch_unwind` is confined to the harness alone.

#![forbid(unsafe_code)]

use std::fmt;

pub mod pool;
pub mod protocol;
pub mod shard;
pub mod sweep;

pub use pool::{CellOutcome, WorkerPool};
pub use shard::{
    merge_shards, merge_tracker_shards, partition_by_channel, MergedRun, ShardResult,
    ShardTrackerFactory, ShardedSim, TrackerMergedRun, TrackerShardResult, TrackerShardedSim,
};
pub use sweep::{
    run_sweep, SweepCell, SweepGrid, SweepOutcome, SweepRow, TrendCheck, SWEEP_SCHEMA_VERSION,
};

/// An engine-level failure: an invalid shard plan, a sweep grid that
/// resolves to nothing, or a shard that died mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    message: String,
}

impl EngineError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        EngineError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EngineError {}
