//! Design-space exploration: declarative sweep grids, parallel execution,
//! and the `hydra-sweep-v1` wire format.
//!
//! A [`SweepGrid`] is the cross product of tracker parameters (GCT entries,
//! RCC entries, `T_RH`, `T_G` as a percentage of `T_H`) and workloads. Each
//! resulting [`SweepCell`] is one full activation-level simulation; cells
//! run through the parallel batch harness (`hydra_sim::batch`), so every
//! cell keeps the harness's panic isolation, watchdog, and retry budget
//! while many cells run concurrently.
//!
//! Determinism contract: a cell's result depends only on the cell — never
//! on worker count, scheduling, or sibling cells — and results are reported
//! in grid order. `--jobs 4` therefore produces byte-identical rows to
//! `--jobs 1` once the one nondeterministic field (`wall_secs`, emitted
//! last on each line) is excluded; [`SweepRow::deterministic_json`] is that
//! projection, and the CI `sweep-smoke` job diffs it across job counts.
//!
//! The summary reduces the grid the way the paper's Figures 9–12 do:
//! a Pareto frontier over (SRAM bytes, slowdown, mitigations) and a
//! GCT-size trend check per (workload, `T_RH`) group — at a fixed
//! threshold, growing the GCT must not increase mitigations or slowdown.

use crate::EngineError;
use hydra_core::{Hydra, HydraConfig, HydraStorage};
use hydra_dram::DramTiming;
use hydra_sim::batch::{BatchConfig, BatchJob, BatchRunner, JobStatus};
use hydra_sim::ActivationSim;
use hydra_types::addr::RowAddr;
use hydra_types::deadline::Stopwatch;
use hydra_types::error::ConfigError;
use hydra_types::geometry::MemGeometry;
use hydra_workloads::attacks::AttackPattern;
use hydra_workloads::registry;
use hydra_workloads::TraceSource as _;
use std::fmt::Write as _;

/// Version tag stamped on every `hydra sweep` JSONL line. This constant is
/// the only place the literal may appear in library code (enforced by
/// `repo-lint`'s schema-single-source rule).
pub const SWEEP_SCHEMA_VERSION: &str = "hydra-sweep-v1";

/// Refresh-window scaling applied to every sweep cell, matching the bench
/// harness: a short run still crosses many tracking windows.
const WINDOW_SCALE: u64 = 1000;

/// A declarative sweep grid. Cells are the cross product of every list, in
/// deterministic nested order: workload (outermost), then `t_rh`, `tg_pct`,
/// `gct_entries`, `rcc_entries` (innermost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    /// Geometry name (`tiny`, `isca22`, or `ddr5`).
    pub geometry: String,
    /// GCT entry counts to sweep (per instance).
    pub gct_entries: Vec<usize>,
    /// RCC entry counts to sweep (per instance).
    pub rcc_entries: Vec<usize>,
    /// Row-Hammer thresholds to sweep (`T_H = T_RH / 2`).
    pub t_rh: Vec<u32>,
    /// `T_G` as a percentage of `T_H` (the paper's default is 80).
    pub tg_pct: Vec<u32>,
    /// Workload names: registry workloads or canonical attack patterns.
    pub workloads: Vec<String>,
    /// Demand activations per cell.
    pub acts: u64,
    /// Trace seed shared by every cell.
    pub seed: u64,
}

impl SweepGrid {
    /// The CI smoke grid: tiny geometry, a three-point GCT sweep at a fixed
    /// `T_RH`, one benign and one attack workload. Small enough to finish
    /// in seconds, wide enough that the GCT-size trend (mitigation and
    /// slowdown overhead falling as the GCT grows) is visible.
    pub fn smoke() -> Self {
        SweepGrid {
            geometry: "tiny".to_string(),
            gct_entries: vec![64, 256, 1024],
            rcc_entries: vec![64],
            t_rh: vec![32],
            tg_pct: vec![80],
            workloads: vec!["gups".to_string(), "double_sided".to_string()],
            acts: 20_000,
            seed: 42,
        }
    }

    /// Resolves the geometry name.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for an unknown name.
    pub fn resolve_geometry(&self) -> Result<MemGeometry, EngineError> {
        match self.geometry.as_str() {
            "tiny" => Ok(MemGeometry::tiny()),
            "isca22" => Ok(MemGeometry::isca22_baseline()),
            "ddr5" => Ok(MemGeometry::ddr5_32gb()),
            other => Err(EngineError::new(format!("unknown geometry {other}"))),
        }
    }

    /// Expands the grid into cells, in deterministic nested order.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the geometry is unknown, any list is
    /// empty, or a workload name is neither a registry workload nor a
    /// canonical attack pattern.
    pub fn cells(&self) -> Result<Vec<SweepCell>, EngineError> {
        let geometry = self.resolve_geometry()?;
        for (name, len) in [
            ("gct_entries", self.gct_entries.len()),
            ("rcc_entries", self.rcc_entries.len()),
            ("t_rh", self.t_rh.len()),
            ("tg_pct", self.tg_pct.len()),
            ("workloads", self.workloads.len()),
        ] {
            if len == 0 {
                return Err(EngineError::new(format!("empty sweep axis {name}")));
            }
        }
        let mut cells = Vec::new();
        for workload in &self.workloads {
            if registry::by_name(workload).is_none()
                && AttackPattern::canonical(workload, geometry).is_none()
            {
                return Err(EngineError::new(format!("unknown workload {workload}")));
            }
            for &t_rh in &self.t_rh {
                for &tg_pct in &self.tg_pct {
                    for &gct in &self.gct_entries {
                        for &rcc in &self.rcc_entries {
                            cells.push(SweepCell {
                                geometry,
                                geometry_name: self.geometry.clone(),
                                workload: workload.clone(),
                                gct_entries: gct,
                                rcc_entries: rcc,
                                t_rh,
                                tg_pct,
                                acts: self.acts,
                                seed: self.seed,
                            });
                        }
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// One point of the design space: a tracker configuration × workload pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell {
    /// Resolved geometry.
    pub geometry: MemGeometry,
    /// The geometry's name, carried into the output row.
    pub geometry_name: String,
    /// Workload or attack-pattern name.
    pub workload: String,
    /// GCT entries for this instance.
    pub gct_entries: usize,
    /// RCC entries for this instance.
    pub rcc_entries: usize,
    /// Row-Hammer threshold.
    pub t_rh: u32,
    /// `T_G` as a percentage of `T_H`.
    pub tg_pct: u32,
    /// Demand activations to replay.
    pub acts: u64,
    /// Trace seed.
    pub seed: u64,
}

impl SweepCell {
    /// The cell's stable label (also the batch-job label).
    pub fn label(&self) -> String {
        format!(
            "{}/trh{}/tg{}/gct{}/rcc{}",
            self.workload, self.t_rh, self.tg_pct, self.gct_entries, self.rcc_entries
        )
    }

    /// `T_H` for this cell (`T_RH / 2`, Sec. 4.6).
    pub fn t_h(&self) -> u32 {
        self.t_rh / 2
    }

    /// `T_G` for this cell: `tg_pct` percent of `T_H`, clamped into the
    /// valid `[1, T_H)` range.
    pub fn t_g(&self) -> u32 {
        let t_h = self.t_h();
        (t_h * self.tg_pct / 100).clamp(1, t_h.saturating_sub(1).max(1))
    }

    /// Builds the tracker configuration for this cell (channel 0 — sweep
    /// cells route their whole stream to one instance, like the bench
    /// matrix).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for parameter combinations the tracker
    /// rejects (e.g. a GCT larger than the channel's row count).
    pub fn config(&self) -> Result<HydraConfig, ConfigError> {
        HydraConfig::builder(self.geometry, 0)
            .thresholds(self.t_h(), self.t_g())
            .gct_entries(self.gct_entries)
            .rcc_entries(self.rcc_entries)
            .build()
    }

    /// Materializes the cell's activation stream: a registry workload's
    /// trace mapped to rows, or a canonical attack pattern pinned to
    /// channel 0.
    ///
    /// # Errors
    ///
    /// Returns a description if the workload name resolves to neither.
    pub fn rows(&self) -> Result<Vec<RowAddr>, String> {
        if let Some(spec) = registry::by_name(&self.workload) {
            let mut trace = spec.build(self.geometry, 256, self.seed);
            return Ok((0..self.acts)
                .map(|_| {
                    let mut row = self.geometry.row_of_line(trace.next_op().addr);
                    row.channel = 0;
                    row
                })
                .collect());
        }
        let pattern = AttackPattern::canonical(&self.workload, self.geometry)
            .ok_or_else(|| format!("unknown workload {}", self.workload))?;
        let mut rows = pattern.rows(self.geometry);
        Ok((0..self.acts)
            .map(|_| {
                let mut row = rows.next_row();
                row.channel = 0;
                row
            })
            .collect())
    }

    /// Runs the cell: builds the tracker, replays the stream, and reduces
    /// to one [`SweepRow`].
    ///
    /// # Errors
    ///
    /// Returns a description of any configuration or workload failure.
    pub fn run(&self) -> Result<SweepRow, String> {
        let config = self.config().map_err(|e| e.to_string())?;
        let sram_bytes = HydraStorage::for_instance(&config).total_sram_bytes();
        let tracker = Hydra::new(config).map_err(|e| e.to_string())?;
        let timing = DramTiming::ddr4_3200().with_scaled_window(WINDOW_SCALE);
        let mut sim = ActivationSim::new(self.geometry, tracker).with_timing(timing);
        let rows = self.rows()?;
        let start = Stopwatch::start();
        let report = sim.run(rows);
        let wall_secs = start.elapsed_nanos() as f64 / 1e9;
        let stats = sim.tracker().stats();
        Ok(SweepRow {
            workload: self.workload.clone(),
            geometry: self.geometry_name.clone(),
            gct_entries: self.gct_entries,
            rcc_entries: self.rcc_entries,
            t_rh: self.t_rh,
            t_h: self.t_h(),
            t_g: self.t_g(),
            acts: self.acts,
            seed: self.seed,
            sram_bytes,
            demand_acts: report.demand_acts,
            mitigation_acts: report.mitigation_acts,
            side_reads: report.side_reads,
            side_writes: report.side_writes,
            mitigations: report.mitigations,
            window_resets: report.window_resets,
            group_spills: stats.group_spills,
            gct_only: stats.gct_only,
            rcc_hits: stats.rcc_hits,
            rct_accesses: stats.rct_accesses,
            wall_secs,
        })
    }
}

/// One `hydra-sweep-v1` result row. Every field except `wall_secs` is a
/// pure function of the cell, so rows compare identically across job
/// counts; derived ratios are recomputed from the integer counters at
/// serialization time rather than stored.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Workload name.
    pub workload: String,
    /// Geometry name.
    pub geometry: String,
    /// GCT entries.
    pub gct_entries: usize,
    /// RCC entries.
    pub rcc_entries: usize,
    /// Row-Hammer threshold.
    pub t_rh: u32,
    /// Tracking threshold.
    pub t_h: u32,
    /// GCT threshold.
    pub t_g: u32,
    /// Demand activations requested.
    pub acts: u64,
    /// Trace seed.
    pub seed: u64,
    /// Instance SRAM bytes (GCT + RCC + RIT-ACT).
    pub sram_bytes: u64,
    /// Demand activations replayed.
    pub demand_acts: u64,
    /// Victim-refresh activations.
    pub mitigation_acts: u64,
    /// Tracker metadata reads.
    pub side_reads: u64,
    /// Tracker metadata writes.
    pub side_writes: u64,
    /// Mitigations issued.
    pub mitigations: u64,
    /// Tracking-window resets.
    pub window_resets: u64,
    /// Group spills (GCT entries reaching `T_G`).
    pub group_spills: u64,
    /// Activations handled by the GCT alone.
    pub gct_only: u64,
    /// Activations hitting in the RCC.
    pub rcc_hits: u64,
    /// Activations requiring a DRAM RCT access.
    pub rct_accesses: u64,
    /// Wall-clock seconds for this cell — the one nondeterministic field,
    /// emitted last and excluded from [`deterministic_json`](Self::deterministic_json).
    pub wall_secs: f64,
}

impl SweepRow {
    /// Total DRAM operations charged.
    pub fn total_ops(&self) -> u64 {
        self.demand_acts + self.mitigation_acts + self.side_reads + self.side_writes
    }

    /// Simulated slowdown proxy: extra DRAM operations per demand
    /// activation, as a percentage.
    pub fn slowdown_pct(&self) -> f64 {
        if self.demand_acts == 0 {
            0.0
        } else {
            (self.total_ops() as f64 / self.demand_acts as f64 - 1.0) * 100.0
        }
    }

    /// Exact slowdown comparison: is `self` strictly slower than `other`?
    /// Cross-multiplied integer ratios, so the answer never depends on
    /// floating-point rounding.
    pub fn slower_than(&self, other: &SweepRow) -> bool {
        let (a_ops, a_acts) = (
            u128::from(self.total_ops()),
            u128::from(self.demand_acts.max(1)),
        );
        let (b_ops, b_acts) = (
            u128::from(other.total_ops()),
            u128::from(other.demand_acts.max(1)),
        );
        a_ops * b_acts > b_ops * a_acts
    }

    /// The deterministic projection of this row, shared by both
    /// serializations (every field except `wall_secs`), without the
    /// closing brace.
    fn json_body(&self) -> String {
        let mut out = String::with_capacity(384);
        out.push_str("{\"schema\":\"");
        out.push_str(SWEEP_SCHEMA_VERSION);
        out.push_str("\",\"kind\":\"cell\",\"workload\":\"");
        escape_into(&self.workload, &mut out);
        out.push_str("\",\"geometry\":\"");
        escape_into(&self.geometry, &mut out);
        let _ = write!(
            out,
            concat!(
                "\",\"gct_entries\":{},\"rcc_entries\":{},",
                "\"t_rh\":{},\"t_h\":{},\"t_g\":{},\"acts\":{},\"seed\":{},",
                "\"sram_bytes\":{},\"demand_acts\":{},\"mitigation_acts\":{},",
                "\"side_reads\":{},\"side_writes\":{},\"mitigations\":{},",
                "\"window_resets\":{},\"group_spills\":{},\"gct_only\":{},",
                "\"rcc_hits\":{},\"rct_accesses\":{},\"slowdown_pct\":{:.4}"
            ),
            self.gct_entries,
            self.rcc_entries,
            self.t_rh,
            self.t_h,
            self.t_g,
            self.acts,
            self.seed,
            self.sram_bytes,
            self.demand_acts,
            self.mitigation_acts,
            self.side_reads,
            self.side_writes,
            self.mitigations,
            self.window_resets,
            self.group_spills,
            self.gct_only,
            self.rcc_hits,
            self.rct_accesses,
            self.slowdown_pct(),
        );
        out
    }

    /// The full JSONL line, `wall_secs` last.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.json_body();
        let _ = write!(out, ",\"wall_secs\":{:.6}}}", self.wall_secs);
        out
    }

    /// The row without its wall-clock field — identical across `--jobs`
    /// settings; the determinism gate diffs exactly this.
    pub fn deterministic_json(&self) -> String {
        let mut out = self.json_body();
        out.push('}');
        out
    }
}

/// One GCT-trend comparison: within a (workload, `T_RH`, RCC, `T_G`%)
/// group, the smallest-GCT cell against the largest.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendCheck {
    /// Workload name.
    pub workload: String,
    /// Row-Hammer threshold of the group.
    pub t_rh: u32,
    /// Smallest GCT in the group.
    pub gct_low: usize,
    /// Largest GCT in the group.
    pub gct_high: usize,
    /// Mitigations at the smallest GCT.
    pub mitigations_low: u64,
    /// Mitigations at the largest GCT.
    pub mitigations_high: u64,
    /// Slowdown at the smallest GCT.
    pub slowdown_low_pct: f64,
    /// Slowdown at the largest GCT.
    pub slowdown_high_pct: f64,
    /// True iff growing the GCT did not increase mitigations or slowdown.
    pub ok: bool,
}

/// The result of a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The grid that produced it.
    pub grid: SweepGrid,
    /// Completed rows, in grid order.
    pub rows: Vec<SweepRow>,
    /// Labels and errors of cells that failed terminally.
    pub failures: Vec<String>,
}

impl SweepOutcome {
    /// Indices (into [`rows`](Self::rows)) of the Pareto frontier
    /// minimizing (SRAM bytes, slowdown, mitigations), ascending.
    pub fn pareto(&self) -> Vec<usize> {
        pareto_frontier(&self.rows)
    }

    /// GCT-size trend checks, one per (workload, `T_RH`, RCC, `T_G`%)
    /// group with at least two distinct GCT sizes.
    pub fn trend_checks(&self) -> Vec<TrendCheck> {
        gct_trend(&self.rows)
    }

    /// True iff every trend check passed (vacuously true with no groups).
    pub fn trend_ok(&self) -> bool {
        self.trend_checks().iter().all(|t| t.ok)
    }

    /// The complete `hydra-sweep-v1` report: a meta line, one line per
    /// cell (in grid order, `wall_secs` last), and a summary line with the
    /// Pareto frontier and trend checks.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.rows.len() + 2);
        lines.push(self.meta_line());
        lines.extend(self.rows.iter().map(SweepRow::to_jsonl));
        lines.push(self.summary_line());
        lines
    }

    /// The deterministic projection used by the `--jobs` equivalence gate:
    /// every line of [`jsonl_lines`](Self::jsonl_lines) except that cell
    /// rows drop `wall_secs`.
    pub fn deterministic_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.rows.len() + 2);
        lines.push(self.meta_line());
        lines.extend(self.rows.iter().map(SweepRow::deterministic_json));
        lines.push(self.summary_line());
        lines
    }

    fn meta_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"");
        out.push_str(SWEEP_SCHEMA_VERSION);
        out.push_str("\",\"kind\":\"meta\",\"geometry\":\"");
        escape_into(&self.grid.geometry, &mut out);
        out.push_str("\",\"workloads\":[");
        for (i, w) in self.grid.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(w, &mut out);
            out.push('"');
        }
        let _ = write!(
            out,
            "],\"gct_entries\":{:?},\"rcc_entries\":{:?},\"t_rh\":{:?},\"tg_pct\":{:?},\"acts\":{},\"seed\":{}}}",
            self.grid.gct_entries,
            self.grid.rcc_entries,
            self.grid.t_rh,
            self.grid.tg_pct,
            self.grid.acts,
            self.grid.seed,
        );
        out
    }

    fn summary_line(&self) -> String {
        let pareto = self.pareto();
        let trends = self.trend_checks();
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":\"");
        out.push_str(SWEEP_SCHEMA_VERSION);
        let _ = write!(
            out,
            "\",\"kind\":\"summary\",\"cells\":{},\"failed\":{},\"pareto\":[",
            self.rows.len() + self.failures.len(),
            self.failures.len(),
        );
        for (i, &idx) in pareto.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let row = &self.rows[idx];
            let _ = write!(
                out,
                concat!(
                    "{{\"workload\":\"{}\",\"gct_entries\":{},\"rcc_entries\":{},",
                    "\"t_rh\":{},\"sram_bytes\":{},\"slowdown_pct\":{:.4},\"mitigations\":{}}}"
                ),
                row.workload,
                row.gct_entries,
                row.rcc_entries,
                row.t_rh,
                row.sram_bytes,
                row.slowdown_pct(),
                row.mitigations,
            );
        }
        out.push_str("],\"trend\":[");
        for (i, t) in trends.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                concat!(
                    "{{\"workload\":\"{}\",\"t_rh\":{},\"gct_low\":{},\"gct_high\":{},",
                    "\"mitigations_low\":{},\"mitigations_high\":{},",
                    "\"slowdown_low_pct\":{:.4},\"slowdown_high_pct\":{:.4},\"ok\":{}}}"
                ),
                t.workload,
                t.t_rh,
                t.gct_low,
                t.gct_high,
                t.mitigations_low,
                t.mitigations_high,
                t.slowdown_low_pct,
                t.slowdown_high_pct,
                t.ok,
            );
        }
        let _ = write!(out, "],\"trend_ok\":{}}}", self.trend_ok());
        out
    }
}

/// One sweep cell as a batch job, so the harness's panic isolation,
/// watchdog, and retries apply per cell.
pub struct SweepCellJob {
    cell: SweepCell,
}

impl BatchJob for SweepCellJob {
    type Output = SweepRow;

    fn label(&self) -> String {
        self.cell.label()
    }

    fn run(&self, _attempt: u32) -> Result<SweepRow, String> {
        self.cell.run()
    }

    fn replay_artifact(&self) -> Option<String> {
        let c = &self.cell;
        Some(format!(
            "hydra-sweep-replay\nworkload={}\ngeometry={}\ngct_entries={}\n\
             rcc_entries={}\nt_rh={}\ntg_pct={}\nacts={}\nseed={}\n",
            c.workload,
            c.geometry_name,
            c.gct_entries,
            c.rcc_entries,
            c.t_rh,
            c.tg_pct,
            c.acts,
            c.seed,
        ))
    }
}

/// Expands `grid` and runs every cell through the batch harness with the
/// given policy (`batch.jobs` controls parallelism). Rows come back in
/// grid order regardless of completion order.
///
/// # Errors
///
/// Returns [`EngineError`] if the grid itself is invalid; individual cell
/// failures are reported in [`SweepOutcome::failures`], not as errors.
pub fn run_sweep(grid: &SweepGrid, batch: BatchConfig) -> Result<SweepOutcome, EngineError> {
    let cells = grid.cells()?;
    let jobs: Vec<SweepCellJob> = cells
        .into_iter()
        .map(|cell| SweepCellJob { cell })
        .collect();
    let report = BatchRunner::new(batch).run(jobs);
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for job in report.jobs {
        match (job.status, job.output) {
            (JobStatus::Succeeded { .. }, Some(row)) => rows.push(row),
            (JobStatus::Failed { last_error, .. }, _) => {
                failures.push(format!("{}: {last_error}", job.label));
            }
            (JobStatus::TimedOut { .. }, _) => {
                failures.push(format!("{}: watchdog timeout", job.label));
            }
            (JobStatus::Succeeded { .. }, None) => {
                failures.push(format!("{}: succeeded without output", job.label));
            }
        }
    }
    Ok(SweepOutcome {
        grid: grid.clone(),
        rows,
        failures,
    })
}

/// Indices of the rows not dominated on (SRAM bytes, slowdown,
/// mitigations), all minimized. Row `a` dominates row `b` when it is no
/// worse on every axis and strictly better on at least one; slowdown is
/// compared exactly (integer cross-multiplication). Ascending index order.
pub fn pareto_frontier(rows: &[SweepRow]) -> Vec<usize> {
    let dominates = |a: &SweepRow, b: &SweepRow| {
        let no_worse =
            a.sram_bytes <= b.sram_bytes && a.mitigations <= b.mitigations && !a.slower_than(b);
        let better =
            a.sram_bytes < b.sram_bytes || a.mitigations < b.mitigations || b.slower_than(a);
        no_worse && better
    };
    (0..rows.len())
        .filter(|&i| !rows.iter().any(|other| dominates(other, &rows[i])))
        .collect()
}

/// GCT-size trend checks: rows are grouped by (workload, `T_RH`, RCC
/// entries, `T_G`%); each group with at least two distinct GCT sizes
/// compares its smallest-GCT row against its largest. The paper's
/// qualitative shape (Fig. 9): at a fixed threshold, a larger GCT means
/// fewer groups spill, so tracking overhead and spurious mitigations fall.
pub fn gct_trend(rows: &[SweepRow]) -> Vec<TrendCheck> {
    let mut keys: Vec<(&str, u32, usize, u32)> = rows
        .iter()
        .map(|r| (r.workload.as_str(), r.t_rh, r.rcc_entries, r.t_g))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut checks = Vec::new();
    for (workload, t_rh, rcc, t_g) in keys {
        let group: Vec<&SweepRow> = rows
            .iter()
            .filter(|r| {
                r.workload == workload && r.t_rh == t_rh && r.rcc_entries == rcc && r.t_g == t_g
            })
            .collect();
        let low = group.iter().min_by_key(|r| r.gct_entries);
        let high = group.iter().max_by_key(|r| r.gct_entries);
        let (Some(low), Some(high)) = (low, high) else {
            continue;
        };
        if low.gct_entries == high.gct_entries {
            continue;
        }
        let ok = high.mitigations <= low.mitigations && !high.slower_than(low);
        checks.push(TrendCheck {
            workload: workload.to_string(),
            t_rh,
            gct_low: low.gct_entries,
            gct_high: high.gct_entries,
            mitigations_low: low.mitigations,
            mitigations_high: high.mitigations,
            slowdown_low_pct: low.slowdown_pct(),
            slowdown_high_pct: high.slowdown_pct(),
            ok,
        });
    }
    checks
}

/// Escapes a string for embedding in a JSON literal.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, gct: usize, sram: u64, mitigations: u64, side: u64) -> SweepRow {
        SweepRow {
            workload: workload.to_string(),
            geometry: "tiny".to_string(),
            gct_entries: gct,
            rcc_entries: 64,
            t_rh: 32,
            t_h: 16,
            t_g: 12,
            acts: 1000,
            seed: 42,
            sram_bytes: sram,
            demand_acts: 1000,
            mitigation_acts: 0,
            side_reads: side,
            side_writes: 0,
            mitigations,
            window_resets: 3,
            group_spills: 0,
            gct_only: 1000,
            rcc_hits: 0,
            rct_accesses: 0,
            wall_secs: 0.5,
        }
    }

    #[test]
    fn smoke_grid_expands_in_deterministic_order() {
        let grid = SweepGrid::smoke();
        let cells = match grid.cells() {
            Ok(c) => c,
            Err(e) => panic!("cells: {e}"),
        };
        assert_eq!(cells.len(), 6, "2 workloads × 3 GCT sizes");
        assert_eq!(cells[0].workload, "gups");
        assert_eq!(cells[0].gct_entries, 64);
        assert_eq!(cells[2].gct_entries, 1024);
        assert_eq!(cells[3].workload, "double_sided");
    }

    #[test]
    fn unknown_workload_and_geometry_are_rejected() {
        let mut grid = SweepGrid::smoke();
        grid.workloads = vec!["no-such-workload".to_string()];
        assert!(grid.cells().is_err());
        let mut grid = SweepGrid::smoke();
        grid.geometry = "no-such-geometry".to_string();
        assert!(grid.cells().is_err());
        let mut grid = SweepGrid::smoke();
        grid.gct_entries.clear();
        assert!(grid.cells().is_err());
    }

    #[test]
    fn tg_clamps_into_valid_range() {
        let mut cell = match SweepGrid::smoke().cells() {
            Ok(mut c) => c.remove(0),
            Err(e) => panic!("cells: {e}"),
        };
        cell.tg_pct = 100;
        assert!(cell.t_g() < cell.t_h());
        cell.tg_pct = 0;
        assert_eq!(cell.t_g(), 1);
    }

    #[test]
    fn deterministic_json_drops_only_wall_secs() {
        let mut a = row("gups", 64, 1000, 5, 100);
        let mut b = a.clone();
        b.wall_secs = 99.0;
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert_ne!(a.to_jsonl(), b.to_jsonl());
        assert!(a.to_jsonl().ends_with("}"));
        let det = a.deterministic_json();
        assert!(det.contains("\"schema\":\"hydra-sweep-v1\""));
        assert!(!det.contains("wall_secs"));
        a.mitigations = 6;
        assert_ne!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn pareto_keeps_only_non_dominated_rows() {
        let rows = vec![
            row("gups", 64, 1000, 10, 100), // dominated by index 2
            row("gups", 256, 2000, 2, 50),  // frontier: fewer mitigations
            row("gups", 128, 1000, 5, 80),  // frontier: cheapest non-dominated
            row("gups", 512, 4000, 5, 200), // dominated by index 1
        ];
        assert_eq!(pareto_frontier(&rows), vec![1, 2]);
    }

    #[test]
    fn trend_compares_gct_extremes() {
        let rows = vec![
            row("double_sided", 64, 1000, 50, 400),
            row("double_sided", 256, 2000, 40, 200),
            row("double_sided", 1024, 4000, 30, 100),
        ];
        let checks = gct_trend(&rows);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].gct_low, 64);
        assert_eq!(checks[0].gct_high, 1024);
        assert!(checks[0].ok);
        // A regressing trend (more mitigations at a bigger GCT) fails.
        let rows = vec![
            row("double_sided", 64, 1000, 10, 100),
            row("double_sided", 1024, 4000, 30, 100),
        ];
        assert!(!gct_trend(&rows)[0].ok);
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
