//! Baseline Row-Hammer trackers the Hydra paper compares against.
//!
//! * [`graphene::Graphene`] — the state-of-the-art SRAM tracker (Misra-Gries
//!   top-N frequent-row detection, per bank) the paper's Fig. 5 compares to.
//! * [`cra::Cra`] — Counter-Based Row Activation: one counter per row stored
//!   in DRAM with a conventional 64-byte-line metadata cache (Fig. 2, Fig. 5).
//! * [`para::Para`] — the stateless probabilistic mitigation (Sec. 7.3).
//! * [`ocpr::Ocpr`] — One-Counter-Per-Row: the exact SRAM oracle that upper
//!   bounds tracker storage (Table 1) and serves as the ground-truth tracker
//!   in tests.
//! * [`dcbf::DualCountingBloomFilter`] — the blacklisting filter of
//!   BlockHammer (D-CBF), which supports only rate-control mitigation, and
//!   [`blockhammer::BlockHammer`], its tracker wrapper for the full
//!   simulator (pair with `MitigationPolicy::RateLimit`).
//! * [`trr::VendorTrr`] — a deliberately weak vendor-TRR sampler, for the
//!   TRRespass narrative (Sec. 7.4).
//! * [`twice::TwiceTable`] — a TWiCE-style pruned counter table.
//! * [`cat::CounterTree`] — a CAT-style adaptive tree of counters.
//! * [`sketch::CountMinSketch`] — the shared count-min sketch primitive
//!   (CoMeT's first counting tier; also re-exported by `hydra-forensics`
//!   for attribution).
//! * [`storage`] — the analytic per-rank storage models behind Tables 1 & 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockhammer;
pub mod cat;
pub mod cra;
pub mod dcbf;
pub mod graphene;
pub mod misra_gries;
pub mod ocpr;
pub mod para;
pub mod region;
pub mod sketch;
pub mod storage;
pub mod trr;
pub mod twice;

pub use blockhammer::BlockHammer;
pub use cat::CounterTree;
pub use cra::{Cra, CraConfig};
pub use dcbf::DualCountingBloomFilter;
pub use graphene::{Graphene, GrapheneConfig};
pub use misra_gries::MisraGries;
pub use ocpr::Ocpr;
pub use para::Para;
pub use region::CounterRegion;
pub use sketch::CountMinSketch;
pub use trr::VendorTrr;
pub use twice::TwiceTable;
