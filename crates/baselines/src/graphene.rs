//! Graphene: per-bank Misra-Gries tracking (MICRO 2020), the paper's
//! state-of-the-art SRAM comparator.
//!
//! Each bank owns a Misra-Gries summary whose estimates upper-bound true
//! activation counts; when a tracked row's estimate reaches the operating
//! threshold, Graphene mitigates it. Because the table is reset every
//! tracking window, Graphene must operate at `T_RH / 2` (footnote 3), and to
//! guarantee capacity the per-bank entry count is `ACT_max / (T_RH / 2)`
//! (≈5441 entries at `T_RH` = 500 — Sec. 4.1).
//!
//! Graphene generates *no* DRAM side traffic: its only performance cost is
//! mitigation refreshes. Its cost is SRAM/CAM area (Tables 1 & 5).

use crate::misra_gries::MisraGries;
use hydra_types::addr::RowAddr;
use hydra_types::clock::MemCycle;
use hydra_types::error::ConfigError;
use hydra_types::geometry::MemGeometry;
use hydra_types::tracker::{ActivationKind, ActivationTracker, TrackerResponse};

/// Configuration for a per-channel Graphene instance.
#[derive(Debug, Clone)]
pub struct GrapheneConfig {
    /// Memory geometry.
    pub geometry: MemGeometry,
    /// Channel covered by this instance.
    pub channel: u8,
    /// Operating threshold (`T_RH / 2` — mitigate when an estimate reaches
    /// this).
    pub threshold: u32,
    /// Misra-Gries entries per bank.
    pub entries_per_bank: usize,
}

impl GrapheneConfig {
    /// Sizes Graphene for a Row-Hammer threshold: operating threshold
    /// `t_rh / 2` and `ceil(act_max / (t_rh / 2)) + 1` entries per bank.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `t_rh < 4` or the channel is out of range.
    pub fn for_threshold(
        geometry: MemGeometry,
        channel: u8,
        t_rh: u32,
        act_max_per_bank: u64,
    ) -> Result<Self, ConfigError> {
        if t_rh < 4 {
            return Err(ConfigError::new("T_RH must be at least 4"));
        }
        if channel >= geometry.channels() {
            return Err(ConfigError::new("channel out of range"));
        }
        let threshold = t_rh / 2;
        let entries = (act_max_per_bank.div_ceil(u64::from(threshold)) + 1) as usize;
        Ok(GrapheneConfig {
            geometry,
            channel,
            threshold,
            entries_per_bank: entries,
        })
    }
}

/// A per-channel Graphene tracker.
///
/// # Example
///
/// ```
/// use hydra_baselines::graphene::{Graphene, GrapheneConfig};
/// use hydra_types::{ActivationKind, ActivationTracker, MemGeometry, RowAddr};
///
/// let geom = MemGeometry::tiny();
/// let config = GrapheneConfig::for_threshold(geom, 0, 32, 1000)?;
/// let mut g = Graphene::new(config);
/// let row = RowAddr::new(0, 0, 0, 7);
/// let mut mitigations = 0;
/// for t in 0..40 {
///     mitigations += g.on_activation(row, t, ActivationKind::Demand).mitigations.len();
/// }
/// assert_eq!(mitigations, 2); // at the 16th and 32nd activations
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Graphene {
    config: GrapheneConfig,
    /// One summary per (rank, bank) of the channel.
    tables: Vec<MisraGries<u32>>,
    mitigations: u64,
    activations: u64,
}

impl Graphene {
    /// Creates a Graphene instance.
    pub fn new(config: GrapheneConfig) -> Self {
        let nbanks = usize::from(config.geometry.ranks_per_channel())
            * usize::from(config.geometry.banks_per_rank());
        Graphene {
            tables: (0..nbanks)
                .map(|_| MisraGries::new(config.entries_per_bank))
                .collect(),
            config,
            mitigations: 0,
            activations: 0,
        }
    }

    /// Convenience constructor matching the paper's comparison point
    /// (T_RH = 500, ACT_max from the default DDR4 timing).
    pub fn isca22_default(geometry: MemGeometry, channel: u8) -> Result<Self, ConfigError> {
        // ACT_max ≈ 1.36 M (Sec. 2.1).
        let config = GrapheneConfig::for_threshold(geometry, channel, 500, 1_360_000)?;
        Ok(Graphene::new(config))
    }

    /// The configuration.
    pub fn config(&self) -> &GrapheneConfig {
        &self.config
    }

    /// Mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Activations observed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Worst Misra-Gries spillover across the per-bank tables: the maximum
    /// amount by which any summary's estimates over-count the truth. The
    /// arena leaderboard reports this as Graphene's counting slack.
    pub fn max_spillover(&self) -> u64 {
        self.tables
            .iter()
            .map(MisraGries::spillover)
            .max()
            .unwrap_or(0)
    }

    fn table_index(&self, row: RowAddr) -> usize {
        usize::from(row.rank) * usize::from(self.config.geometry.banks_per_rank())
            + usize::from(row.bank)
    }
}

impl ActivationTracker for Graphene {
    fn on_activation(
        &mut self,
        row: RowAddr,
        _now: MemCycle,
        _kind: ActivationKind,
    ) -> TrackerResponse {
        debug_assert_eq!(row.channel, self.config.channel);
        self.activations += 1;
        let threshold = u64::from(self.config.threshold);
        let idx = self.table_index(row);
        let table = &mut self.tables[idx];
        let estimate = table.increment(&row.row);
        if estimate >= threshold && table.is_tracked(&row.row) {
            table.reset_item(&row.row);
            self.mitigations += 1;
            TrackerResponse::mitigate(row)
        } else {
            TrackerResponse::none()
        }
    }

    fn reset_window(&mut self, _now: MemCycle) {
        for t in &mut self.tables {
            t.clear();
        }
    }

    fn name(&self) -> &str {
        "graphene"
    }

    fn sram_bytes(&self) -> u64 {
        crate::storage::graphene_bytes_per_rank(
            self.config.threshold * 2,
            1_360_000,
            u32::from(self.config.geometry.banks_per_rank()),
        ) * u64::from(self.config.geometry.ranks_per_channel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graphene(threshold: u32, entries: usize) -> Graphene {
        Graphene::new(GrapheneConfig {
            geometry: MemGeometry::tiny(),
            channel: 0,
            threshold,
            entries_per_bank: entries,
        })
    }

    fn act(g: &mut Graphene, row: RowAddr) -> TrackerResponse {
        g.on_activation(row, 0, ActivationKind::Demand)
    }

    #[test]
    fn mitigates_at_threshold() {
        let mut g = graphene(8, 16);
        let row = RowAddr::new(0, 0, 0, 42);
        let mut when = Vec::new();
        for i in 1..=24 {
            if !act(&mut g, row).mitigations.is_empty() {
                when.push(i);
            }
        }
        assert_eq!(when, vec![8, 16, 24]);
    }

    #[test]
    fn banks_are_independent() {
        let mut g = graphene(4, 8);
        for _ in 0..3 {
            act(&mut g, RowAddr::new(0, 0, 0, 1));
            act(&mut g, RowAddr::new(0, 0, 1, 1));
        }
        // Neither bank's row reached 4.
        assert_eq!(g.mitigations(), 0);
        let r = act(&mut g, RowAddr::new(0, 0, 0, 1));
        assert_eq!(r.mitigations.len(), 1);
    }

    #[test]
    fn properly_sized_tracker_catches_thrashing() {
        // entries >= activations/threshold guarantees no aggressor escapes:
        // hammer one row to threshold-1 amid many decoys, then push it over.
        let act_budget = 1000u64;
        let threshold = 50u32;
        let config =
            GrapheneConfig::for_threshold(MemGeometry::tiny(), 0, threshold * 2, act_budget)
                .unwrap();
        let mut g = Graphene::new(config);
        let target = RowAddr::new(0, 0, 0, 7);
        let mut unmitigated = 0u32;
        for i in 0..900u64 {
            // 1 target ACT per 2 decoys — decoys cycle over 300 rows.
            let decoy = RowAddr::new(0, 0, 0, 100 + (i % 300) as u32);
            act(&mut g, decoy);
            if i.is_multiple_of(2) {
                unmitigated += 1;
                let r = act(&mut g, target);
                if !r.mitigations.is_empty() {
                    unmitigated = 0;
                }
                assert!(unmitigated <= threshold, "target escaped at step {i}");
            }
        }
    }

    #[test]
    fn undersized_tracker_degrades_into_spurious_mitigations() {
        // The TRRespass-adjacent observation (Sec. 2.4): with too few
        // entries, thrashing inflates the Misra-Gries spillover, so *every*
        // newly inserted row's estimate starts near the threshold and
        // mitigation accuracy collapses — the tracker stays safe only by
        // mitigating almost everything, which is why Graphene must be
        // provisioned with the full entry count (and why that costs 340 KB
        // per rank at T_RH = 500).
        let run = |entries: usize| -> u64 {
            let mut g = graphene(50, entries);
            let target = RowAddr::new(0, 0, 0, 7);
            for i in 0..300u64 {
                for d in 0..8u32 {
                    act(
                        &mut g,
                        RowAddr::new(0, 0, 0, 1000 + ((i as u32 * 8 + d) % 512)),
                    );
                }
                act(&mut g, target);
            }
            g.mitigations()
        };
        let well_sized = run(4096);
        let undersized = run(4);
        // Well sized: only the target crosses the threshold (300 ACTs / 50).
        assert_eq!(well_sized, 6);
        assert!(
            undersized > 5 * well_sized,
            "undersized={undersized} well_sized={well_sized}"
        );
    }

    #[test]
    fn window_reset_clears_tables() {
        let mut g = graphene(8, 16);
        let row = RowAddr::new(0, 0, 0, 42);
        for _ in 0..7 {
            act(&mut g, row);
        }
        g.reset_window(0);
        for _ in 0..7 {
            let r = act(&mut g, row);
            assert!(r.mitigations.is_empty());
        }
    }

    #[test]
    fn for_threshold_sizes_like_the_paper() {
        // Sec. 4.1: T_RH = 500 and ACT_max = 1.36 M → ~5441 entries per bank.
        let c = GrapheneConfig::for_threshold(MemGeometry::isca22_baseline(), 0, 500, 1_360_000)
            .unwrap();
        assert_eq!(c.threshold, 250);
        assert!(
            (5440..=5442).contains(&c.entries_per_bank),
            "{}",
            c.entries_per_bank
        );
    }

    #[test]
    fn name_is_graphene() {
        let g = graphene(8, 16);
        assert_eq!(g.name(), "graphene");
        assert!(g.sram_bytes() > 0);
    }
}
