//! A vendor-style Target Row Refresh (TRR) emulation — the in-DRAM
//! mitigation TRRespass defeated (Frigo et al., S&P 2020; paper Sec. 7.4).
//!
//! Real TRR implementations keep a *very small* per-bank table of candidate
//! aggressors (the reverse-engineered designs track 1–16 rows) sampled from
//! the activation stream, and refresh the neighbours of tracked rows during
//! regular refresh operations. Because the table is tiny and its fill policy
//! is simplistic, an attacker can evict the true aggressor with decoy rows —
//! the many-sided TRRespass pattern.
//!
//! This model exists to reproduce that failure mode next to Hydra's
//! guarantee, not to defend any particular vendor design. Fill policy:
//! track the first `capacity` distinct rows seen since the last refresh
//! window; count activations only for tracked rows; mitigate a tracked row
//! when its count reaches the threshold.

use hydra_types::addr::RowAddr;
use hydra_types::clock::MemCycle;
use hydra_types::error::ConfigError;
use hydra_types::geometry::MemGeometry;
use hydra_types::tracker::{ActivationKind, ActivationTracker, TrackerResponse};
use std::collections::HashMap;

/// A deliberately weak TRR-style sampler (see module docs).
///
/// # Example
///
/// ```
/// use hydra_baselines::trr::VendorTrr;
/// use hydra_types::{ActivationKind, ActivationTracker, MemGeometry, RowAddr};
/// let mut trr = VendorTrr::new(MemGeometry::tiny(), 0, 16, 4)?;
/// let row = RowAddr::new(0, 0, 0, 7);
/// let mut mitigations = 0;
/// for t in 0..64u64 {
///     mitigations += trr.on_activation(row, t, ActivationKind::Demand).mitigations.len();
/// }
/// assert_eq!(mitigations, 4); // tracked row, mitigated every 16 ACTs
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VendorTrr {
    channel: u8,
    banks_per_rank: u8,
    threshold: u32,
    capacity: usize,
    /// Per-bank sampler tables: row → count.
    tables: Vec<HashMap<u32, u32>>,
    mitigations: u64,
    escaped_activations: u64,
}

impl VendorTrr {
    /// Creates a TRR sampler with `capacity` tracked rows per bank and the
    /// given mitigation threshold.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero capacity/threshold or a bad channel.
    pub fn new(
        geometry: MemGeometry,
        channel: u8,
        threshold: u32,
        capacity: usize,
    ) -> Result<Self, ConfigError> {
        if channel >= geometry.channels() {
            return Err(ConfigError::new("channel out of range"));
        }
        if threshold == 0 || capacity == 0 {
            return Err(ConfigError::new("threshold and capacity must be nonzero"));
        }
        let nbanks =
            usize::from(geometry.ranks_per_channel()) * usize::from(geometry.banks_per_rank());
        Ok(VendorTrr {
            channel,
            banks_per_rank: geometry.banks_per_rank(),
            threshold,
            capacity,
            tables: vec![HashMap::new(); nbanks],
            mitigations: 0,
            escaped_activations: 0,
        })
    }

    /// Activations of rows the sampler was not tracking (the attack surface
    /// TRRespass exploits).
    pub fn escaped_activations(&self) -> u64 {
        self.escaped_activations
    }

    /// Mitigations issued.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }
}

impl ActivationTracker for VendorTrr {
    fn on_activation(
        &mut self,
        row: RowAddr,
        _now: MemCycle,
        _kind: ActivationKind,
    ) -> TrackerResponse {
        debug_assert_eq!(row.channel, self.channel);
        let idx = usize::from(row.rank) * usize::from(self.banks_per_rank) + usize::from(row.bank);
        let table = &mut self.tables[idx];
        if let Some(count) = table.get_mut(&row.row) {
            *count = count.saturating_add(1);
            if *count >= self.threshold {
                *count = 0;
                self.mitigations += 1;
                return TrackerResponse::mitigate(row);
            }
        } else if table.len() < self.capacity {
            table.insert(row.row, 1);
        } else {
            // Table full: this activation is invisible to the sampler.
            self.escaped_activations += 1;
        }
        TrackerResponse::none()
    }

    fn reset_window(&mut self, _now: MemCycle) {
        for t in &mut self.tables {
            t.clear();
        }
    }

    fn name(&self) -> &str {
        "vendor-trr"
    }

    fn sram_bytes(&self) -> u64 {
        // row address (~17 bits) + counter (~9 bits) per entry, per bank.
        (self.tables.len() * self.capacity) as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trr() -> VendorTrr {
        VendorTrr::new(MemGeometry::tiny(), 0, 16, 4).unwrap()
    }

    fn act(t: &mut VendorTrr, row: RowAddr) -> bool {
        !t.on_activation(row, 0, ActivationKind::Demand)
            .mitigations
            .is_empty()
    }

    #[test]
    fn tracked_aggressor_is_mitigated() {
        let mut t = trr();
        let row = RowAddr::new(0, 0, 0, 7);
        let mut mitigations = 0;
        for _ in 0..64 {
            if act(&mut t, row) {
                mitigations += 1;
            }
        }
        assert_eq!(mitigations, 4);
    }

    #[test]
    fn trrespass_many_sided_escapes() {
        // Fill the 4-entry sampler with decoys first, then hammer a fifth
        // row: TRR never sees it.
        let mut t = trr();
        for decoy in 0..4u32 {
            act(&mut t, RowAddr::new(0, 0, 0, 100 + decoy));
        }
        let target = RowAddr::new(0, 0, 0, 7);
        for _ in 0..10_000 {
            assert!(
                !act(&mut t, target),
                "sampler should never catch the target"
            );
        }
        assert_eq!(t.escaped_activations(), 10_000);
        assert_eq!(t.mitigations(), 0);
    }

    #[test]
    fn banks_have_independent_tables() {
        let mut t = trr();
        for decoy in 0..4u32 {
            act(&mut t, RowAddr::new(0, 0, 0, 100 + decoy));
        }
        // Bank 1's table is still empty: its aggressor gets tracked.
        let target = RowAddr::new(0, 0, 1, 7);
        let mut mitigations = 0;
        for _ in 0..16 {
            if act(&mut t, target) {
                mitigations += 1;
            }
        }
        assert_eq!(mitigations, 1);
    }

    #[test]
    fn window_reset_clears_sampler() {
        let mut t = trr();
        for decoy in 0..4u32 {
            act(&mut t, RowAddr::new(0, 0, 0, 100 + decoy));
        }
        t.reset_window(0);
        let target = RowAddr::new(0, 0, 0, 7);
        act(&mut t, target);
        assert_eq!(t.escaped_activations(), 0, "target tracked after reset");
    }

    #[test]
    fn rejects_degenerate_config() {
        assert!(VendorTrr::new(MemGeometry::tiny(), 9, 16, 4).is_err());
        assert!(VendorTrr::new(MemGeometry::tiny(), 0, 0, 4).is_err());
        assert!(VendorTrr::new(MemGeometry::tiny(), 0, 16, 0).is_err());
    }

    #[test]
    fn sampled_counts_cycle_exactly_at_the_threshold() {
        let mut t = trr();
        let row = RowAddr::new(0, 0, 0, 5);
        let mut when = Vec::new();
        for i in 1..=32 {
            if act(&mut t, row) {
                when.push(i);
            }
        }
        assert_eq!(when, vec![16, 32]);
        assert_eq!(t.mitigations(), 2);
    }
}
