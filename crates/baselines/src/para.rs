//! PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).
//!
//! Stateless: every activation triggers a mitigation of the activated row's
//! neighbours with probability `p`. Effective at high thresholds, but `p`
//! must grow as `T_RH` falls, costing performance (Sec. 7.3). We size `p`
//! so the probability that an aggressor performs `T_RH/2` activations with
//! *no* mitigation is below a target failure probability:
//! `(1 − p)^(T_RH/2) ≤ p_fail`.

use hydra_types::addr::RowAddr;
use hydra_types::clock::MemCycle;
use hydra_types::error::ConfigError;
use hydra_types::tracker::{ActivationKind, ActivationTracker, TrackerResponse};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The PARA probabilistic mitigator.
///
/// # Example
///
/// ```
/// use hydra_baselines::Para;
/// use hydra_types::{ActivationKind, ActivationTracker, RowAddr};
/// let mut para = Para::for_threshold(500, 1e-6, 42)?;
/// let mut mitigations = 0;
/// for t in 0..10_000u64 {
///     let resp = para.on_activation(RowAddr::new(0, 0, 0, 1), t, ActivationKind::Demand);
///     mitigations += resp.mitigations.len();
/// }
/// assert!(mitigations > 0);
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Para {
    probability: f64,
    rng: SmallRng,
    mitigations: u64,
    activations: u64,
}

impl Para {
    /// Creates PARA with an explicit per-activation mitigation probability.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `0 < probability <= 1`.
    pub fn new(probability: f64, seed: u64) -> Result<Self, ConfigError> {
        if !(probability > 0.0 && probability <= 1.0) {
            return Err(ConfigError::new(format!(
                "probability must be in (0, 1], got {probability}"
            )));
        }
        Ok(Para {
            probability,
            rng: SmallRng::seed_from_u64(seed),
            mitigations: 0,
            activations: 0,
        })
    }

    /// Sizes `p` for a Row-Hammer threshold and failure target:
    /// `p = 1 − p_fail^(2 / t_rh)`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for `t_rh < 2` or a failure probability
    /// outside `(0, 1)`.
    pub fn for_threshold(t_rh: u32, p_fail: f64, seed: u64) -> Result<Self, ConfigError> {
        if t_rh < 2 {
            return Err(ConfigError::new("T_RH must be at least 2"));
        }
        if !(p_fail > 0.0 && p_fail < 1.0) {
            return Err(ConfigError::new("failure probability must be in (0, 1)"));
        }
        let p = 1.0 - p_fail.powf(2.0 / f64::from(t_rh));
        Para::new(p.clamp(f64::MIN_POSITIVE, 1.0), seed)
    }

    /// The per-activation mitigation probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Mitigations issued so far.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }
}

impl ActivationTracker for Para {
    fn on_activation(
        &mut self,
        row: RowAddr,
        _now: MemCycle,
        _kind: ActivationKind,
    ) -> TrackerResponse {
        self.activations += 1;
        if self.rng.gen_bool(self.probability) {
            self.mitigations += 1;
            TrackerResponse::mitigate(row)
        } else {
            TrackerResponse::none()
        }
    }

    fn reset_window(&mut self, _now: MemCycle) {
        // Stateless: nothing to reset.
    }

    fn name(&self) -> &str {
        "para"
    }

    fn sram_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_grows_as_threshold_falls() {
        let p_32k = Para::for_threshold(32_000, 1e-9, 0).unwrap().probability();
        let p_500 = Para::for_threshold(500, 1e-9, 0).unwrap().probability();
        assert!(p_500 > p_32k);
        // Sec. 7.3: p < 1 % at T_RH = 32K...
        assert!(p_32k < 0.01, "p at 32K = {p_32k}");
        // ...but substantial at ultra-low thresholds.
        assert!(p_500 > 0.05, "p at 500 = {p_500}");
    }

    #[test]
    fn mitigation_rate_matches_probability() {
        let mut para = Para::new(0.1, 7).unwrap();
        let n = 100_000u64;
        for t in 0..n {
            para.on_activation(RowAddr::new(0, 0, 0, 1), t, ActivationKind::Demand);
        }
        let rate = para.mitigations() as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut para = Para::new(0.5, seed).unwrap();
            (0..64u64)
                .map(|t| {
                    !para
                        .on_activation(RowAddr::new(0, 0, 0, 1), t, ActivationKind::Demand)
                        .is_empty()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Para::new(0.0, 0).is_err());
        assert!(Para::new(1.5, 0).is_err());
        assert!(Para::for_threshold(1, 0.5, 0).is_err());
        assert!(Para::for_threshold(500, 0.0, 0).is_err());
    }
}
