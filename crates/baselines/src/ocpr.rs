//! OCPR: One-Counter-Per-Row — the naive exact tracker (Sec. 2.4).
//!
//! A dedicated SRAM counter for every row. Storage is impractical (Table 1's
//! upper bound: 2–4 MB per rank), but counting is exact, which makes OCPR
//! the ground-truth oracle for every other tracker in this workspace: any
//! secure tracker must mitigate *no later than* OCPR.

use crate::storage::ocpr_bytes_per_rank;
use hydra_types::addr::RowAddr;
use hydra_types::clock::MemCycle;
use hydra_types::error::ConfigError;
use hydra_types::geometry::MemGeometry;
use hydra_types::tracker::{ActivationKind, ActivationTracker, TrackerResponse};

/// The exact per-row tracker / test oracle for one channel.
///
/// # Example
///
/// ```
/// use hydra_baselines::Ocpr;
/// use hydra_types::{ActivationKind, ActivationTracker, MemGeometry, RowAddr};
/// let mut ocpr = Ocpr::new(MemGeometry::tiny(), 0, 8)?;
/// let row = RowAddr::new(0, 0, 0, 3);
/// let mut mitigated_at = vec![];
/// for i in 1..=20u32 {
///     if !ocpr.on_activation(row, 0, ActivationKind::Demand).is_empty() {
///         mitigated_at.push(i);
///     }
/// }
/// assert_eq!(mitigated_at, vec![8, 16]);
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ocpr {
    geometry: MemGeometry,
    channel: u8,
    threshold: u32,
    counts: Vec<u32>,
    mitigations: u64,
}

impl Ocpr {
    /// Creates an exact tracker mitigating at `threshold` activations.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for `threshold < 2` or a bad channel.
    pub fn new(geometry: MemGeometry, channel: u8, threshold: u32) -> Result<Self, ConfigError> {
        if threshold < 2 {
            return Err(ConfigError::new("threshold must be at least 2"));
        }
        if channel >= geometry.channels() {
            return Err(ConfigError::new("channel out of range"));
        }
        Ok(Ocpr {
            geometry,
            channel,
            threshold,
            counts: vec![0; geometry.rows_per_channel() as usize],
            mitigations: 0,
        })
    }

    /// The exact count of a row since the window start or its last
    /// mitigation.
    pub fn count(&self, row: RowAddr) -> u32 {
        self.counts[self.geometry.channel_row_index(row) as usize]
    }

    /// Mitigations issued.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// The mitigation threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl ActivationTracker for Ocpr {
    fn on_activation(
        &mut self,
        row: RowAddr,
        _now: MemCycle,
        _kind: ActivationKind,
    ) -> TrackerResponse {
        debug_assert_eq!(row.channel, self.channel);
        let idx = self.geometry.channel_row_index(row) as usize;
        self.counts[idx] = self.counts[idx].saturating_add(1);
        if self.counts[idx] >= self.threshold {
            self.counts[idx] = 0;
            self.mitigations += 1;
            TrackerResponse::mitigate(row)
        } else {
            TrackerResponse::none()
        }
    }

    fn reset_window(&mut self, _now: MemCycle) {
        self.counts.fill(0);
    }

    fn name(&self) -> &str {
        "ocpr"
    }

    fn sram_bytes(&self) -> u64 {
        ocpr_bytes_per_rank(
            self.threshold * 2,
            self.geometry.rows_per_bank() as u64 * u64::from(self.geometry.banks_per_rank()),
        ) * u64::from(self.geometry.ranks_per_channel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ocpr() -> Ocpr {
        Ocpr::new(MemGeometry::tiny(), 0, 10).unwrap()
    }

    #[test]
    fn exact_counting() {
        let mut o = ocpr();
        let row = RowAddr::new(0, 0, 2, 7);
        for _ in 0..9 {
            assert!(o.on_activation(row, 0, ActivationKind::Demand).is_empty());
        }
        assert_eq!(o.count(row), 9);
        let r = o.on_activation(row, 0, ActivationKind::Demand);
        assert_eq!(r.mitigations.len(), 1);
        assert_eq!(o.count(row), 0);
    }

    #[test]
    fn rows_independent() {
        let mut o = ocpr();
        o.on_activation(RowAddr::new(0, 0, 0, 1), 0, ActivationKind::Demand);
        assert_eq!(o.count(RowAddr::new(0, 0, 0, 2)), 0);
        assert_eq!(o.count(RowAddr::new(0, 0, 1, 1)), 0);
    }

    #[test]
    fn window_reset_zeroes_counts() {
        let mut o = ocpr();
        let row = RowAddr::new(0, 0, 0, 1);
        for _ in 0..5 {
            o.on_activation(row, 0, ActivationKind::Demand);
        }
        o.reset_window(0);
        assert_eq!(o.count(row), 0);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Ocpr::new(MemGeometry::tiny(), 0, 1).is_err());
        assert!(Ocpr::new(MemGeometry::tiny(), 7, 10).is_err());
    }

    #[test]
    fn counts_cycle_exactly_across_threshold_periods() {
        let mut o = ocpr();
        let row = RowAddr::new(0, 0, 3, 4);
        let mut when = Vec::new();
        for i in 1..=30 {
            if !o
                .on_activation(row, 0, ActivationKind::Demand)
                .mitigations
                .is_empty()
            {
                when.push(i);
            }
        }
        // Saturating arithmetic must keep the per-row cadence exact.
        assert_eq!(when, vec![10, 20, 30]);
        assert_eq!(o.count(row), 0);
    }
}
