//! A count-min sketch: bounded-memory frequency estimation with one-sided
//! error.
//!
//! This is the shared sketch primitive behind two consumers:
//!
//! * the **forensics attribution engine** (`hydra-forensics`) pairs it with
//!   the [`crate::misra_gries::MisraGries`] summary — Misra-Gries names
//!   *which* rows are heavy (but its counts inflate by up to the spillover),
//!   while the count-min sketch gives an independent per-row frequency
//!   over-estimate; the minimum of the two tightens both (each is an upper
//!   bound on the true count, so their minimum is too);
//! * the **CoMeT tracker** (`hydra-arena`) uses per-bank sketches as its
//!   first counting tier, recounting exactly in a small recent-aggressor
//!   table once an estimate crosses the early-mitigation threshold.
//!
//! Geometry follows the CoMeT-style sizing argument: with width `w` and
//! depth `d`, the estimate error is at most `2·N/w` with probability
//! `1 − 2⁻ᵈ` over `N` observations — the forensics defaults
//! ([`DEFAULT_WIDTH`] × [`DEFAULT_DEPTH`]) keep a full 64 ms window of
//! per-row-path events within a few counts of truth. Width and depth are
//! constructor parameters; nothing in this module pins them.

/// Default bucket width used by the forensics attribution engine.
pub const DEFAULT_WIDTH: usize = 1024;

/// Default hash-row depth used by the forensics attribution engine.
pub const DEFAULT_DEPTH: usize = 4;

/// A count-min sketch over `u64` keys.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counters: Vec<u64>,
    total: u64,
}

/// Per-depth seeds decorrelating the hash rows (arbitrary odd constants).
const ROW_SEEDS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
    0xa076_1d64_78bd_642f,
    0xe703_7ed1_a0b4_28db,
    0x8ebc_6af0_9c88_c6e3,
    0x5895_58cb_b654_4243,
];

/// SplitMix64 finalizer: a fast, well-mixed hash for integer keys.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl CountMinSketch {
    /// Creates a sketch with `width` buckets per row and `depth` hash rows
    /// (both clamped to at least 1; depth to at most 8).
    pub fn new(width: usize, depth: usize) -> Self {
        let width = width.max(1);
        let depth = depth.clamp(1, ROW_SEEDS.len());
        CountMinSketch {
            width,
            depth,
            counters: vec![0; width * depth],
            total: 0,
        }
    }

    /// Bucket width per hash row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total observations recorded since the last [`Self::clear`].
    pub fn total(&self) -> u64 {
        self.total
    }

    fn bucket(&self, row: usize, key: u64) -> usize {
        (mix(key ^ ROW_SEEDS[row]) % self.width as u64) as usize
    }

    /// Records one occurrence of `key`, returning its new estimate.
    pub fn increment(&mut self, key: u64) -> u64 {
        self.total = self.total.saturating_add(1);
        let mut est = u64::MAX;
        for d in 0..self.depth {
            let idx = d * self.width + self.bucket(d, key);
            self.counters[idx] = self.counters[idx].saturating_add(1);
            est = est.min(self.counters[idx]);
        }
        est
    }

    /// The over-approximate count for `key` (minimum over hash rows).
    pub fn estimate(&self, key: u64) -> u64 {
        let mut est = u64::MAX;
        for d in 0..self.depth {
            est = est.min(self.counters[d * self.width + self.bucket(d, key)]);
        }
        est
    }

    /// Zeroes every counter (window reset).
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn estimates_never_underestimate() {
        let mut cms = CountMinSketch::new(64, 4);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for i in 0..5_000u64 {
            // Skewed stream: a few hot keys plus a long tail.
            let key = if i % 3 == 0 { i % 5 } else { i % 999 };
            cms.increment(key);
            *exact.entry(key).or_insert(0) += 1;
        }
        for (&key, &count) in &exact {
            assert!(
                cms.estimate(key) >= count,
                "estimate({key}) = {} < true {count}",
                cms.estimate(key)
            );
        }
    }

    #[test]
    fn hot_keys_estimate_close_to_truth() {
        let mut cms = CountMinSketch::new(DEFAULT_WIDTH, DEFAULT_DEPTH);
        for _ in 0..10_000u64 {
            cms.increment(42);
        }
        for i in 0..500u64 {
            cms.increment(1_000 + i);
        }
        let est = cms.estimate(42);
        assert!(est >= 10_000);
        // Error bound 2N/w ≈ 20: the hot key's estimate is near-exact.
        assert!(est <= 10_000 + 40, "estimate too loose: {est}");
    }

    #[test]
    fn unseen_keys_stay_near_zero_on_sparse_streams() {
        let mut cms = CountMinSketch::new(DEFAULT_WIDTH, DEFAULT_DEPTH);
        for i in 0..64u64 {
            cms.increment(i);
        }
        assert!(cms.estimate(999_999) <= 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cms = CountMinSketch::new(16, 2);
        cms.increment(7);
        cms.clear();
        assert_eq!(cms.total(), 0);
        assert_eq!(cms.estimate(7), 0);
    }

    #[test]
    fn degenerate_dimensions_are_clamped() {
        let cms = CountMinSketch::new(0, 0);
        assert_eq!(cms.width(), 1);
        assert_eq!(cms.depth(), 1);
        let cms = CountMinSketch::new(4, 100);
        assert_eq!(cms.depth(), ROW_SEEDS.len());
    }

    #[test]
    fn single_key_counts_stay_exact() {
        let mut cms = CountMinSketch::new(64, 4);
        for expected in 1..=300u64 {
            assert_eq!(cms.increment(7), expected);
        }
        assert_eq!(cms.estimate(7), 300);
        assert_eq!(cms.total(), 300);
    }
}
