//! CAT: a Counter-Adaptive-Tree-style tracker (Seyedzadeh et al., ISCA 2018).
//!
//! A binary tree of counters over the row-address space. Each leaf counts
//! activations for a *range* of rows; when a leaf's count crosses the split
//! threshold and spare counters remain, the leaf splits so hot regions get
//! progressively finer counters, ultimately one counter per hot row. A
//! single-row leaf reaching the mitigation threshold triggers mitigation.
//!
//! Counting is conservative (a range count upper-bounds every row in the
//! range), so mitigations can fire early but never late — as long as the
//! counter budget suffices, which is exactly the storage-vs-threshold
//! tradeoff Table 1 quantifies.

use hydra_types::error::ConfigError;

#[derive(Debug, Clone)]
struct Node {
    /// Row range [start, end) covered by this node.
    start: u32,
    end: u32,
    count: u32,
    /// Children indices if split.
    children: Option<(usize, usize)>,
}

/// A CAT-style adaptive counter tree over rows `[0, rows)` of one bank.
///
/// # Example
///
/// ```
/// use hydra_baselines::CounterTree;
/// let mut cat = CounterTree::new(1024, 64, 16, 8)?;
/// let mut mitigations = 0;
/// for _ in 0..64 {
///     if cat.on_activation(7).is_some() { mitigations += 1; }
/// }
/// assert!(mitigations >= 4); // at least every 16 ACTs (may fire early)
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CounterTree {
    nodes: Vec<Node>,
    budget: usize,
    threshold: u32,
    split_threshold: u32,
    mitigations: u64,
    splits: u64,
}

impl CounterTree {
    /// Creates a tree over `rows` rows with a budget of `budget` counters,
    /// mitigating single-row leaves at `threshold` and splitting leaves at
    /// `split_threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero parameters or
    /// `split_threshold >= threshold`.
    pub fn new(
        rows: u32,
        budget: usize,
        threshold: u32,
        split_threshold: u32,
    ) -> Result<Self, ConfigError> {
        if rows == 0 || budget == 0 || threshold == 0 {
            return Err(ConfigError::new(
                "rows, budget and threshold must be nonzero",
            ));
        }
        if split_threshold >= threshold {
            return Err(ConfigError::new(
                "split threshold must be below the mitigation threshold",
            ));
        }
        Ok(CounterTree {
            nodes: vec![Node {
                start: 0,
                end: rows,
                count: 0,
                children: None,
            }],
            budget,
            threshold,
            split_threshold,
            mitigations: 0,
            splits: 0,
        })
    }

    /// Records an activation of `row`; returns the mitigated row range
    /// `[start, end)` if a mitigation fires. The covering leaf's count
    /// resets, so the caller must treat *every* row in the range as
    /// mitigated (CAT's counts are aggregates: mitigating only the
    /// activated row would leave the rest of the range untracked).
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the tree's range.
    pub fn on_activation(&mut self, row: u32) -> Option<(u32, u32)> {
        assert!(row < self.nodes[0].end, "row {row} out of range");
        // Walk to the covering leaf.
        let mut idx = 0usize;
        while let Some((l, r)) = self.nodes[idx].children {
            idx = if row < self.nodes[l].end { l } else { r };
        }
        self.nodes[idx].count = self.nodes[idx].count.saturating_add(1);

        let node = &self.nodes[idx];
        let is_single = node.end - node.start == 1;
        if node.count >= self.threshold {
            let range = (node.start, node.end);
            self.nodes[idx].count = 0;
            self.mitigations += 1;
            return Some(range);
        }
        if !is_single && node.count >= self.split_threshold && self.nodes.len() + 2 <= self.budget {
            self.split(idx);
        }
        None
    }

    fn split(&mut self, idx: usize) {
        let (start, end, count) = {
            let n = &self.nodes[idx];
            (n.start, n.end, n.count)
        };
        let mid = start + (end - start) / 2;
        // Children inherit the parent's count: conservative (each row's
        // estimate never decreases).
        let l = self.nodes.len();
        self.nodes.push(Node {
            start,
            end: mid,
            count,
            children: None,
        });
        let r = self.nodes.len();
        self.nodes.push(Node {
            start: mid,
            end,
            count,
            children: None,
        });
        self.nodes[idx].children = Some((l, r));
        self.splits += 1;
    }

    /// The current estimate for a row (its covering leaf's count).
    pub fn estimate(&self, row: u32) -> u32 {
        let mut idx = 0usize;
        while let Some((l, r)) = self.nodes[idx].children {
            idx = if row < self.nodes[l].end { l } else { r };
        }
        self.nodes[idx].count
    }

    /// Counters allocated so far.
    pub fn counters_used(&self) -> usize {
        self.nodes.len()
    }

    /// Splits performed.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Mitigations fired.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Resets to a single root counter (window reset).
    pub fn reset(&mut self) {
        let rows = self.nodes[0].end;
        self.nodes.clear();
        self.nodes.push(Node {
            start: 0,
            end: rows,
            count: 0,
            children: None,
        });
        self.splits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hot_row_gets_dedicated_counter() {
        let mut cat = CounterTree::new(1024, 64, 100, 10).unwrap();
        for _ in 0..60 {
            cat.on_activation(42);
        }
        // After enough splits, row 42's leaf should be narrow.
        assert!(cat.splits() > 0);
        assert!(cat.counters_used() > 1);
    }

    #[test]
    fn estimate_never_undercounts() {
        let mut cat = CounterTree::new(256, 32, 1000, 8).unwrap();
        let mut exact: HashMap<u32, u32> = HashMap::new();
        let stream: Vec<u32> = (0..500).map(|i| (i * 37) % 97).collect();
        for row in stream {
            *exact.entry(row).or_insert(0) += 1;
            cat.on_activation(row);
            for (&r, &true_count) in &exact {
                assert!(
                    cat.estimate(r) >= true_count,
                    "estimate({r}) = {} < {true_count}",
                    cat.estimate(r)
                );
            }
        }
    }

    #[test]
    fn mitigation_never_late() {
        let mut cat = CounterTree::new(1024, 16, 50, 10).unwrap();
        let mut since = 0u32;
        for i in 0..5000 {
            since += 1;
            if let Some((start, end)) = cat.on_activation(7) {
                assert!((start..end).contains(&7));
                since = 0;
            }
            assert!(since <= 50, "late mitigation at {i}");
        }
    }

    #[test]
    fn exhausted_budget_mitigates_ranges_conservatively() {
        // Budget of 1: the root can never split; it must mitigate whenever
        // the aggregate hits the threshold, even for scattered traffic.
        let mut cat = CounterTree::new(1024, 1, 10, 5).unwrap();
        let mut mitigations = 0;
        for i in 0..100u32 {
            if let Some((start, end)) = cat.on_activation(i % 64) {
                assert_eq!((start, end), (0, 1024), "root leaf covers everything");
                mitigations += 1;
            }
        }
        assert_eq!(mitigations, 10);
        assert_eq!(cat.counters_used(), 1);
    }

    #[test]
    fn reset_restores_single_root() {
        let mut cat = CounterTree::new(1024, 64, 100, 5).unwrap();
        for _ in 0..50 {
            cat.on_activation(1);
        }
        cat.reset();
        assert_eq!(cat.counters_used(), 1);
        assert_eq!(cat.estimate(1), 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(CounterTree::new(0, 8, 10, 5).is_err());
        assert!(CounterTree::new(8, 0, 10, 5).is_err());
        assert!(CounterTree::new(8, 8, 10, 10).is_err());
    }

    #[test]
    fn single_row_tree_counts_exactly_at_threshold() {
        // One row, one leaf, no splits: the leaf counter must hit the
        // threshold on schedule every cycle despite the saturating add.
        let mut cat = CounterTree::new(1, 4, 100, 10).unwrap();
        let mut when = Vec::new();
        for i in 1..=250 {
            if cat.on_activation(0).is_some() {
                when.push(i);
            }
        }
        assert_eq!(when, vec![100, 200]);
        assert_eq!(cat.mitigations(), 2);
    }
}
