//! D-CBF: dual time-shifted counting Bloom filters (BlockHammer, HPCA 2021).
//!
//! Two counting Bloom filters with three hash functions each observe row
//! activations. The filters alternate epochs: each filter is cleared every
//! other half-window, so at any instant one filter has observed at least the
//! last half-window of history. A row is *blacklisted* when the minimum of
//! its three counters in the active filter reaches the blacklist threshold.
//!
//! A blacklisted row stays blacklisted until the filter holding it resets —
//! per-row state cannot be cleared — which is why D-CBF supports only
//! rate-control (delay) mitigation, not victim refresh (Sec. 7.1). The
//! blacklist can also false-positive on innocent rows (aliasing), which is
//! why D-CBF must be sized generously (Sec. 2.4).

use hydra_types::addr::RowAddr;
use hydra_types::clock::MemCycle;
use hydra_types::error::ConfigError;

fn hash(row: RowAddr, salt: u64) -> u64 {
    let v = (u64::from(row.row) << 24)
        ^ (u64::from(row.bank) << 16)
        ^ (u64::from(row.rank) << 8)
        ^ u64::from(row.channel);
    let mut x = v ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Debug, Clone)]
struct CountingBloom {
    counters: Vec<u32>,
    salts: [u64; 3],
}

impl CountingBloom {
    fn new(counters: usize, generation: u64) -> Self {
        CountingBloom {
            counters: vec![0; counters],
            salts: [
                generation.wrapping_mul(3) + 1,
                generation.wrapping_mul(3) + 2,
                generation.wrapping_mul(3) + 3,
            ],
        }
    }

    fn insert(&mut self, row: RowAddr) {
        let n = self.counters.len() as u64;
        for salt in self.salts {
            let idx = (hash(row, salt) % n) as usize;
            self.counters[idx] = self.counters[idx].saturating_add(1);
        }
    }

    /// Minimum counter over the three hash positions — an upper bound on the
    /// row's true activation count.
    fn estimate(&self, row: RowAddr) -> u32 {
        let n = self.counters.len() as u64;
        // Folding from MAX keeps this panic-free; the estimate stays a
        // valid (conservative) upper bound even for an empty salt set.
        self.salts
            .iter()
            .map(|&salt| self.counters[(hash(row, salt) % n) as usize])
            .fold(u32::MAX, u32::min)
    }

    fn clear(&mut self, generation: u64) {
        self.counters.fill(0);
        self.salts = [
            generation.wrapping_mul(3) + 1,
            generation.wrapping_mul(3) + 2,
            generation.wrapping_mul(3) + 3,
        ];
    }
}

/// The dual counting Bloom filter.
///
/// Call [`on_activation`](Self::on_activation) for every row activation and
/// [`is_blacklisted`](Self::is_blacklisted) before scheduling one; the
/// memory controller delays activations of blacklisted rows.
///
/// # Example
///
/// ```
/// use hydra_baselines::DualCountingBloomFilter;
/// use hydra_types::RowAddr;
/// let mut f = DualCountingBloomFilter::new(1024, 8, 1000)?;
/// let row = RowAddr::new(0, 0, 0, 1);
/// for t in 0..8u64 {
///     f.on_activation(row, t);
/// }
/// assert!(f.is_blacklisted(row));
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DualCountingBloomFilter {
    filters: [CountingBloom; 2],
    threshold: u32,
    half_window: MemCycle,
    /// Index of the filter that resets at the *next* epoch boundary.
    next_reset: usize,
    epoch: u64,
    generation: u64,
}

impl DualCountingBloomFilter {
    /// Creates a D-CBF with `counters` counters per filter, blacklisting at
    /// `threshold`, with filters alternately cleared every `half_window`
    /// cycles.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero sizes or thresholds.
    pub fn new(
        counters: usize,
        threshold: u32,
        half_window: MemCycle,
    ) -> Result<Self, ConfigError> {
        if counters == 0 || threshold == 0 || half_window == 0 {
            return Err(ConfigError::new(
                "counters, threshold and half_window must be nonzero",
            ));
        }
        Ok(DualCountingBloomFilter {
            filters: [
                CountingBloom::new(counters, 0),
                CountingBloom::new(counters, 1),
            ],
            threshold,
            half_window,
            next_reset: 0,
            epoch: 0,
            generation: 1,
        })
    }

    /// The blacklist threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    fn advance_epochs(&mut self, now: MemCycle) {
        while now / self.half_window > self.epoch {
            self.epoch += 1;
            self.generation += 1;
            let generation = self.generation;
            self.filters[self.next_reset].clear(generation);
            self.next_reset ^= 1;
        }
    }

    /// Records an activation at time `now` (both filters observe it).
    pub fn on_activation(&mut self, row: RowAddr, now: MemCycle) {
        self.advance_epochs(now);
        for f in &mut self.filters {
            f.insert(row);
        }
    }

    /// True if the row's estimate in *either* filter reaches the threshold.
    /// (The younger filter under-counts; the older one never under-counts
    /// within its epoch, so checking both is conservative.)
    pub fn is_blacklisted(&self, row: RowAddr) -> bool {
        self.filters
            .iter()
            .any(|f| f.estimate(row) >= self.threshold)
    }

    /// The row's activation-count upper bound (max over filters).
    pub fn estimate(&self, row: RowAddr) -> u32 {
        // The filters array is fixed-size (two epochs), so the fold always
        // sees both estimates; folding replaces the panic path of max().
        self.filters
            .iter()
            .map(|f| f.estimate(row))
            .fold(0, u32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcbf() -> DualCountingBloomFilter {
        DualCountingBloomFilter::new(4096, 8, 1000).unwrap()
    }

    #[test]
    fn estimate_never_undercounts() {
        let mut f = dcbf();
        let row = RowAddr::new(0, 0, 0, 42);
        for i in 0..20u64 {
            f.on_activation(row, i);
            assert!(f.estimate(row) >= (i + 1) as u32);
        }
    }

    #[test]
    fn blacklists_at_threshold() {
        let mut f = dcbf();
        let row = RowAddr::new(0, 0, 1, 7);
        for i in 0..7u64 {
            f.on_activation(row, i);
            assert!(!f.is_blacklisted(row), "too early at {i}");
        }
        f.on_activation(row, 7);
        assert!(f.is_blacklisted(row));
    }

    #[test]
    fn blacklist_persists_until_filter_reset() {
        let mut f = dcbf();
        let row = RowAddr::new(0, 0, 0, 9);
        for i in 0..8u64 {
            f.on_activation(row, i);
        }
        assert!(f.is_blacklisted(row));
        // One epoch later one filter has reset, but the other still holds
        // the count: still blacklisted (this is the property that rules out
        // victim-refresh mitigation).
        f.on_activation(RowAddr::new(0, 0, 0, 1), 1500);
        assert!(f.is_blacklisted(row));
        // After both filters have reset, the row is clean again.
        f.on_activation(RowAddr::new(0, 0, 0, 1), 3500);
        assert!(!f.is_blacklisted(row));
    }

    #[test]
    fn aliasing_can_false_positive_small_filters() {
        // An undersized filter (16 counters, 3 hashes) must eventually
        // blacklist an innocent row under heavy scattered traffic.
        let mut f = DualCountingBloomFilter::new(16, 8, u64::MAX / 2).unwrap();
        for i in 0..500u32 {
            f.on_activation(RowAddr::new(0, 0, 0, i + 100), u64::from(i));
        }
        let innocent = RowAddr::new(0, 0, 0, 5);
        assert!(
            f.is_blacklisted(innocent),
            "16-counter filter under 500 scattered ACTs must alias"
        );
    }

    #[test]
    fn rejects_degenerate_config() {
        assert!(DualCountingBloomFilter::new(0, 8, 10).is_err());
        assert!(DualCountingBloomFilter::new(16, 0, 10).is_err());
        assert!(DualCountingBloomFilter::new(16, 8, 0).is_err());
    }
}
