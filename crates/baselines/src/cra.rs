//! CRA: Counter-Based Row Activation (Kim et al., IEEE CAL 2014).
//!
//! One dedicated counter per row, stored in a reserved region of DRAM and
//! cached in a *conventional* metadata cache: 64-byte-line granularity, LRU,
//! tagged by line address (Sec. 2.5). This is the paper's DRAM-tracking
//! comparator: near-zero SRAM, but every metadata-cache miss costs a DRAM
//! read (plus a write-back for dirty evictions), which produces the ~25 %
//! slowdown of Fig. 2 / Fig. 5.

use crate::region::CounterRegion;
use hydra_types::addr::RowAddr;
use hydra_types::clock::MemCycle;
use hydra_types::error::ConfigError;
use hydra_types::geometry::MemGeometry;
use hydra_types::mitigation::MitigationRequest;
use hydra_types::tracker::{ActivationKind, ActivationTracker, SideRequest, TrackerResponse};

/// Configuration for a per-channel CRA instance.
#[derive(Debug, Clone)]
pub struct CraConfig {
    /// Memory geometry.
    pub geometry: MemGeometry,
    /// Channel covered.
    pub channel: u8,
    /// Mitigation threshold (`T_RH / 2`, like all reset-windowed trackers).
    pub threshold: u32,
    /// Metadata-cache capacity in bytes (the paper sweeps 64–256 KB total;
    /// this is the per-channel share).
    pub cache_bytes: usize,
    /// Metadata-cache associativity.
    pub cache_ways: usize,
}

impl CraConfig {
    /// The paper's default comparison point: 64 KB of total metadata cache
    /// split across channels, threshold `t_rh / 2`, 8-way.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range channels or degenerate sizes.
    pub fn for_threshold(
        geometry: MemGeometry,
        channel: u8,
        t_rh: u32,
        total_cache_bytes: usize,
    ) -> Result<Self, ConfigError> {
        if t_rh < 4 {
            return Err(ConfigError::new("T_RH must be at least 4"));
        }
        let per_channel = total_cache_bytes / usize::from(geometry.channels());
        if per_channel < 64 {
            return Err(ConfigError::new(
                "metadata cache must hold at least one line",
            ));
        }
        Ok(CraConfig {
            geometry,
            channel,
            threshold: t_rh / 2,
            cache_bytes: per_channel,
            cache_ways: 8,
        })
    }
}

/// A conventional 64-byte-line LRU metadata cache, tagged by line index.
#[derive(Debug, Clone)]
struct MetadataCache {
    /// sets[set] = Vec of (line_index, lru_stamp), most-recent highest stamp.
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl MetadataCache {
    fn new(lines: usize, ways: usize) -> Self {
        let nsets = (lines / ways).next_power_of_two().max(1);
        MetadataCache {
            sets: vec![Vec::with_capacity(ways); nsets],
            ways,
            set_mask: nsets as u64 - 1,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches `line`; returns `Some(evicted_line)` on a miss that evicted,
    /// `None` on a hit or a miss into a free way. The boolean is `true` for
    /// hits.
    fn access(&mut self, line: u64) -> (bool, Option<u64>) {
        self.stamp += 1;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if let Some(e) = set.iter_mut().find(|(l, _)| *l == line) {
            e.1 = self.stamp;
            self.hits += 1;
            return (true, None);
        }
        self.misses += 1;
        if set.len() < self.ways {
            set.push((line, self.stamp));
            return (false, None);
        }
        // The set is at capacity here (ways ≥ 1), so a minimum exists; the
        // fallback index keeps this panic-free.
        let lru = set
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, s))| *s)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let evicted = set[lru].0;
        set[lru] = (line, self.stamp);
        (false, Some(evicted))
    }

    fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// A per-channel CRA tracker.
///
/// # Example
///
/// ```
/// use hydra_baselines::cra::{Cra, CraConfig};
/// use hydra_types::{ActivationKind, ActivationTracker, MemGeometry, RowAddr};
///
/// let geom = MemGeometry::tiny();
/// let config = CraConfig::for_threshold(geom, 0, 32, 4096)?;
/// let mut cra = Cra::new(config)?;
/// let resp = cra.on_activation(RowAddr::new(0, 0, 0, 1), 0, ActivationKind::Demand);
/// // First touch misses the metadata cache: one DRAM counter-line read.
/// assert_eq!(resp.side_requests.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cra {
    config: CraConfig,
    region: CounterRegion,
    counts: Vec<u8>,
    cache: MetadataCache,
    mitigations: u64,
    activations: u64,
    side_reads: u64,
    side_writes: u64,
}

impl Cra {
    /// Creates a CRA instance.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the counter region cannot be laid out or
    /// the threshold exceeds the one-byte counters.
    pub fn new(config: CraConfig) -> Result<Self, ConfigError> {
        if config.threshold > 255 || config.threshold < 2 {
            return Err(ConfigError::new(format!(
                "CRA threshold {} must be in [2, 255] (one-byte counters)",
                config.threshold
            )));
        }
        let rows = config.geometry.rows_per_channel();
        let region = CounterRegion::new(config.geometry, config.channel, rows, 1)?;
        let lines = (config.cache_bytes / 64).max(1);
        let ways = config.cache_ways.clamp(1, lines);
        Ok(Cra {
            cache: MetadataCache::new(lines, ways),
            counts: vec![0; rows as usize],
            region,
            config,
            mitigations: 0,
            activations: 0,
            side_reads: 0,
            side_writes: 0,
        })
    }

    /// The DRAM region holding the counter table. Activations *within* this
    /// region are not tracked — CRA predates the counter-row-attack concern;
    /// Hydra's RIT-ACT exists to close exactly this hole.
    pub fn region(&self) -> &CounterRegion {
        &self.region
    }

    /// The configuration.
    pub fn config(&self) -> &CraConfig {
        &self.config
    }

    /// Metadata-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits
    }

    /// Metadata-cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses
    }

    /// DRAM counter-line reads issued.
    pub fn side_reads(&self) -> u64 {
        self.side_reads
    }

    /// DRAM counter-line write-backs issued.
    pub fn side_writes(&self) -> u64 {
        self.side_writes
    }

    /// Mitigations issued.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }
}

impl ActivationTracker for Cra {
    fn on_activation(
        &mut self,
        row: RowAddr,
        _now: MemCycle,
        _kind: ActivationKind,
    ) -> TrackerResponse {
        debug_assert_eq!(row.channel, self.config.channel);
        self.activations += 1;
        let mut response = TrackerResponse::none();

        // Counter rows themselves are not tracked (CRA predates the
        // counter-row-attack concern; see DESIGN.md).
        if self.region.contains(row) {
            return response;
        }

        let index = self.config.geometry.channel_row_index(row);
        let line = self.region.line_of_entry(index);
        let (hit, evicted) = self.cache.access(line);
        if !hit {
            // Fetch the counter line from DRAM.
            self.side_reads += 1;
            response
                .side_requests
                .push(SideRequest::read(self.region.dram_row_of_entry(index)));
        }
        if let Some(victim_line) = evicted {
            // Metadata lines are written on every counted activation, so
            // evictions are always dirty.
            self.side_writes += 1;
            let victim_entry = victim_line * self.region.entries_per_line();
            response.side_requests.push(SideRequest::write(
                self.region.dram_row_of_entry(victim_entry),
            ));
        }

        let count = &mut self.counts[index as usize];
        *count = count.saturating_add(1);
        if u32::from(*count) >= self.config.threshold {
            *count = 0;
            self.mitigations += 1;
            response.mitigations.push(MitigationRequest::new(row));
        }
        response
    }

    fn reset_window(&mut self, _now: MemCycle) {
        // CRA resets counters each refresh window; the metadata cache is
        // flushed with them (counts drop to zero so nothing needs writing).
        self.counts.fill(0);
        self.cache.clear();
    }

    fn name(&self) -> &str {
        "cra"
    }

    fn sram_bytes(&self) -> u64 {
        self.config.cache_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cra(cache_bytes: usize) -> Cra {
        Cra::new(CraConfig {
            geometry: MemGeometry::tiny(),
            channel: 0,
            threshold: 16,
            cache_bytes,
            cache_ways: 2,
        })
        .unwrap()
    }

    fn act(c: &mut Cra, row: RowAddr) -> TrackerResponse {
        c.on_activation(row, 0, ActivationKind::Demand)
    }

    #[test]
    fn counts_exactly_and_mitigates_at_threshold() {
        let mut c = cra(4096);
        let row = RowAddr::new(0, 0, 1, 10);
        let mut when = Vec::new();
        for i in 1..=48 {
            if !act(&mut c, row).mitigations.is_empty() {
                when.push(i);
            }
        }
        assert_eq!(when, vec![16, 32, 48]);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = cra(4096);
        let row = RowAddr::new(0, 0, 0, 1);
        let r1 = act(&mut c, row);
        assert_eq!(r1.side_requests.len(), 1);
        let r2 = act(&mut c, row);
        assert!(r2.side_requests.is_empty());
        assert_eq!(c.cache_hits(), 1);
        assert_eq!(c.cache_misses(), 1);
    }

    #[test]
    fn line_granularity_gives_spatial_locality() {
        // Rows 0..63 share one counter line: one miss then 63 hits.
        let mut c = cra(4096);
        for r in 0..64u32 {
            act(&mut c, RowAddr::new(0, 0, 0, r));
        }
        assert_eq!(c.cache_misses(), 1);
        assert_eq!(c.cache_hits(), 63);
    }

    #[test]
    fn scattered_rows_thrash_the_cache() {
        // 512 B cache = 8 lines; cycle through all 64 counter lines of the
        // tiny geometry (4096 rows / 64 entries-per-line) round-robin: LRU
        // gets no reuse before eviction.
        let mut c = cra(512);
        for _round in 0..4 {
            for line in 0..64u64 {
                let index = line * 64;
                let bank = (index / 1024) as u8;
                let row = (index % 1024) as u32;
                act(&mut c, RowAddr::new(0, 0, bank, row));
            }
        }
        let hit_rate = c.cache_hits() as f64 / (c.cache_hits() + c.cache_misses()) as f64;
        assert!(hit_rate < 0.1, "hit rate {hit_rate} should be thrashed");
        assert!(c.side_writes() > 0, "dirty evictions must write back");
    }

    #[test]
    fn eviction_emits_writeback() {
        // 64-byte cache = 1 line: every new line evicts the previous one.
        let mut c = cra(64);
        act(&mut c, RowAddr::new(0, 0, 0, 0));
        let r = act(&mut c, RowAddr::new(0, 0, 0, 64));
        assert_eq!(r.side_requests.len(), 2); // read new + write old
        assert_eq!(c.side_writes(), 1);
    }

    #[test]
    fn counter_rows_are_ignored() {
        let mut c = cra(4096);
        let counter_row = RowAddr::new(0, 0, 3, 1023);
        let r = act(&mut c, counter_row);
        assert!(r.is_empty());
    }

    #[test]
    fn window_reset_restarts_counting() {
        let mut c = cra(4096);
        let row = RowAddr::new(0, 0, 0, 3);
        for _ in 0..15 {
            act(&mut c, row);
        }
        c.reset_window(0);
        for _ in 0..15 {
            let r = act(&mut c, row);
            assert!(r.mitigations.is_empty());
        }
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut cfg = CraConfig::for_threshold(MemGeometry::tiny(), 0, 1000, 4096).unwrap();
        assert!(Cra::new(cfg.clone()).is_err()); // 500 > 255
        cfg.threshold = 100;
        assert!(Cra::new(cfg).is_ok());
    }

    #[test]
    fn one_byte_counters_reach_the_255_ceiling_exactly() {
        // threshold = 255 is the largest the one-byte counters admit: the
        // count must walk all the way to the ceiling and reset there, twice.
        // Saturation may never freeze it short of the threshold.
        let mut c = Cra::new(CraConfig {
            geometry: MemGeometry::tiny(),
            channel: 0,
            threshold: 255,
            cache_bytes: 4096,
            cache_ways: 2,
        })
        .unwrap();
        let row = RowAddr::new(0, 0, 0, 3);
        let mut when = Vec::new();
        for i in 1..=600 {
            if !act(&mut c, row).mitigations.is_empty() {
                when.push(i);
            }
        }
        assert_eq!(when, vec![255, 510]);
    }
}
