//! A BlockHammer-style tracker: D-CBF blacklisting + rate-control
//! mitigation (Yağlıkçı et al., HPCA 2021; the paper's Sec. 7.1 comparison).
//!
//! Wraps [`DualCountingBloomFilter`] in the [`ActivationTracker`] interface
//! so the full-system simulator can run it: when a row's filter estimate
//! crosses the blacklist threshold, the tracker requests mitigation, which
//! only makes sense under [`MitigationPolicy::RateLimit`] — BlockHammer
//! throttles aggressors rather than refreshing victims. Pairing it with
//! victim refresh would be unsound (the filter cannot reset per-row state,
//! so it would re-request mitigation on every subsequent activation — the
//! exact incompatibility Sec. 7.1 describes).
//!
//! [`MitigationPolicy::RateLimit`]: hydra_types::mitigation::MitigationPolicy

use crate::dcbf::DualCountingBloomFilter;
use hydra_types::addr::RowAddr;
use hydra_types::clock::MemCycle;
use hydra_types::error::ConfigError;
use hydra_types::tracker::{ActivationKind, ActivationTracker, TrackerResponse};
use std::collections::HashSet;

/// BlockHammer-style blacklisting tracker.
///
/// # Example
///
/// ```
/// use hydra_baselines::blockhammer::BlockHammer;
/// use hydra_types::{ActivationKind, ActivationTracker, RowAddr};
/// let mut bh = BlockHammer::for_threshold(64, 100_000)?;
/// let row = RowAddr::new(0, 0, 0, 5);
/// let mut requested = false;
/// for t in 0..64u64 {
///     requested |= !bh.on_activation(row, t, ActivationKind::Demand).is_empty();
/// }
/// assert!(requested, "a hammered row must be blacklisted");
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockHammer {
    filter: DualCountingBloomFilter,
    /// Rows already reported this epoch (one rate-limit request suffices;
    /// the controller's blacklist persists until the window reset).
    reported: HashSet<RowAddr>,
    counters: usize,
    blacklists: u64,
}

impl BlockHammer {
    /// Creates a tracker with `counters` filter counters per filter and the
    /// given blacklist threshold; epochs are half the given window.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero parameters.
    pub fn new(counters: usize, threshold: u32, window: MemCycle) -> Result<Self, ConfigError> {
        Ok(BlockHammer {
            filter: DualCountingBloomFilter::new(counters, threshold, (window / 2).max(1))?,
            reported: HashSet::new(),
            counters,
            blacklists: 0,
        })
    }

    /// Sizes the filter for `t_rh` following the D-CBF sizing of Sec. 2.4
    /// (see `storage::dcbf_bytes_per_rank`): the blacklist threshold is
    /// `t_rh / 2` and the filter gets `36 · ACT_max_window / t_rh` counters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for degenerate thresholds.
    pub fn for_threshold(t_rh: u32, window: MemCycle) -> Result<Self, ConfigError> {
        if t_rh < 4 {
            return Err(ConfigError::new("T_RH must be at least 4"));
        }
        // ACT_max scales with the window (tRC = 72 cycles at our clock).
        let act_max = (window / 72).max(1_000);
        let counters = ((36 * act_max) / u64::from(t_rh)).max(64) as usize;
        BlockHammer::new(counters, t_rh / 2, window)
    }

    /// Rows blacklisted so far.
    pub fn blacklists(&self) -> u64 {
        self.blacklists
    }
}

impl ActivationTracker for BlockHammer {
    fn on_activation(
        &mut self,
        row: RowAddr,
        now: MemCycle,
        _kind: ActivationKind,
    ) -> TrackerResponse {
        self.filter.on_activation(row, now);
        if self.filter.is_blacklisted(row) && self.reported.insert(row) {
            self.blacklists += 1;
            TrackerResponse::mitigate(row)
        } else {
            TrackerResponse::none()
        }
    }

    fn reset_window(&mut self, _now: MemCycle) {
        // Filter epochs roll inside the D-CBF itself; the reported set
        // resets with the controller's blacklist.
        self.reported.clear();
    }

    fn name(&self) -> &str {
        "blockhammer"
    }

    fn sram_bytes(&self) -> u64 {
        // Two filters of 4-bit counters.
        (self.counters as u64 * 2) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bh() -> BlockHammer {
        BlockHammer::new(4096, 16, 1_000_000).unwrap()
    }

    fn act(b: &mut BlockHammer, row: RowAddr, now: MemCycle) -> bool {
        !b.on_activation(row, now, ActivationKind::Demand).is_empty()
    }

    #[test]
    fn blacklists_once_per_epoch() {
        let mut b = bh();
        let row = RowAddr::new(0, 0, 0, 9);
        let mut requests = 0;
        for t in 0..100u64 {
            if act(&mut b, row, t) {
                requests += 1;
            }
        }
        assert_eq!(requests, 1, "one rate-limit request per row per epoch");
        assert_eq!(b.blacklists(), 1);
    }

    #[test]
    fn request_arrives_at_threshold() {
        let mut b = bh();
        let row = RowAddr::new(0, 0, 1, 42);
        let mut at = None;
        for t in 1..=40u64 {
            if act(&mut b, row, t) {
                at = Some(t);
                break;
            }
        }
        assert_eq!(at, Some(16), "blacklisted exactly at the threshold");
    }

    #[test]
    fn window_reset_allows_rereporting() {
        let mut b = bh();
        let row = RowAddr::new(0, 0, 0, 9);
        for t in 0..20u64 {
            act(&mut b, row, t);
        }
        b.reset_window(100);
        // The filter still holds the count, so the next activation
        // re-reports the still-hot row (the controller's blacklist was
        // cleared with the window).
        assert!(act(&mut b, row, 101));
    }

    #[test]
    fn sizing_scales_inversely_with_threshold() {
        let low = BlockHammer::for_threshold(500, 100_000_000).unwrap();
        let high = BlockHammer::for_threshold(32_000, 100_000_000).unwrap();
        assert!(low.sram_bytes() > high.sram_bytes());
    }

    #[test]
    fn cold_rows_are_never_reported() {
        let mut b = bh();
        for r in 0..1000u32 {
            assert!(!act(&mut b, RowAddr::new(0, 0, 0, r), u64::from(r)));
        }
    }
}
