//! The Misra-Gries frequent-items summary used by Graphene.
//!
//! Maintains up to `N` (item, count) pairs plus a *spillover* counter. The
//! invariant that makes it useful for Row-Hammer tracking: for every item,
//! `estimate(item) >= true_count(item)` — where `estimate` is the item's
//! tabled count if present, else the spillover count. A threshold check on
//! the estimate therefore never misses a true aggressor. (Graphene paper,
//! MICRO 2020.)

use std::collections::HashMap;
use std::hash::Hash;

/// A Misra-Gries summary over items of type `K`.
///
/// # Example
///
/// ```
/// use hydra_baselines::MisraGries;
/// let mut mg = MisraGries::new(2);
/// mg.increment(&"a");
/// mg.increment(&"a");
/// mg.increment(&"b");
/// assert_eq!(mg.estimate(&"a"), 2);
/// assert!(mg.estimate(&"c") <= mg.spillover() );
/// ```
#[derive(Debug, Clone)]
pub struct MisraGries<K> {
    entries: HashMap<K, u64>,
    capacity: usize,
    spillover: u64,
}

impl<K: Eq + Hash + Clone> MisraGries<K> {
    /// Creates a summary with room for `capacity` tracked items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Misra-Gries needs at least one entry");
        MisraGries {
            entries: HashMap::with_capacity(capacity),
            capacity,
            spillover: 0,
        }
    }

    /// Tracked-entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current spillover count (lower bound for untracked items' estimates).
    pub fn spillover(&self) -> u64 {
        self.spillover
    }

    /// Number of tracked items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records one occurrence of `item` and returns its new estimate.
    ///
    /// The classic update: if tracked, bump its count. Otherwise, if an
    /// entry sits at the spillover floor, replace it (the newcomer inherits
    /// `spillover + 1`). Otherwise bump the spillover counter.
    pub fn increment(&mut self, item: &K) -> u64 {
        if let Some(c) = self.entries.get_mut(item) {
            *c = c.saturating_add(1);
            return *c;
        }
        if self.entries.len() < self.capacity {
            let c = self.spillover.saturating_add(1);
            self.entries.insert(item.clone(), c);
            return c;
        }
        // Replace a floor entry if one exists.
        let spill = self.spillover;
        let floor_key = self
            .entries
            .iter()
            .find(|(_, &c)| c <= spill)
            .map(|(k, _)| k.clone());
        if let Some(key) = floor_key {
            self.entries.remove(&key);
            let c = self.spillover.saturating_add(1);
            self.entries.insert(item.clone(), c);
            c
        } else {
            self.spillover = self.spillover.saturating_add(1);
            self.spillover
        }
    }

    /// The over-approximate count for `item`.
    pub fn estimate(&self, item: &K) -> u64 {
        self.entries.get(item).copied().unwrap_or(self.spillover)
    }

    /// True if `item` currently has a tracked entry.
    pub fn is_tracked(&self, item: &K) -> bool {
        self.entries.contains_key(item)
    }

    /// Iterates over the tracked `(item, count)` pairs in arbitrary order.
    ///
    /// Counts carry the usual Misra-Gries over-approximation (up to
    /// [`Self::spillover`] phantom occurrences); heavy-hitter consumers
    /// like the forensics attribution engine sort and threshold these.
    pub fn entries(&self) -> impl Iterator<Item = (&K, u64)> {
        self.entries.iter().map(|(k, &c)| (k, c))
    }

    /// Sets a tracked item's count (used by Graphene after mitigation: the
    /// count restarts from the spillover floor so the estimate invariant is
    /// preserved for the *post-mitigation* true count of zero).
    pub fn reset_item(&mut self, item: &K) {
        let spill = self.spillover;
        if let Some(c) = self.entries.get_mut(item) {
            *c = spill;
        }
    }

    /// Clears everything (window reset).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.spillover = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    #[test]
    fn tracks_up_to_capacity_exactly() {
        let mut mg = MisraGries::new(3);
        for item in ["a", "b", "c"] {
            mg.increment(&item);
        }
        assert_eq!(mg.len(), 3);
        assert_eq!(mg.estimate(&"a"), 1);
        assert_eq!(mg.spillover(), 0);
    }

    #[test]
    fn overflow_bumps_spillover() {
        let mut mg = MisraGries::new(2);
        mg.increment(&1);
        mg.increment(&2);
        mg.increment(&3); // no floor entry (both at 1 > spill 0)? floor = c <= 0: none
        assert_eq!(mg.spillover(), 1);
        // Now items at count 1 == spillover are replaceable.
        mg.increment(&4);
        assert!(mg.is_tracked(&4));
        assert_eq!(mg.estimate(&4), 2);
    }

    #[test]
    fn estimate_never_underestimates() {
        // The Misra-Gries guarantee, checked against exact counts on an
        // adversarial interleaving.
        let mut mg = MisraGries::new(4);
        let mut exact: Map<u32, u64> = Map::new();
        let stream: Vec<u32> = (0..2000u32).map(|i| (i * 7) % 23).collect();
        for item in stream {
            *exact.entry(item).or_insert(0) += 1;
            mg.increment(&item);
            for (k, &true_count) in &exact {
                assert!(
                    mg.estimate(k) >= true_count,
                    "estimate({k}) = {} < true {true_count}",
                    mg.estimate(k)
                );
            }
        }
    }

    #[test]
    fn reset_item_floors_at_spillover() {
        let mut mg = MisraGries::new(1);
        for _ in 0..10 {
            mg.increment(&"hot");
        }
        mg.increment(&"other"); // spillover -> 1
        mg.reset_item(&"hot");
        assert_eq!(mg.estimate(&"hot"), mg.spillover());
    }

    #[test]
    fn entries_exposes_tracked_pairs() {
        let mut mg = MisraGries::new(4);
        for _ in 0..3 {
            mg.increment(&"hot");
        }
        mg.increment(&"cold");
        let mut pairs: Vec<(&str, u64)> = mg.entries().map(|(k, c)| (*k, c)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![("cold", 1), ("hot", 3)]);
    }

    #[test]
    fn clear_resets_all_state() {
        let mut mg = MisraGries::new(2);
        mg.increment(&1);
        mg.increment(&2);
        mg.increment(&3);
        mg.clear();
        assert!(mg.is_empty());
        assert_eq!(mg.spillover(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MisraGries::<u32>::new(0);
    }

    #[test]
    fn resident_counts_climb_exactly_below_capacity() {
        let mut mg = MisraGries::new(4);
        for expected in 1..=300u64 {
            assert_eq!(mg.increment(&"hot"), expected);
        }
        assert_eq!(mg.estimate(&"hot"), 300);
        assert_eq!(mg.spillover(), 0);
    }
}
