//! TWiCE-style pruned counter table (Lee et al., ISCA 2019).
//!
//! TWiCE keeps a tagged table of activation counts and periodically *prunes*
//! entries whose counts are too low to reach the threshold within the
//! remaining refresh window, bounding table occupancy. The pruning interval
//! splits the window into `threshold / prune_ratio` checkpoints; an entry
//! surviving checkpoint `k` must have at least `k * prune_ratio` counts.
//!
//! This functional model exists for the storage comparison (Tables 1 & 5 use
//! the analytic model in [`crate::storage`]) and to demonstrate the paper's
//! point that the entry count needed for a guarantee scales as
//! `ACT_max / T_RH` and explodes at ultra-low thresholds.

use hydra_types::addr::RowAddr;
use hydra_types::clock::MemCycle;
use hydra_types::error::ConfigError;
use std::collections::HashMap;

/// A TWiCE-style table for one bank (or any address scope the caller picks).
///
/// # Example
///
/// ```
/// use hydra_baselines::TwiceTable;
/// use hydra_types::RowAddr;
/// let mut t = TwiceTable::new(64, 16, 1000, 4)?;
/// let row = RowAddr::new(0, 0, 0, 1);
/// let mut mitigations = 0;
/// for i in 0..64u64 {
///     if t.on_activation(row, i) { mitigations += 1; }
/// }
/// assert_eq!(mitigations, 4); // every 16 activations
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TwiceTable {
    entries: HashMap<RowAddr, u32>,
    capacity: usize,
    threshold: u32,
    window: MemCycle,
    checkpoints: u32,
    last_checkpoint: u32,
    overflowed: bool,
    mitigations: u64,
    pruned: u64,
}

impl TwiceTable {
    /// Creates a table with `capacity` entries, mitigating at `threshold`,
    /// over a window of `window` cycles split into `checkpoints` pruning
    /// intervals.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero parameters or `checkpoints >=
    /// threshold` (pruning would outpace counting).
    pub fn new(
        capacity: usize,
        threshold: u32,
        window: MemCycle,
        checkpoints: u32,
    ) -> Result<Self, ConfigError> {
        if capacity == 0 || threshold == 0 || window == 0 || checkpoints == 0 {
            return Err(ConfigError::new("all TWiCE parameters must be nonzero"));
        }
        if checkpoints >= threshold {
            return Err(ConfigError::new(
                "checkpoint count must be below the threshold",
            ));
        }
        Ok(TwiceTable {
            entries: HashMap::with_capacity(capacity),
            capacity,
            threshold,
            window,
            checkpoints,
            last_checkpoint: 0,
            overflowed: false,
            mitigations: 0,
            pruned: 0,
        })
    }

    /// Records an activation at `now`; returns `true` if the row must be
    /// mitigated (its count reached the threshold; the count resets).
    pub fn on_activation(&mut self, row: RowAddr, now: MemCycle) -> bool {
        self.prune(now);
        if !self.entries.contains_key(&row) && self.entries.len() >= self.capacity {
            // Table overflow: TWiCE loses the tracking guarantee here — the
            // condition the Hydra paper's Table 1 sizes against.
            self.overflowed = true;
            return false;
        }
        let count = self.entries.entry(row).or_insert(0);
        *count = count.saturating_add(1);
        if *count >= self.threshold {
            *count = 0;
            self.mitigations += 1;
            true
        } else {
            false
        }
    }

    fn prune(&mut self, now: MemCycle) {
        let checkpoint =
            ((now % self.window) * MemCycle::from(self.checkpoints) / self.window) as u32;
        if now % self.window < self.window / MemCycle::from(self.checkpoints).max(1)
            && self.last_checkpoint > checkpoint
        {
            // Window wrapped: clear everything.
            self.entries.clear();
            self.last_checkpoint = 0;
            return;
        }
        if checkpoint > self.last_checkpoint {
            // An entry that could still reach `threshold` must have at least
            // (checkpoint / checkpoints) * threshold counts by now.
            let floor = self.threshold * checkpoint / self.checkpoints;
            let before = self.entries.len();
            self.entries
                .retain(|_, &mut c| c >= floor.saturating_sub(1));
            self.pruned += (before - self.entries.len()) as u64;
            self.last_checkpoint = checkpoint;
        }
    }

    /// True if the table ever overflowed (tracking guarantee lost).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Entries currently resident.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Entries pruned so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Mitigations issued.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// Clears the table (window reset).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.last_checkpoint = 0;
        self.overflowed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_row_is_mitigated() {
        let mut t = TwiceTable::new(16, 10, 1_000, 4).unwrap();
        let row = RowAddr::new(0, 0, 0, 1);
        let mut mitigations = 0;
        for i in 0..50u64 {
            if t.on_activation(row, i) {
                mitigations += 1;
            }
        }
        assert_eq!(mitigations, 5);
    }

    #[test]
    fn pruning_drops_cold_entries() {
        let mut t = TwiceTable::new(1024, 100, 1_000, 4).unwrap();
        // 200 cold rows early in the window.
        for r in 0..200u32 {
            t.on_activation(RowAddr::new(0, 0, 0, r), 0);
        }
        assert_eq!(t.occupancy(), 200);
        // Cross a checkpoint: cold entries (count 1 < floor) are pruned.
        t.on_activation(RowAddr::new(0, 0, 0, 1000), 600);
        assert!(t.occupancy() < 200, "occupancy {}", t.occupancy());
        assert!(t.pruned() > 0);
    }

    #[test]
    fn overflow_is_detected() {
        let mut t = TwiceTable::new(4, 100, 1_000_000, 2).unwrap();
        for r in 0..10u32 {
            t.on_activation(RowAddr::new(0, 0, 0, r), 0);
        }
        assert!(t.overflowed());
    }

    #[test]
    fn reset_clears_state() {
        let mut t = TwiceTable::new(4, 100, 1_000, 2).unwrap();
        for r in 0..10u32 {
            t.on_activation(RowAddr::new(0, 0, 0, r), 0);
        }
        t.reset();
        assert!(!t.overflowed());
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(TwiceTable::new(0, 10, 10, 2).is_err());
        assert!(TwiceTable::new(4, 0, 10, 2).is_err());
        assert!(TwiceTable::new(4, 10, 0, 2).is_err());
        assert!(TwiceTable::new(4, 10, 10, 10).is_err());
    }

    #[test]
    fn counts_cycle_exactly_at_the_threshold() {
        let mut t = TwiceTable::new(16, 7, 1_000, 4).unwrap();
        let row = RowAddr::new(0, 0, 0, 2);
        let mut when = Vec::new();
        for i in 0..21u64 {
            if t.on_activation(row, i) {
                when.push(i + 1);
            }
        }
        assert_eq!(when, vec![7, 14, 21]);
    }
}
