//! Analytic per-rank storage models for prior trackers (Tables 1 & 5).
//!
//! Each model computes the SRAM/CAM bytes a scheme needs *per rank* to keep
//! its tracking guarantee at a given Row-Hammer threshold. The constants are
//! calibrated to the papers' own sizing rules and reproduce the Hydra
//! paper's Table 1 within rounding:
//!
//! | scheme   | entries                            | bytes/entry | notes |
//! |----------|------------------------------------|-------------|-------|
//! | Graphene | `ACT_max/(T_RH/2)+1` per bank      | 4           | 17-bit row addr + 9-bit count, CAM, rounded up |
//! | TWiCE    | `ACT_max/(T_RH/4)` per bank        | 13          | 67-bit entry + ~37 % CAM area overhead |
//! | CAT      | `4·ACT_max/T_RH` per bank          | 9           | counter + tree bookkeeping, ~35 % CAM |
//! | D-CBF    | `36·ACT_max_rank/T_RH` counters    | 0.5 (4-bit) | two filters, 3 hashes, low-FP sizing |
//! | OCPR     | one per row                        | `⌈log2 T_RH⌉` bits | the untagged upper bound |
//!
//! Known deviation: the paper lists D-CBF at 53 KB for `T_RH` = 32 K where
//! pure `1/T_RH` scaling gives ~12 KB — BlockHammer's sizing has threshold
//! floors our model omits; at the ultra-low thresholds this paper targets the
//! models agree.

/// `ACT_max` per bank for the paper's DDR4 baseline (Sec. 2.1).
pub const ACT_MAX_PER_BANK: u64 = 1_360_000;

/// Banks per rank for DDR4 (Table 1's headline configuration).
pub const DDR4_BANKS_PER_RANK: u32 = 16;

/// Banks per rank for DDR5 (Table 5 doubles per-bank trackers).
pub const DDR5_BANKS_PER_RANK: u32 = 32;

/// Rows per 16 GB rank with 8 KB rows.
pub const ROWS_PER_16GB_RANK: u64 = 2 * 1024 * 1024;

/// Graphene's per-rank bytes: Misra-Gries CAM of
/// `ACT_max/(T_RH/2) + 1` entries per bank at 4 bytes per entry.
pub fn graphene_bytes_per_rank(t_rh: u32, act_max_per_bank: u64, banks: u32) -> u64 {
    let threshold = u64::from(t_rh / 2).max(1);
    let entries = act_max_per_bank.div_ceil(threshold) + 1;
    entries * u64::from(banks) * 4
}

/// TWiCE's per-rank bytes: `ACT_max/(T_RH/4)` entries per bank at 13 bytes.
pub fn twice_bytes_per_rank(t_rh: u32, act_max_per_bank: u64, banks: u32) -> u64 {
    let threshold = u64::from(t_rh / 4).max(1);
    let entries = act_max_per_bank.div_ceil(threshold);
    entries * u64::from(banks) * 13
}

/// CAT's per-rank bytes: `4·ACT_max/T_RH` counters per bank at 9 bytes.
pub fn cat_bytes_per_rank(t_rh: u32, act_max_per_bank: u64, banks: u32) -> u64 {
    let entries = (4 * act_max_per_bank).div_ceil(u64::from(t_rh).max(1));
    entries * u64::from(banks) * 9
}

/// D-CBF's per-rank bytes: `36·ACT_max_rank/T_RH` 4-bit counters across the
/// two time-shifted filters. Rank-level (not per bank): unchanged for DDR5.
pub fn dcbf_bytes_per_rank(t_rh: u32, act_max_per_bank: u64, banks: u32) -> u64 {
    let act_max_rank = act_max_per_bank * u64::from(banks);
    let counters = (36 * act_max_rank).div_ceil(u64::from(t_rh).max(1));
    counters / 2 // 4 bits each
}

/// OCPR's per-rank bytes: one `⌈log2 T_RH⌉`-bit counter per row.
pub fn ocpr_bytes_per_rank(t_rh: u32, rows_per_rank: u64) -> u64 {
    let bits = u64::from(32 - t_rh.max(2).leading_zeros());
    (rows_per_rank * bits).div_ceil(8)
}

/// CoMeT's count-min-sketch width (counters per hash row, per bank).
pub const COMET_SKETCH_WIDTH: u64 = 512;

/// CoMeT's count-min-sketch depth (hash rows, per bank).
pub const COMET_SKETCH_DEPTH: u64 = 4;

/// CoMeT's recent-aggressor-table entries per bank.
pub const COMET_RAT_ENTRIES: u64 = 128;

/// CoMeT's per-rank bytes (HPCA 2024 configuration, our derivation): per
/// bank, a `512×4` count-min sketch of 16-bit counters plus a 128-entry
/// recent-aggressor table whose CAM entries hold a 17-bit row tag and a
/// `⌈log2 T_H⌉`-bit exact counter (rounded up one byte for the match
/// line). At `T_RH` = 1000 and 16 banks this is
/// `16 × (512·4·2 B + 128·5 B)` = 75,776 B ≈ 74 KB per rank — an order
/// of magnitude under Graphene's 170 KB at the same threshold, which is
/// CoMeT's headline claim.
pub fn comet_bytes_per_rank(t_rh: u32, banks: u32) -> u64 {
    let sketch_bytes = COMET_SKETCH_WIDTH * COMET_SKETCH_DEPTH * 2;
    let counter_bits = u64::from(32 - (t_rh / 2).max(2).leading_zeros());
    let rat_entry_bytes = (17 + counter_bits).div_ceil(8) + 1;
    u64::from(banks) * (sketch_bytes + COMET_RAT_ENTRIES * rat_entry_bytes)
}

/// ABACuS's per-rank bytes (USENIX Security 2024 sizing, our derivation):
/// `ACT_max / (T_RH/2)` shared row-id entries per rank — one entry covers
/// the row index across **all** banks — each holding a 16-bit row id, a
/// `⌈log2 T_H⌉`-bit row activation counter, and a one-bit-per-bank sibling
/// activation vector. At `T_RH` = 1000 and 16 banks: `2720 × 41` bits
/// ≈ 13.6 KB per rank. The all-bank sharing is the whole trick: Graphene
/// pays its table once per bank, ABACuS once per rank.
pub fn abacus_bytes_per_rank(t_rh: u32, act_max_per_bank: u64, banks: u32) -> u64 {
    let t_h = u64::from(t_rh / 2).max(1);
    let entries = act_max_per_bank.div_ceil(t_h);
    let rac_bits = u64::from(32 - (t_rh / 2).max(2).leading_zeros());
    let entry_bits = 16 + rac_bits + u64::from(banks);
    (entries * entry_bits).div_ceil(8)
}

/// MINT's per-rank bytes (MICRO 2024, our derivation): no row state at
/// all — per bank, an interval-position cursor and the sampled slot, each
/// `⌈log2 I⌉` bits for sampling interval `I = (T_RH/2)/16`, plus one
/// shared 256-bit PRNG state. Tens of bytes per rank at every threshold;
/// MINT's storage does not scale with `T_RH` in any meaningful way.
pub fn mint_bytes_per_rank(t_rh: u32, banks: u32) -> u64 {
    let interval = (t_rh / 2 / 16).max(1);
    let slot_bits = u64::from(32 - interval.leading_zeros()).max(1);
    (u64::from(banks) * 2 * slot_bits + 256).div_ceil(8)
}

/// START's per-rank bytes (HPCA 2024, our derivation): counter storage is
/// allocated lazily in cache-line-sized groups of 8 rows, and the
/// *reserved* pool must cover the adversarial bound — an attacker can
/// spread `banks · ACT_max` activations so that one group reaches `T_H`
/// per `T_H` activations, hence `banks · ACT_max / T_H` lines of
/// `8·⌈log2 T_H⌉` counter bits plus a 17-bit group tag. At `T_RH` = 1000
/// and 16 banks: `43,521 × 89` bits ≈ 473 KB — about 5.8 % of an 8 MB
/// LLC, which is the regime the paper reports (worst-case reservation ~9 %,
/// typical use far lower since benign windows allocate few groups).
pub fn start_bytes_per_rank(t_rh: u32, act_max_per_bank: u64, banks: u32) -> u64 {
    let t_h = u64::from(t_rh / 2).max(1);
    let lines = (act_max_per_bank * u64::from(banks)).div_ceil(t_h) + 1;
    let counter_bits = u64::from(32 - (t_rh / 2).max(2).leading_zeros());
    let line_bits = 8 * counter_bits + 17;
    (lines * line_bits).div_ceil(8)
}

/// One row of Table 1 / Table 5: a scheme's storage at a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Graphene (MICRO 2020).
    Graphene,
    /// TWiCE (ISCA 2019).
    Twice,
    /// CAT (ISCA 2018).
    Cat,
    /// D-CBF / BlockHammer (HPCA 2021).
    Dcbf,
    /// One-Counter-Per-Row upper bound.
    Ocpr,
}

impl Scheme {
    /// All schemes in Table 1 order.
    pub const ALL: [Scheme; 5] = [
        Scheme::Graphene,
        Scheme::Twice,
        Scheme::Cat,
        Scheme::Dcbf,
        Scheme::Ocpr,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Graphene => "Graphene",
            Scheme::Twice => "TWiCE",
            Scheme::Cat => "CAT",
            Scheme::Dcbf => "D-CBF",
            Scheme::Ocpr => "OCPR",
        }
    }

    /// True if the scheme keeps per-bank tables (doubling its storage on
    /// DDR5's 32 banks — the `*` footnote of Table 1).
    pub fn scales_with_banks(self) -> bool {
        matches!(self, Scheme::Graphene | Scheme::Twice | Scheme::Cat)
    }

    /// Per-rank bytes at threshold `t_rh` with `banks` banks per rank.
    pub fn bytes_per_rank(self, t_rh: u32, banks: u32) -> u64 {
        match self {
            Scheme::Graphene => graphene_bytes_per_rank(t_rh, ACT_MAX_PER_BANK, banks),
            Scheme::Twice => twice_bytes_per_rank(t_rh, ACT_MAX_PER_BANK, banks),
            Scheme::Cat => cat_bytes_per_rank(t_rh, ACT_MAX_PER_BANK, banks),
            Scheme::Dcbf => dcbf_bytes_per_rank(t_rh, ACT_MAX_PER_BANK, banks),
            Scheme::Ocpr => ocpr_bytes_per_rank(t_rh, ROWS_PER_16GB_RANK),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn close(actual: u64, expect: u64, tolerance: f64) -> bool {
        let a = actual as f64;
        let e = expect as f64;
        (a - e).abs() / e <= tolerance
    }

    #[test]
    fn graphene_matches_table1() {
        // Paper: 340 KB at 500, 679 KB at 250, 170 KB at 1000, 5 KB at 32K.
        let g = |t| graphene_bytes_per_rank(t, ACT_MAX_PER_BANK, 16);
        assert!(close(g(500), 340 * KB, 0.05), "{}", g(500));
        assert!(close(g(250), 679 * KB, 0.05), "{}", g(250));
        assert!(close(g(1000), 170 * KB, 0.05), "{}", g(1000));
        assert!(close(g(32_000), 5 * KB, 0.25), "{}", g(32_000));
    }

    #[test]
    fn ocpr_matches_table1() {
        // Paper: 2.3 MB at 500, 2.0 MB at 250, 2.5 MB at 1000, 3.8 MB at 32K.
        let o = |t| ocpr_bytes_per_rank(t, ROWS_PER_16GB_RANK);
        assert!(close(o(500), (2.25 * MB as f64) as u64, 0.05));
        assert!(close(o(250), 2 * MB, 0.05));
        assert!(close(o(1000), (2.5 * MB as f64) as u64, 0.05));
        assert!(close(o(32_000), (3.75 * MB as f64) as u64, 0.05));
    }

    #[test]
    fn twice_matches_table1_shape() {
        // Paper: 2.3 MB at 500, 1.2 MB at 1000, >2 MB at 250, 37 KB at 32K.
        let t = |x| twice_bytes_per_rank(x, ACT_MAX_PER_BANK, 16);
        assert!(close(t(500), (2.26 * MB as f64) as u64, 0.10), "{}", t(500));
        assert!(close(t(1000), (1.13 * MB as f64) as u64, 0.10));
        assert!(t(250) > 2 * MB);
        assert!(close(t(32_000), 36 * KB, 0.15), "{}", t(32_000));
    }

    #[test]
    fn cat_matches_table1_shape() {
        // Paper: 1.5 MB at 500, 784 KB at 1000, >2 MB at 250, 25 KB at 32K.
        let c = |x| cat_bytes_per_rank(x, ACT_MAX_PER_BANK, 16);
        assert!(close(c(500), (1.5 * MB as f64) as u64, 0.10), "{}", c(500));
        assert!(close(c(1000), 784 * KB, 0.05), "{}", c(1000));
        assert!(c(250) > 2 * MB);
        assert!(close(c(32_000), 25 * KB, 0.05), "{}", c(32_000));
    }

    #[test]
    fn dcbf_matches_table1_at_low_thresholds() {
        // Paper: 768 KB at 500, 1.5 MB at 250, 384 KB at 1000.
        let d = |x| dcbf_bytes_per_rank(x, ACT_MAX_PER_BANK, 16);
        assert!(close(d(500), 768 * KB, 0.05), "{}", d(500));
        assert!(close(d(250), (1.5 * MB as f64) as u64, 0.05));
        assert!(close(d(1000), 384 * KB, 0.05));
    }

    #[test]
    fn ddr5_doubles_per_bank_schemes_only() {
        for scheme in Scheme::ALL {
            let ddr4 = scheme.bytes_per_rank(500, DDR4_BANKS_PER_RANK);
            let ddr5 = scheme.bytes_per_rank(500, DDR5_BANKS_PER_RANK);
            if scheme.scales_with_banks() {
                assert!(close(ddr5, ddr4 * 2, 0.01), "{}", scheme.name());
            } else if scheme == Scheme::Dcbf {
                // D-CBF counts rank-level activations: 2× the banks means 2×
                // ACT_max_rank, so its size grows too, but it is not a
                // per-bank table (Table 5 keeps it at 1.5 MB because the
                // filter is shared; our model conservatively scales it).
                assert!(ddr5 >= ddr4);
            } else {
                assert_eq!(ddr5, ddr4, "{}", scheme.name());
            }
        }
    }

    #[test]
    fn comet_matches_its_headline_figure() {
        // Our derivation (see the function docs): 74 KB per rank at
        // T_RH = 1000 — 16 banks × (4 KB sketch + 640 B RAT).
        let c = comet_bytes_per_rank(1000, 16);
        assert_eq!(c, 75_776);
        assert!(close(c, 74 * KB, 0.01), "{c}");
        // The sketch dominates, so the size is nearly threshold-flat.
        assert_eq!(comet_bytes_per_rank(500, 16), c);
        assert!(close(comet_bytes_per_rank(4800, 16), c, 0.05));
    }

    #[test]
    fn abacus_matches_its_headline_figure() {
        // Our derivation: 2720 shared entries × 41 bits ≈ 13.6 KB per rank
        // at T_RH = 1000 — more than 10× below Graphene's 170 KB.
        let a = abacus_bytes_per_rank(1000, ACT_MAX_PER_BANK, 16);
        assert!(close(a, 13_940, 0.01), "{a}");
        assert!(a * 10 < graphene_bytes_per_rank(1000, ACT_MAX_PER_BANK, 16));
        // Halving the threshold roughly doubles the table.
        let half = abacus_bytes_per_rank(500, ACT_MAX_PER_BANK, 16);
        assert!(close(half, 2 * a, 0.05), "{half}");
    }

    #[test]
    fn mint_is_threshold_flat_and_tiny() {
        let m = mint_bytes_per_rank(1000, 16);
        assert!(m < 100, "{m}");
        assert!(mint_bytes_per_rank(500, 16) <= m);
        assert!(mint_bytes_per_rank(4800, 16) < 100);
    }

    #[test]
    fn start_reserves_an_llc_fraction() {
        // Our derivation: 43,521 lines × 89 bits ≈ 473 KB per rank at
        // T_RH = 1000 — between 4 % and 8 % of an 8 MB LLC, the regime the
        // paper reports for its reserved way fraction.
        let s = start_bytes_per_rank(1000, ACT_MAX_PER_BANK, 16);
        assert!(close(s, 484_172, 0.01), "{s}");
        let llc = (8 * MB) as f64;
        let frac = s as f64 / llc;
        assert!((0.04..0.08).contains(&frac), "{frac}");
        // Inverse threshold scaling, like every exact scheme.
        assert!(start_bytes_per_rank(500, ACT_MAX_PER_BANK, 16) > s);
    }

    #[test]
    fn all_schemes_exceed_hydras_budget_at_500() {
        // The paper's motivating claim: every prior scheme blows the ≤64 KB
        // per-rank goal at T_RH = 500.
        for scheme in Scheme::ALL {
            let bytes = scheme.bytes_per_rank(500, DDR4_BANKS_PER_RANK);
            assert!(bytes > 64 * KB, "{} = {bytes}", scheme.name());
        }
    }
}
