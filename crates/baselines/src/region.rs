//! Layout of a per-row counter table stored in a reserved region of DRAM.
//!
//! Shared by CRA (whose whole design is such a table) and by tests. The
//! region occupies the top rows of the channel's banks, striped round-robin
//! across all (rank, bank) pairs — exactly like Hydra's RCT — so counter
//! traffic enjoys bank-level parallelism.

use hydra_types::addr::RowAddr;
use hydra_types::error::ConfigError;
use hydra_types::geometry::MemGeometry;

/// Maps counter indices to the DRAM lines/rows that store them.
///
/// # Example
///
/// ```
/// use hydra_baselines::CounterRegion;
/// use hydra_types::MemGeometry;
/// let geom = MemGeometry::tiny();
/// // One 1-byte counter per row of channel 0.
/// let region = CounterRegion::new(geom, 0, geom.rows_per_channel(), 1)?;
/// assert_eq!(region.reserved_rows(), 4);
/// # Ok::<(), hydra_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CounterRegion {
    geometry: MemGeometry,
    channel: u8,
    entries: u64,
    bytes_per_entry: u64,
    reserved_rows: u32,
    channel_banks: u32,
}

impl CounterRegion {
    /// Creates a region holding `entries` counters of `bytes_per_entry`
    /// bytes each in channel `channel`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the region does not fit within one bank or
    /// the parameters are degenerate.
    pub fn new(
        geometry: MemGeometry,
        channel: u8,
        entries: u64,
        bytes_per_entry: u64,
    ) -> Result<Self, ConfigError> {
        if channel >= geometry.channels() {
            return Err(ConfigError::new("channel out of range"));
        }
        if entries == 0 || bytes_per_entry == 0 {
            return Err(ConfigError::new("entries and entry size must be nonzero"));
        }
        let bytes = entries * bytes_per_entry;
        let reserved_rows = bytes.div_ceil(geometry.row_bytes()) as u32;
        let channel_banks =
            u32::from(geometry.ranks_per_channel()) * u32::from(geometry.banks_per_rank());
        if reserved_rows.div_ceil(channel_banks) > geometry.rows_per_bank() {
            return Err(ConfigError::new(format!(
                "counter region ({reserved_rows} rows) exceeds the channel"
            )));
        }
        Ok(CounterRegion {
            geometry,
            channel,
            entries,
            bytes_per_entry,
            reserved_rows,
            channel_banks,
        })
    }

    /// Number of counters.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// DRAM bytes occupied.
    pub fn dram_bytes(&self) -> u64 {
        self.entries * self.bytes_per_entry
    }

    /// Rows reserved for the table.
    pub fn reserved_rows(&self) -> u32 {
        self.reserved_rows
    }

    /// Counters per 64-byte line.
    pub fn entries_per_line(&self) -> u64 {
        (64 / self.bytes_per_entry).max(1)
    }

    /// The line (within the region) holding counter `index`.
    pub fn line_of_entry(&self, index: u64) -> u64 {
        index / self.entries_per_line()
    }

    /// The DRAM row storing counter `index`. Region row `r` lives in flat
    /// bank `r % banks` at depth `r / banks` from the top of that bank.
    ///
    /// # Panics
    ///
    /// Panics if `index >= entries()`.
    pub fn dram_row_of_entry(&self, index: u64) -> RowAddr {
        assert!(index < self.entries, "counter index out of range");
        let byte = index * self.bytes_per_entry;
        let region_row = (byte / self.geometry.row_bytes()) as u32;
        let flat_bank = region_row % self.channel_banks;
        let depth = region_row / self.channel_banks;
        RowAddr {
            channel: self.channel,
            rank: u8::try_from(flat_bank / u32::from(self.geometry.banks_per_rank()))
                .unwrap_or(u8::MAX),
            bank: u8::try_from(flat_bank % u32::from(self.geometry.banks_per_rank()))
                .unwrap_or(u8::MAX),
            row: self.geometry.rows_per_bank() - 1 - depth,
        }
    }

    /// True if `row` lies inside the region.
    pub fn contains(&self, row: RowAddr) -> bool {
        if row.channel != self.channel {
            return false;
        }
        let flat_bank =
            u32::from(row.rank) * u32::from(self.geometry.banks_per_rank()) + u32::from(row.bank);
        let used = self.reserved_rows / self.channel_banks
            + u32::from(flat_bank < self.reserved_rows % self.channel_banks);
        used > 0 && row.row >= self.geometry.rows_per_bank() - used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_stripes_top_rows_across_banks() {
        let geom = MemGeometry::tiny();
        let r = CounterRegion::new(geom, 0, 4096, 1).unwrap();
        assert_eq!(r.reserved_rows(), 4);
        for bank in 0..4u8 {
            assert!(r.contains(RowAddr::new(0, 0, bank, 1023)), "bank {bank}");
            assert!(!r.contains(RowAddr::new(0, 0, bank, 1022)));
        }
        assert_eq!(r.dram_row_of_entry(0), RowAddr::new(0, 0, 0, 1023));
        assert_eq!(r.dram_row_of_entry(1024), RowAddr::new(0, 0, 1, 1023));
        assert_eq!(r.dram_row_of_entry(4095), RowAddr::new(0, 0, 3, 1023));
    }

    #[test]
    fn entries_per_line_respects_entry_size() {
        let geom = MemGeometry::tiny();
        let r1 = CounterRegion::new(geom, 0, 1024, 1).unwrap();
        let r2 = CounterRegion::new(geom, 0, 1024, 2).unwrap();
        assert_eq!(r1.entries_per_line(), 64);
        assert_eq!(r2.entries_per_line(), 32);
        assert_eq!(r1.line_of_entry(63), 0);
        assert_eq!(r1.line_of_entry(64), 1);
    }

    #[test]
    fn rejects_oversized_region() {
        let geom = MemGeometry::tiny();
        // The whole channel is 4 MB; ask for 8 MB of counters.
        assert!(CounterRegion::new(geom, 0, 8 * 1024 * 1024, 1).is_err());
    }

    #[test]
    fn rejects_degenerate_params() {
        let geom = MemGeometry::tiny();
        assert!(CounterRegion::new(geom, 9, 10, 1).is_err());
        assert!(CounterRegion::new(geom, 0, 0, 1).is_err());
        assert!(CounterRegion::new(geom, 0, 10, 0).is_err());
    }

    #[test]
    fn entry_rows_stay_inside_the_geometry() {
        let geom = MemGeometry::tiny();
        let r = CounterRegion::new(geom, 0, 4096, 1).unwrap();
        // The rank/bank of every counter row comes out of a checked
        // narrowing; the results must always be real geometry coordinates.
        for index in [0, 1, 1023, 1024, 4095] {
            let row = r.dram_row_of_entry(index);
            assert!(row.rank < geom.ranks_per_channel());
            assert!(row.bank < geom.banks_per_rank());
            assert!(row.row < geom.rows_per_bank());
        }
    }
}
