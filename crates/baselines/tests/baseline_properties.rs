//! Property-based tests of the baseline trackers' defining invariants.

use hydra_baselines::{
    CounterTree, Cra, CraConfig, DualCountingBloomFilter, Graphene, GrapheneConfig, MisraGries,
    Ocpr, TwiceTable,
};
use hydra_types::{ActivationKind, ActivationTracker, MemGeometry, RowAddr};
use proptest::prelude::*;
use std::collections::HashMap;

/// Arbitrary activation sequences over a small row space.
fn sequences() -> impl Strategy<Value = Vec<RowAddr>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u32..8).prop_map(|r| RowAddr::new(0, 0, 0, r)),
            1 => (0u8..4, 0u32..256).prop_map(|(b, r)| RowAddr::new(0, 0, b, r)),
        ],
        1..1500,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Misra-Gries over-approximation (the property Graphene's guarantee
    /// rests on): estimate(x) >= true_count(x) for every x at all times.
    #[test]
    fn misra_gries_never_underestimates(seq in sequences(), capacity in 1usize..32) {
        let mut mg: MisraGries<RowAddr> = MisraGries::new(capacity);
        let mut exact: HashMap<RowAddr, u64> = HashMap::new();
        for row in seq {
            *exact.entry(row).or_insert(0) += 1;
            mg.increment(&row);
            let e = mg.estimate(&row);
            prop_assert!(e >= exact[&row], "estimate {e} < true {}", exact[&row]);
        }
    }

    /// A properly-provisioned Graphene never lets any row collect more than
    /// `threshold` activations without a mitigation.
    #[test]
    fn graphene_bounds_unmitigated(seq in sequences()) {
        let threshold = 24u32;
        let config = GrapheneConfig {
            geometry: MemGeometry::tiny(),
            channel: 0,
            threshold,
            entries_per_bank: 2048, // enough for every distinct row
        };
        let mut g = Graphene::new(config);
        let mut unmitigated: HashMap<RowAddr, u32> = HashMap::new();
        for (i, row) in seq.into_iter().enumerate() {
            let c = unmitigated.entry(row).or_insert(0);
            *c += 1;
            let resp = g.on_activation(row, i as u64, ActivationKind::Demand);
            for m in &resp.mitigations {
                unmitigated.insert(m.aggressor, 0);
            }
            prop_assert!(
                *unmitigated.get(&row).unwrap_or(&0) <= threshold,
                "row {row} escaped"
            );
        }
    }

    /// CRA counts exactly: its mitigation times match the OCPR oracle's.
    #[test]
    fn cra_matches_the_exact_oracle(seq in sequences()) {
        let geom = MemGeometry::tiny();
        let threshold = 16u32;
        let mut cra = Cra::new(CraConfig {
            geometry: geom,
            channel: 0,
            threshold,
            cache_bytes: 1024,
            cache_ways: 4,
        })
        .unwrap();
        let mut ocpr = Ocpr::new(geom, 0, threshold).unwrap();
        for (i, row) in seq.into_iter().enumerate() {
            // Skip CRA's own counter region (untracked by design).
            if row.row >= 1023 {
                continue;
            }
            let c = cra.on_activation(row, i as u64, ActivationKind::Demand);
            let o = ocpr.on_activation(row, i as u64, ActivationKind::Demand);
            prop_assert_eq!(
                c.mitigations.is_empty(),
                o.mitigations.is_empty(),
                "CRA and OCPR disagree at step {}",
                i
            );
        }
    }

    /// D-CBF estimates never undercount within an epoch.
    #[test]
    fn dcbf_never_undercounts(seq in sequences()) {
        let mut f = DualCountingBloomFilter::new(8192, 1000, u64::MAX / 2).unwrap();
        let mut exact: HashMap<RowAddr, u32> = HashMap::new();
        for (i, row) in seq.into_iter().enumerate() {
            *exact.entry(row).or_insert(0) += 1;
            f.on_activation(row, i as u64);
            prop_assert!(f.estimate(row) >= exact[&row]);
        }
    }

    /// CAT's range counters upper-bound every row in the range, so its
    /// mitigation can fire early but never late.
    #[test]
    fn cat_mitigation_never_late(rows in prop::collection::vec(0u32..64, 1..1000)) {
        let threshold = 20u32;
        let mut cat = CounterTree::new(64, 32, threshold, 8).unwrap();
        let mut unmitigated: HashMap<u32, u32> = HashMap::new();
        for row in rows {
            let c = unmitigated.entry(row).or_insert(0);
            *c += 1;
            if let Some((start, end)) = cat.on_activation(row) {
                // A CAT mitigation covers the fired leaf's whole range.
                for r in start..end {
                    unmitigated.insert(r, 0);
                }
            }
            prop_assert!(*unmitigated.get(&row).unwrap_or(&0) <= threshold);
        }
    }

    /// TWiCE with ample capacity mitigates hot rows like the oracle.
    #[test]
    fn twice_tracks_when_not_overflowed(hot_acts in 30u64..200) {
        let threshold = 25u32;
        let mut t = TwiceTable::new(4096, threshold, 1_000_000, 4).unwrap();
        let row = RowAddr::new(0, 0, 0, 1);
        let mut mitigations = 0u64;
        for i in 0..hot_acts {
            if t.on_activation(row, i) {
                mitigations += 1;
            }
        }
        prop_assert!(!t.overflowed());
        prop_assert_eq!(mitigations, hot_acts / u64::from(threshold));
    }
}
