//! Exporters: folded stacks, schema-versioned JSON, and the human table.

use crate::tree::{ProfileNode, ProfileTree};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag of the profile JSON export. Single-sourced here (enforced by
/// the `schema-single-source` lint rule): every other call site imports
/// this constant.
pub const PROFILE_SCHEMA_VERSION: &str = "hydra-profile-v1";

impl ProfileTree {
    /// Folded-stack lines consumable by flamegraph.pl / inferno: one line
    /// per node, `phase;child;leaf <self_nanos>`, in deterministic
    /// (depth-first, name-sorted) order. Values are **self** times, so
    /// flamegraph tooling reconstructs inclusive totals by summation —
    /// the folded sum equals [`total_nanos`](Self::total_nanos) whenever
    /// conservation holds.
    pub fn folded_lines(&self) -> Vec<String> {
        fn walk(path: &str, node: &ProfileNode, out: &mut Vec<String>) {
            out.push(format!("{path} {}", node.self_nanos()));
            for (phase, child) in &node.children {
                walk(&format!("{path};{phase}"), child, out);
            }
        }
        let mut out = Vec::new();
        for (phase, node) in &self.roots {
            walk(phase, node, &mut out);
        }
        out
    }

    /// The folded-stack export as one newline-terminated string.
    pub fn to_folded(&self) -> String {
        let mut out = self.folded_lines().join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The schema-versioned JSON export ([`PROFILE_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> String {
        self.to_json_with("")
    }

    /// Like [`to_json`](Self::to_json), with caller-supplied extra
    /// top-level members. `extra` must be empty or a comma-**terminated**
    /// list of JSON members (`"workload":"hammer","acts":100000,`) — the
    /// harness uses this to stamp run metadata into the same object
    /// without a second schema.
    pub fn to_json_with(&self, extra: &str) -> String {
        fn node_json(phase: &str, node: &ProfileNode, out: &mut String) {
            let _ = write!(
                out,
                "{{\"phase\":{},\"count\":{},\"total_nanos\":{},\"self_nanos\":{},\
                 \"min_nanos\":{},\"max_nanos\":{},\"children\":[",
                json_str(phase),
                node.count,
                node.total_nanos,
                node.self_nanos(),
                node.min_nanos,
                node.max_nanos
            );
            for (i, (name, child)) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node_json(name, child, out);
            }
            out.push_str("]}");
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":{},{extra}\"unbalanced_exits\":{},\"total_nanos\":{},\
             \"total_self_nanos\":{},\"roots\":[",
            json_str(PROFILE_SCHEMA_VERSION),
            self.unbalanced_exits,
            self.total_nanos(),
            self.total_self_nanos()
        );
        for (i, (phase, node)) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node_json(phase, node, &mut out);
        }
        out.push_str("]}");
        out.push('\n');
        out
    }

    /// A rendered self/cumulative table: one row per node, indented by
    /// depth, with count, cumulative and self time, self share of the
    /// grand total, and per-span min/mean/max.
    pub fn render_table(&self) -> String {
        let grand = self.total_nanos().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<38} {:>10} {:>12} {:>12} {:>7} {:>9} {:>9} {:>9}",
            "phase", "count", "total_us", "self_us", "self%", "min_ns", "mean_ns", "max_ns"
        );
        fn row(out: &mut String, depth: usize, phase: &str, node: &ProfileNode, grand: u64) {
            let label = format!("{}{}", "  ".repeat(depth), phase);
            let _ = writeln!(
                out,
                "{:<38} {:>10} {:>12.1} {:>12.1} {:>6.1}% {:>9} {:>9} {:>9}",
                label,
                node.count,
                node.total_nanos as f64 / 1_000.0,
                node.self_nanos() as f64 / 1_000.0,
                node.self_nanos() as f64 * 100.0 / grand as f64,
                node.min_nanos,
                node.mean_nanos(),
                node.max_nanos
            );
            for (name, child) in &node.children {
                row(out, depth + 1, name, child, grand);
            }
        }
        for (phase, node) in &self.roots {
            row(&mut out, 0, phase, node, grand);
        }
        if self.unbalanced_exits > 0 {
            let _ = writeln!(out, "!! unbalanced exits: {}", self.unbalanced_exits);
        }
        out
    }
}

/// Minimal JSON string encoder (the workspace has no serde).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed folded-stack export: semicolon-joined stack paths mapped to
/// self-time nanoseconds. The folded format is lossy by design (per-span
/// count/min/max do not survive), but **totals do**: parsing back what
/// [`ProfileTree::to_folded`] emitted preserves every per-stack self time
/// and therefore the grand total — the round-trip contract proptested in
/// `tests/merge_laws.rs`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FoldedProfile {
    /// `stack-path → self nanoseconds`.
    pub stacks: BTreeMap<String, u64>,
}

impl FoldedProfile {
    /// Parses folded-stack text (one `path value` pair per line, blank
    /// lines ignored). Duplicate paths accumulate, matching flamegraph
    /// semantics.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((path, value)) = line.rsplit_once(' ') else {
                return Err(format!("folded line {} has no value: {line:?}", lineno + 1));
            };
            let nanos: u64 = value
                .parse()
                .map_err(|e| format!("folded line {}: bad value {value:?}: {e}", lineno + 1))?;
            let path = path.trim_end();
            if path.is_empty() {
                return Err(format!("folded line {} has an empty path", lineno + 1));
            }
            *stacks.entry(path.to_string()).or_insert(0) += nanos;
        }
        Ok(FoldedProfile { stacks })
    }

    /// The folded view of a tree, computed directly (no text round trip).
    pub fn from_tree(tree: &ProfileTree) -> Self {
        fn walk(path: &str, node: &ProfileNode, stacks: &mut BTreeMap<String, u64>) {
            *stacks.entry(path.to_string()).or_insert(0) += node.self_nanos();
            for (phase, child) in &node.children {
                walk(&format!("{path};{phase}"), child, stacks);
            }
        }
        let mut stacks = BTreeMap::new();
        for (phase, node) in &tree.roots {
            walk(phase, node, &mut stacks);
        }
        FoldedProfile { stacks }
    }

    /// Sum of all self times — the grand total of the profile.
    pub fn total_nanos(&self) -> u64 {
        self.stacks.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{phase, SpanSink};
    use crate::tree::TreeProfiler;

    fn sample_tree() -> ProfileTree {
        let mut spans = TreeProfiler::new();
        spans.enter(phase::SIM);
        for _ in 0..3 {
            spans.enter(phase::ACTIVATE);
            spans.enter(phase::GCT_LOOKUP);
            spans.exit(phase::GCT_LOOKUP);
            spans.exit(phase::ACTIVATE);
        }
        spans.enter(phase::WINDOW_SNAPSHOT);
        spans.exit(phase::WINDOW_SNAPSHOT);
        spans.exit(phase::SIM);
        spans.tree()
    }

    #[test]
    fn folded_lines_carry_full_paths_and_parse_back() {
        let tree = sample_tree();
        let folded = tree.to_folded();
        assert!(folded.contains("sim;activate;gct_lookup "));
        assert!(folded.contains("sim;window_snapshot "));
        assert!(folded.ends_with('\n'));
        let parsed = FoldedProfile::parse(&folded).expect("own output parses");
        assert_eq!(parsed, FoldedProfile::from_tree(&tree));
        assert_eq!(parsed.total_nanos(), tree.total_nanos());
    }

    #[test]
    fn folded_parse_accumulates_duplicates_and_rejects_garbage() {
        let p = FoldedProfile::parse("a;b 10\na;b 5\n\n a;c 1 \n").expect("valid");
        assert_eq!(p.stacks["a;b"], 15);
        assert_eq!(p.total_nanos(), 16);
        assert!(FoldedProfile::parse("a;b\n").is_err(), "no value");
        assert!(FoldedProfile::parse("a;b ten\n").is_err(), "bad number");
        assert!(FoldedProfile::parse(" 12\n").is_err(), "empty path");
    }

    #[test]
    fn empty_tree_folds_to_nothing() {
        let tree = ProfileTree::new();
        assert_eq!(tree.to_folded(), "");
        let parsed = FoldedProfile::parse("").expect("empty ok");
        assert_eq!(parsed.total_nanos(), 0);
    }

    #[test]
    fn json_is_schema_stamped_and_structured() {
        let tree = sample_tree();
        let json = tree.to_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{PROFILE_SCHEMA_VERSION}\",")));
        assert!(json.contains("\"phase\":\"sim\""));
        assert!(json.contains("\"phase\":\"gct_lookup\""));
        assert!(json.contains("\"self_nanos\":"));
        assert!(json.contains("\"unbalanced_exits\":0"));
        assert!(json.trim_end().ends_with("]}"));
        // Extra members land right after the schema tag.
        let with = tree.to_json_with("\"workload\":\"hammer\",\"acts\":5,");
        assert!(with.contains("\"workload\":\"hammer\",\"acts\":5,\"unbalanced_exits\""));
    }

    #[test]
    fn json_escapes_phase_names() {
        // Library phases are clean idents, but the encoder must not trust
        // that: a quoted name must not break the document.
        let mut spans = TreeProfiler::new();
        spans.enter("odd\"phase");
        spans.exit("odd\"phase");
        let json = spans.tree().to_json();
        assert!(json.contains("\"phase\":\"odd\\\"phase\""));
    }

    #[test]
    fn table_lists_every_phase_with_shares() {
        let tree = sample_tree();
        let table = tree.render_table();
        assert!(table.contains("phase"));
        assert!(table.contains("self%"));
        assert!(table.contains("sim"));
        assert!(table.contains("  activate"));
        assert!(table.contains("    gct_lookup"));
        assert!(!table.contains("!! unbalanced"));
    }

    #[test]
    fn table_flags_unbalanced_runs() {
        let mut spans = TreeProfiler::new();
        spans.enter(phase::SIM);
        spans.exit(phase::SPILL);
        spans.exit(phase::SIM);
        let table = spans.tree().render_table();
        assert!(table.contains("!! unbalanced exits: 1"));
    }
}
