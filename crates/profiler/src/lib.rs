//! Hot-path profiling plane: span instrumentation behind a zero-cost seam.
//!
//! The tracker hot path carries two permanent instrumentation seams —
//! `hydra_telemetry::EventSink` (what happened) and the server's metrics
//! sink (how the daemon behaves). This crate adds the third: **where the
//! time goes**. A [`SpanSink`] receives `enter`/`exit` bracket calls around
//! named phases; the default [`NoopProfiler`] compiles them away (no clock
//! reads, no branches — a profiled-off tracker is proven bit-identical to a
//! bare one by the `span_identity` proptest in `hydra-core`), while a
//! [`TreeProfiler`] timestamps every bracket with the monotonic
//! [`Stopwatch`](hydra_types::deadline::Stopwatch) and aggregates into a
//! call tree with per-node count / total / self-time / min / max.
//!
//! # Span model
//!
//! Phases are `&'static str` names (the canonical vocabulary lives in
//! [`phase`]). Spans nest lexically: `enter("activate")` followed by
//! `enter("rcc_probe")` puts `rcc_probe` *under* `activate` in the tree,
//! and layers compose because a [`TreeProfiler`] is a cheaply cloneable
//! handle onto shared state — the sim loop brackets `sim`, hands a clone to
//! the tracker, and the tracker's inner-loop phases land under the sim's
//! open span. Each worker thread owns its own `TreeProfiler` (the handle is
//! deliberately `!Send`); threads export plain [`ProfileTree`] values and
//! merge them, which is order-insensitive (commutative + associative with
//! the empty tree as identity — proptested in `tests/merge_laws.rs`).
//!
//! # Conservation
//!
//! Self-time is *derived*: `self = total − Σ children.total`, saturating.
//! Because children are measured strictly inside their parent's bracket and
//! the clock is monotonic, `Σ children.total ≤ total` holds for every node;
//! [`ProfileTree::check_conservation`] verifies it (and that the subtree's
//! self-times telescope back to the root total) the same way window deltas
//! are conservation-checked in `hydra-sim`.
//!
//! # Exports
//!
//! Three ways out: [`ProfileTree::render_table`] (human self/cumulative
//! table), [`ProfileTree::to_folded`] (folded-stack lines —
//! `shard;activate;rcc_probe 1234` — consumable by flamegraph.pl and
//! inferno), and [`ProfileTree::to_json`] (schema-versioned
//! [`PROFILE_SCHEMA_VERSION`] JSON). Folded output round-trips through
//! [`FoldedProfile::parse`] with totals preserved.
//!
//! # Measuring the profiler itself
//!
//! Attribution is only honest if the instrument's own cost is known:
//! [`OverheadReport::measure`] wall-clocks the same deterministic work
//! profiled-off vs profiled-on and reports the overhead fraction, which the
//! `hydra profile` harness prints alongside every run.

#![forbid(unsafe_code)]

mod export;
mod overhead;
mod sink;
mod tree;

pub use export::{FoldedProfile, PROFILE_SCHEMA_VERSION};
pub use overhead::OverheadReport;
pub use sink::{phase, NoopProfiler, SpanSink};
pub use tree::{ProfileNode, ProfileTree, TreeProfiler};
