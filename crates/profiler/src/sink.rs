//! The [`SpanSink`] seam and the phase-name vocabulary.

/// A sink for phase brackets: `enter(phase)` opens a span, `exit(phase)`
/// closes it. Implementations decide what a bracket costs — the default
/// [`NoopProfiler`] makes it free.
///
/// Brackets must nest: every `exit` names the most recently entered,
/// still-open phase. A live profiler tolerates violations (it counts them
/// instead of panicking — see
/// [`ProfileTree::unbalanced_exits`](crate::ProfileTree)), but callers
/// should treat any nonzero count as an instrumentation bug.
pub trait SpanSink {
    /// Opens a span for `phase`, nested under the currently open span.
    fn enter(&mut self, phase: &'static str);

    /// Closes the span for `phase`.
    fn exit(&mut self, phase: &'static str);

    /// Whether brackets are currently observed. Generic code may hoist
    /// this to skip span bookkeeping wholesale; [`NoopProfiler`] returns
    /// false so hoisted paths fold away.
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        true
    }

    /// Marks the start of one sampled work unit (a tracker activation) and
    /// returns whether this unit should be bracketed. A hot path calls
    /// this once per unit and elides *all* of the unit's brackets — outer
    /// and inner — when it returns false, so a sampling sink can suppress
    /// units for the cost of one rotor tick and no clock reads. Phases
    /// outside a unit (driver spans, rare maintenance spans like
    /// `window_reset`) are bracketed unconditionally and never sampled.
    ///
    /// The default forwards to [`is_enabled`](Self::is_enabled): plain
    /// sinks record every unit, and [`NoopProfiler`] reports false so the
    /// per-unit branch folds away entirely.
    #[inline(always)]
    fn unit_tick(&mut self) -> bool {
        self.is_enabled()
    }
}

/// The profiled-off sink: every method is an empty `#[inline(always)]`
/// body, so a tracker instantiated with it monomorphizes to exactly the
/// bare tracker — no clock reads, no stack pushes, nothing. The
/// `span_identity` proptest in `hydra-core` proves the outputs are
/// bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProfiler;

impl SpanSink for NoopProfiler {
    #[inline(always)]
    fn enter(&mut self, _phase: &'static str) {}

    #[inline(always)]
    fn exit(&mut self, _phase: &'static str) {}

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

impl<S: SpanSink + ?Sized> SpanSink for &mut S {
    #[inline(always)]
    fn enter(&mut self, phase: &'static str) {
        (**self).enter(phase);
    }

    #[inline(always)]
    fn exit(&mut self, phase: &'static str) {
        (**self).exit(phase);
    }

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    #[inline(always)]
    fn unit_tick(&mut self) -> bool {
        (**self).unit_tick()
    }
}

/// The canonical phase vocabulary. Layers may invent additional names, but
/// everything the in-tree instrumentation emits is declared here so the
/// CLI, CI greps and docs share one spelling.
pub mod phase {
    /// One tracker activation, end to end (`hydra_core::Hydra`).
    pub const ACTIVATE: &str = "activate";
    /// GCT increment + aggregate-tracking bookkeeping.
    pub const GCT_LOOKUP: &str = "gct_lookup";
    /// RCC lookup, including the in-place hit path.
    pub const RCC_PROBE: &str = "rcc_probe";
    /// RCC insert + eviction write-back after a miss.
    pub const RCC_FILL: &str = "rcc_fill";
    /// RCT read from DRAM + parity verification (and the no-RCC RMW).
    pub const RCT_ACCESS: &str = "rct_access";
    /// GCT saturation spill: group init in the RCT.
    pub const SPILL: &str = "spill";
    /// Mitigation issue bookkeeping (request push + counters).
    pub const MITIGATION: &str = "mitigation";
    /// Tracking-window reset (SRAM clears + re-keying).
    pub const WINDOW_RESET: &str = "window_reset";
    /// One activation-level simulation run (`hydra_sim`).
    pub const SIM: &str = "sim";
    /// Per-window stats snapshot at a window boundary (`hydra_sim`).
    pub const WINDOW_SNAPSHOT: &str = "window_snapshot";
    /// One shard's worth of sharded-simulation work (`hydra_engine`).
    pub const SHARD: &str = "shard";
    /// One daemon shard ingest batch (`hydra_server`).
    pub const INGEST: &str = "ingest";
    /// One daemon shard stats publish (`hydra_server`).
    pub const PUBLISH: &str = "publish";

    /// The seven tracker inner-loop phases, in hot-path order. The CI
    /// `profile-smoke` job greps the folded export for every one of these.
    pub const TRACKER_PHASES: [&str; 7] = [
        GCT_LOOKUP,
        RCC_PROBE,
        RCC_FILL,
        RCT_ACCESS,
        SPILL,
        MITIGATION,
        WINDOW_RESET,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_reports_disabled_and_accepts_brackets() {
        let mut sink = NoopProfiler;
        assert!(!sink.is_enabled());
        sink.enter(phase::ACTIVATE);
        sink.exit(phase::ACTIVATE);
    }

    #[test]
    fn mut_ref_forwards() {
        struct Counting(u32);
        impl SpanSink for Counting {
            fn enter(&mut self, _p: &'static str) {
                self.0 += 1;
            }
            fn exit(&mut self, _p: &'static str) {
                self.0 += 1;
            }
        }
        fn drive<S: SpanSink>(mut sink: S) -> bool {
            sink.enter(phase::SIM);
            sink.exit(phase::SIM);
            sink.is_enabled()
        }
        let mut c = Counting(0);
        assert!(drive(&mut c));
        assert_eq!(c.0, 2);
    }

    #[test]
    fn tracker_phase_list_is_distinct() {
        let mut names = phase::TRACKER_PHASES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), phase::TRACKER_PHASES.len());
    }
}
