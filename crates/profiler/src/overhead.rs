//! The profiler measuring itself: instrumented-on vs instrumented-off.

use hydra_types::deadline::Stopwatch;

/// Wall-clock comparison of the same deterministic work run profiled-off
/// (`NoopProfiler`) and profiled-on (`TreeProfiler`). Attribution numbers
/// are only honest when the instrument's own cost is on the table, so the
/// `hydra profile` harness reports this with every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Best (minimum) wall-clock nanoseconds of the profiled-off runs.
    pub bare_nanos: u64,
    /// Best (minimum) wall-clock nanoseconds of the profiled-on runs.
    pub profiled_nanos: u64,
}

impl OverheadReport {
    /// Runs `bare` and `profiled` alternately `repeats` times each (bare
    /// first, so neither side systematically owns the warm cache) and
    /// keeps the minimum wall clock per side — the estimator least
    /// sensitive to scheduler noise, matching how the bench harness treats
    /// repeat cells. One untimed warmup pair runs before the timed loop so
    /// first-touch page faults and lazy allocations bill neither side.
    pub fn measure<B, P>(repeats: u32, mut bare: B, mut profiled: P) -> OverheadReport
    where
        B: FnMut(),
        P: FnMut(),
    {
        let repeats = repeats.max(1);
        bare();
        profiled();
        let mut best_bare = u64::MAX;
        let mut best_profiled = u64::MAX;
        for _ in 0..repeats {
            let sw = Stopwatch::start();
            bare();
            best_bare = best_bare.min(sw.elapsed_nanos());
            let sw = Stopwatch::start();
            profiled();
            best_profiled = best_profiled.min(sw.elapsed_nanos());
        }
        OverheadReport {
            bare_nanos: best_bare,
            profiled_nanos: best_profiled,
        }
    }

    /// Fractional slowdown of the profiled run: `(profiled − bare) / bare`,
    /// clamped at zero when the profiled run happened to be faster (noise).
    /// 0.10 means the instrumentation cost 10%.
    pub fn overhead_fraction(&self) -> f64 {
        if self.bare_nanos == 0 {
            return 0.0;
        }
        self.profiled_nanos.saturating_sub(self.bare_nanos) as f64 / self.bare_nanos as f64
    }

    /// The overhead as a percentage, for display.
    pub fn overhead_percent(&self) -> f64 {
        self.overhead_fraction() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_deliberate_slowdown() {
        let report = OverheadReport::measure(
            3,
            || {
                let _ = std::hint::black_box((0..10_000u64).sum::<u64>());
            },
            || {
                let _ = std::hint::black_box((0..10_000u64).sum::<u64>());
                std::thread::sleep(std::time::Duration::from_millis(2));
            },
        );
        assert!(report.profiled_nanos >= 2_000_000);
        assert!(report.overhead_fraction() > 0.0);
        assert!(report.overhead_percent() > 0.0);
    }

    #[test]
    fn noise_never_reports_negative_overhead() {
        let r = OverheadReport {
            bare_nanos: 100,
            profiled_nanos: 90,
        };
        assert_eq!(r.overhead_fraction(), 0.0);
        let zero = OverheadReport {
            bare_nanos: 0,
            profiled_nanos: 10,
        };
        assert_eq!(zero.overhead_fraction(), 0.0);
    }

    #[test]
    fn repeats_are_clamped_to_at_least_one() {
        let r = OverheadReport::measure(0, || {}, || {});
        assert_ne!(r.bare_nanos, u64::MAX);
        assert_ne!(r.profiled_nanos, u64::MAX);
    }
}
