//! The live call-tree profiler and its plain exported tree.

use crate::sink::SpanSink;
use hydra_types::deadline::Stopwatch;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A span-stack profiler aggregating brackets into a call tree.
///
/// The handle is a cheap clone onto shared per-thread state: the driving
/// layer keeps one clone to bracket outer phases (`sim`, `shard`) and hands
/// another to the tracker, whose inner-loop brackets nest under whatever
/// the driver has open. It is deliberately **not** `Send` — each worker
/// thread builds its own profiler and exports a plain [`ProfileTree`]
/// (which *is* `Send`) for cross-thread merging.
///
/// Timing uses nanosecond resolution via
/// [`Stopwatch::elapsed_nanos`](hydra_types::deadline::Stopwatch::elapsed_nanos):
/// tracker phases run tens of nanoseconds, which microsecond quantization
/// would collapse to zero and void the conservation check.
///
/// # Sampling
///
/// [`TreeProfiler::new`] records every span exhaustively, at a cost of two
/// clock reads per span — more than a tracker phase itself takes, so the
/// instrumented run is several times slower than the bare one. For
/// low-overhead attribution, [`TreeProfiler::sampled`] answers
/// [`SpanSink::unit_tick`] true for only every N-th work unit: the
/// instrumented hot path then elides all of a suppressed unit's brackets,
/// so a skipped unit costs one rotor tick — no clock read, no `RefCell`
/// borrow, no stack push. Shares *within* the hot path stay unbiased as
/// long as N is not resonant with the workload's periodicity (pick N
/// coprime to it). Phases bracketed outside unit ticks (driver spans like
/// `sim`, rare maintenance spans like `window_reset`) are always recorded
/// exhaustively and can never be sampled out of the report.
///
/// The sampler's rotor is **handle-local** (plain [`Cell`]s): the handle
/// asked for unit ticks must be the one bracketing those units' phases —
/// which the tracker seam guarantees, since the tracker owns exactly one
/// handle. Take clones at setup time, not mid-unit.
#[derive(Debug, Clone)]
pub struct TreeProfiler {
    inner: Rc<RefCell<Inner>>,
    /// Record 1 of every `sample_period` work units (1 = exhaustive).
    sample_period: u32,
    /// Work units seen since the last recorded one.
    rotor: Cell<u32>,
    /// Work units recorded in full. Incremented on the (cold) record path
    /// only, so the per-unit suppress tick touches just the rotor —
    /// skipped units are derived: each recording consumes exactly
    /// `sample_period` unit ticks, and the rotor holds the tail.
    recorded_units: Cell<u64>,
}

#[derive(Debug)]
struct Inner {
    clock: Stopwatch,
    nodes: Vec<NodeSlot>,
    roots: BTreeMap<&'static str, usize>,
    stack: Vec<Frame>,
    unbalanced_exits: u64,
}

#[derive(Debug)]
struct NodeSlot {
    phase: &'static str,
    count: u64,
    total_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
    children: BTreeMap<&'static str, usize>,
}

#[derive(Debug)]
struct Frame {
    node: usize,
    start_nanos: u64,
}

impl Inner {
    fn child_of(&mut self, parent: Option<usize>, phase: &'static str) -> usize {
        let map = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = map.get(phase) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(NodeSlot {
            phase,
            count: 0,
            total_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
            children: BTreeMap::new(),
        });
        match parent {
            Some(p) => self.nodes[p].children.insert(phase, idx),
            None => self.roots.insert(phase, idx),
        };
        idx
    }

    fn close_top(&mut self, now: u64) {
        if let Some(frame) = self.stack.pop() {
            let elapsed = now.saturating_sub(frame.start_nanos);
            let node = &mut self.nodes[frame.node];
            node.count += 1;
            node.total_nanos += elapsed;
            node.min_nanos = node.min_nanos.min(elapsed);
            node.max_nanos = node.max_nanos.max(elapsed);
        }
    }

    fn export_node(&self, idx: usize) -> ProfileNode {
        let slot = &self.nodes[idx];
        ProfileNode {
            count: slot.count,
            total_nanos: slot.total_nanos,
            min_nanos: if slot.count == 0 { 0 } else { slot.min_nanos },
            max_nanos: slot.max_nanos,
            children: slot
                .children
                .iter()
                .map(|(&phase, &child)| (phase.to_string(), self.export_node(child)))
                .collect(),
        }
    }
}

impl TreeProfiler {
    /// A fresh exhaustive profiler with an empty tree, clock anchored now.
    pub fn new() -> Self {
        TreeProfiler::sampled(1)
    }

    /// A profiler whose [`SpanSink::unit_tick`] records 1 of every
    /// `period` tracker work units and suppresses the rest without reading
    /// the clock. `period` 0 is treated as 1 (exhaustive). See the type
    /// docs for when sampling is unbiased.
    pub fn sampled(period: u32) -> Self {
        TreeProfiler {
            inner: Rc::new(RefCell::new(Inner {
                clock: Stopwatch::start(),
                nodes: Vec::new(),
                roots: BTreeMap::new(),
                stack: Vec::new(),
                unbalanced_exits: 0,
            })),
            sample_period: period.max(1),
            rotor: Cell::new(0),
            recorded_units: Cell::new(0),
        }
    }

    /// The configured sampling period (1 = exhaustive).
    pub fn sample_period(&self) -> u32 {
        self.sample_period
    }

    /// Work units the sampler skipped (0 on exhaustive profilers).
    /// Handle-local: ask the handle that takes the unit ticks.
    pub fn skipped_units(&self) -> u64 {
        if self.sample_period <= 1 {
            return 0;
        }
        self.recorded_units.get() * u64::from(self.sample_period - 1) + u64::from(self.rotor.get())
    }

    /// Snapshots the aggregated tree of **completed** spans. Open frames
    /// (entered, not yet exited) contribute nothing until they close, so
    /// export after the outermost bracket has exited.
    pub fn tree(&self) -> ProfileTree {
        let inner = self.inner.borrow();
        ProfileTree {
            roots: inner
                .roots
                .iter()
                .map(|(&phase, &idx)| (phase.to_string(), inner.export_node(idx)))
                .collect(),
            unbalanced_exits: inner.unbalanced_exits,
        }
    }

    /// Depth of the currently open span stack (diagnostics).
    pub fn open_depth(&self) -> usize {
        self.inner.borrow().stack.len()
    }

    /// Exits recorded without a matching open span (see
    /// [`SpanSink`] nesting contract).
    pub fn unbalanced_exits(&self) -> u64 {
        self.inner.borrow().unbalanced_exits
    }
}

impl Default for TreeProfiler {
    fn default() -> Self {
        TreeProfiler::new()
    }
}

impl SpanSink for TreeProfiler {
    #[inline(never)]
    fn enter(&mut self, phase: &'static str) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.clock.elapsed_nanos();
        let parent = inner.stack.last().map(|f| f.node);
        let node = inner.child_of(parent, phase);
        inner.stack.push(Frame {
            node,
            start_nanos: now,
        });
    }

    #[inline(never)]
    fn exit(&mut self, phase: &'static str) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.clock.elapsed_nanos();
        let matches = inner
            .stack
            .last()
            .is_some_and(|f| inner.nodes[f.node].phase == phase);
        if matches {
            inner.close_top(now);
            return;
        }
        drop(inner);
        self.recover_unbalanced(phase, now);
    }

    /// The sampling rotor: one `Cell` load/store per suppressed unit, one
    /// extra counter bump per recorded one. Inlined into the caller's hot
    /// loop; everything heavier stays behind [`enter`](SpanSink::enter).
    #[inline(always)]
    fn unit_tick(&mut self) -> bool {
        if self.sample_period > 1 {
            let rotor = self.rotor.get() + 1;
            if rotor < self.sample_period {
                self.rotor.set(rotor);
                return false;
            }
            self.rotor.set(0);
            self.recorded_units.set(self.recorded_units.get() + 1);
        }
        true
    }
}

impl TreeProfiler {
    #[cold]
    fn recover_unbalanced(&mut self, phase: &'static str, now: u64) {
        let mut inner = self.inner.borrow_mut();
        // Unbalanced: count it, then recover. If the phase is open deeper
        // in the stack, close down to (and including) it — attributing the
        // measured time to every abandoned frame keeps the clock conserved.
        // If it is not open at all, drop the exit on the floor.
        inner.unbalanced_exits += 1;
        let open_at = inner
            .stack
            .iter()
            .rposition(|f| inner.nodes[f.node].phase == phase);
        if let Some(pos) = open_at {
            while inner.stack.len() > pos {
                inner.close_top(now);
            }
        }
    }
}

/// One aggregated span node: how often the phase ran at this position in
/// the call tree, and for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Completed spans aggregated into this node.
    pub count: u64,
    /// Total nanoseconds across all completed spans.
    pub total_nanos: u64,
    /// Shortest single span (0 when `count == 0`).
    pub min_nanos: u64,
    /// Longest single span.
    pub max_nanos: u64,
    /// Child phases, keyed by phase name.
    pub children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    /// An empty node (merge identity at node granularity).
    pub fn empty() -> Self {
        ProfileNode {
            count: 0,
            total_nanos: 0,
            min_nanos: 0,
            max_nanos: 0,
            children: BTreeMap::new(),
        }
    }

    /// Self time: total minus the time attributed to children, saturating.
    /// Children are measured inside the parent's bracket, so saturation
    /// only engages on clock pathologies.
    pub fn self_nanos(&self) -> u64 {
        let child_total: u64 = self.children.values().map(|c| c.total_nanos).sum();
        self.total_nanos.saturating_sub(child_total)
    }

    /// Mean nanoseconds per span (0 when `count == 0`).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// Merges another node into `self`, child-wise recursive. The min of
    /// an empty node never wins: 0-count mins are treated as absent.
    pub fn merge(&mut self, other: &ProfileNode) {
        self.min_nanos = match (self.count, other.count) {
            (0, 0) => 0,
            (0, _) => other.min_nanos,
            (_, 0) => self.min_nanos,
            _ => self.min_nanos.min(other.min_nanos),
        };
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        for (phase, child) in &other.children {
            self.children
                .entry(phase.clone())
                .or_insert_with(ProfileNode::empty)
                .merge(child);
        }
    }
}

/// A plain, `Send`, aggregated call tree exported from a [`TreeProfiler`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileTree {
    /// Top-level phases, keyed by phase name.
    pub roots: BTreeMap<String, ProfileNode>,
    /// Exits recorded without a matching open span. Zero on any correctly
    /// instrumented run.
    pub unbalanced_exits: u64,
}

impl ProfileTree {
    /// The empty tree (the merge identity).
    pub fn new() -> Self {
        ProfileTree::default()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total nanoseconds across all root spans.
    pub fn total_nanos(&self) -> u64 {
        self.roots.values().map(|r| r.total_nanos).sum()
    }

    /// Sum of self-times over every node in the tree. Equal to
    /// [`total_nanos`](Self::total_nanos) whenever conservation holds
    /// (self-times telescope back to the root totals).
    pub fn total_self_nanos(&self) -> u64 {
        fn walk(node: &ProfileNode) -> u64 {
            node.self_nanos() + node.children.values().map(walk).sum::<u64>()
        }
        self.roots.values().map(walk).sum()
    }

    /// Merges another tree into `self`. Commutative and associative with
    /// the empty tree as identity (proptested in `tests/merge_laws.rs`),
    /// so per-worker trees can be folded in any completion order — the
    /// same contract `HydraStats::merge` gives `hydra-engine`.
    pub fn merge(&mut self, other: &ProfileTree) {
        self.unbalanced_exits += other.unbalanced_exits;
        for (phase, node) in &other.roots {
            self.roots
                .entry(phase.clone())
                .or_insert_with(ProfileNode::empty)
                .merge(node);
        }
    }

    /// Verifies the conservation identity on every node: the children's
    /// total time fits inside the parent's (within `tolerance`, a fraction
    /// of the parent total), and the subtree's self-times sum back to the
    /// node total. Nesting + a monotonic clock make both exact in this
    /// implementation; the tolerance is headroom for future samplers.
    ///
    /// # Errors
    ///
    /// Returns the path of the first violating node and the numbers that
    /// disagree.
    pub fn check_conservation(&self, tolerance: f64) -> Result<(), String> {
        fn walk(path: &str, node: &ProfileNode, tolerance: f64) -> Result<(), String> {
            let child_total: u64 = node.children.values().map(|c| c.total_nanos).sum();
            let slack = (node.total_nanos as f64 * tolerance).ceil() as u64;
            if child_total > node.total_nanos.saturating_add(slack) {
                return Err(format!(
                    "conservation violated at `{path}`: children total {child_total} ns \
                     exceeds span total {} ns (+{slack} ns tolerance)",
                    node.total_nanos
                ));
            }
            let self_sum = node.self_nanos()
                + node
                    .children
                    .values()
                    .map(|c| {
                        fn subtree_self(n: &ProfileNode) -> u64 {
                            n.self_nanos() + n.children.values().map(subtree_self).sum::<u64>()
                        }
                        subtree_self(c)
                    })
                    .sum::<u64>();
            let diff = self_sum.abs_diff(node.total_nanos);
            if diff > slack {
                return Err(format!(
                    "self-time telescope broken at `{path}`: Σ self = {self_sum} ns \
                     vs total {} ns (tolerance {slack} ns)",
                    node.total_nanos
                ));
            }
            for (phase, child) in &node.children {
                walk(&format!("{path};{phase}"), child, tolerance)?;
            }
            Ok(())
        }
        for (phase, node) in &self.roots {
            walk(phase, node, tolerance)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::phase;

    fn spin(mut spans: TreeProfiler, layout: &[(&'static str, &[&'static str])]) -> ProfileTree {
        for (outer, inners) in layout {
            spans.enter(outer);
            for inner in *inners {
                spans.enter(inner);
                spans.exit(inner);
            }
            spans.exit(outer);
        }
        spans.tree()
    }

    #[test]
    fn brackets_build_a_nested_tree() {
        let tree = spin(
            TreeProfiler::new(),
            &[
                (phase::ACTIVATE, &[phase::GCT_LOOKUP, phase::RCC_PROBE]),
                (phase::ACTIVATE, &[phase::GCT_LOOKUP]),
            ],
        );
        let act = &tree.roots[phase::ACTIVATE];
        assert_eq!(act.count, 2);
        assert_eq!(act.children[phase::GCT_LOOKUP].count, 2);
        assert_eq!(act.children[phase::RCC_PROBE].count, 1);
        assert_eq!(tree.unbalanced_exits, 0);
        tree.check_conservation(0.0).expect("nesting conserves");
    }

    #[test]
    fn clones_share_one_stack() {
        let mut driver = TreeProfiler::new();
        let mut tracker = driver.clone();
        driver.enter(phase::SIM);
        tracker.enter(phase::ACTIVATE);
        tracker.exit(phase::ACTIVATE);
        driver.exit(phase::SIM);
        let tree = driver.tree();
        assert_eq!(tree.roots[phase::SIM].children[phase::ACTIVATE].count, 1);
    }

    #[test]
    fn totals_are_monotone_in_nesting() {
        let mut spans = TreeProfiler::new();
        spans.enter(phase::ACTIVATE);
        spans.enter(phase::RCC_PROBE);
        std::thread::sleep(std::time::Duration::from_millis(2));
        spans.exit(phase::RCC_PROBE);
        spans.exit(phase::ACTIVATE);
        let tree = spans.tree();
        let act = &tree.roots[phase::ACTIVATE];
        let probe = &act.children[phase::RCC_PROBE];
        assert!(probe.total_nanos >= 2_000_000, "slept 2ms inside the span");
        assert!(act.total_nanos >= probe.total_nanos);
        assert!(act.min_nanos <= act.max_nanos);
        assert_eq!(act.self_nanos(), act.total_nanos - probe.total_nanos);
    }

    #[test]
    fn unmatched_exit_is_counted_not_fatal() {
        let mut spans = TreeProfiler::new();
        spans.enter(phase::ACTIVATE);
        spans.exit(phase::SPILL); // never opened
        assert_eq!(spans.unbalanced_exits(), 1);
        assert_eq!(spans.open_depth(), 1, "open frame survives a bogus exit");
        spans.exit(phase::ACTIVATE);
        let tree = spans.tree();
        assert_eq!(tree.roots[phase::ACTIVATE].count, 1);
        assert_eq!(tree.unbalanced_exits, 1);
    }

    #[test]
    fn mismatched_exit_closes_down_to_the_match() {
        let mut spans = TreeProfiler::new();
        spans.enter(phase::SIM);
        spans.enter(phase::ACTIVATE);
        spans.enter(phase::RCC_PROBE);
        spans.exit(phase::SIM); // abandons activate + rcc_probe
        assert_eq!(spans.open_depth(), 0);
        assert_eq!(spans.unbalanced_exits(), 1);
        let tree = spans.tree();
        // All three frames closed with measured (conserved) times.
        assert_eq!(tree.roots[phase::SIM].count, 1);
        tree.check_conservation(0.0).expect("recovery conserves");
    }

    #[test]
    fn open_spans_are_not_exported() {
        let mut spans = TreeProfiler::new();
        spans.enter(phase::SIM);
        let tree = spans.tree();
        assert_eq!(tree.roots.get(phase::SIM).map(|n| n.count), Some(0));
        assert_eq!(tree.total_nanos(), 0);
    }

    #[test]
    fn merge_folds_counts_and_extrema() {
        let a = spin(TreeProfiler::new(), &[(phase::ACTIVATE, &[phase::SPILL])]);
        let b = spin(
            TreeProfiler::new(),
            &[(phase::ACTIVATE, &[phase::MITIGATION])],
        );
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.roots[phase::ACTIVATE].count, 2);
        assert_eq!(m.roots[phase::ACTIVATE].children.len(), 2);
        assert_eq!(m.total_nanos(), a.total_nanos() + b.total_nanos());
        let mut m2 = b;
        m2.merge(&a);
        assert_eq!(m, m2, "merge is commutative on real trees");
    }

    #[test]
    fn empty_min_never_wins_a_merge() {
        let mut open_only = TreeProfiler::new();
        open_only.enter(phase::SIM);
        let zero_count = open_only.tree(); // sim node exists, count 0
        let real = spin(TreeProfiler::new(), &[(phase::SIM, &[])]);
        let mut m = zero_count.clone();
        m.merge(&real);
        assert_eq!(
            m.roots[phase::SIM].min_nanos,
            real.roots[phase::SIM].min_nanos
        );
        let mut m2 = real.clone();
        m2.merge(&zero_count);
        assert_eq!(m, m2);
    }

    /// One instrumented work unit driven the way the tracker drives it:
    /// tick first, bracket only when the tick says record.
    fn drive_unit(spans: &mut TreeProfiler, inner: &'static str) {
        if spans.unit_tick() {
            spans.enter(phase::ACTIVATE);
            spans.enter(inner);
            spans.exit(inner);
            spans.exit(phase::ACTIVATE);
        }
    }

    #[test]
    fn sampler_records_one_in_n_units_and_conserves() {
        let mut spans = TreeProfiler::sampled(4);
        for _ in 0..16 {
            drive_unit(&mut spans, phase::GCT_LOOKUP);
        }
        assert_eq!(spans.skipped_units(), 12);
        assert_eq!(spans.open_depth(), 0);
        let tree = spans.tree();
        assert_eq!(tree.roots[phase::ACTIVATE].count, 4);
        assert_eq!(
            tree.roots[phase::ACTIVATE].children[phase::GCT_LOOKUP].count,
            4
        );
        assert_eq!(tree.unbalanced_exits, 0);
        tree.check_conservation(0.0).expect("sampling conserves");
    }

    #[test]
    fn driver_spans_are_never_sampled_away() {
        let mut spans = TreeProfiler::sampled(1_000);
        spans.enter(phase::SIM);
        drive_unit(&mut spans, phase::RCC_PROBE); // suppressed: rotor 1 < 1000
        spans.enter(phase::WINDOW_SNAPSHOT);
        spans.exit(phase::WINDOW_SNAPSHOT);
        spans.exit(phase::SIM);
        assert_eq!(spans.skipped_units(), 1);
        let tree = spans.tree();
        let sim = &tree.roots[phase::SIM];
        assert_eq!(sim.count, 1);
        assert!(sim.children.contains_key(phase::WINDOW_SNAPSHOT));
        assert!(!sim.children.contains_key(phase::ACTIVATE));
        tree.check_conservation(0.0)
            .expect("partial trees conserve");
    }

    #[test]
    fn new_is_exhaustive() {
        let mut spans = TreeProfiler::new();
        assert_eq!(spans.sample_period(), 1);
        for _ in 0..8 {
            assert!(spans.unit_tick(), "period 1 records every unit");
            spans.enter(phase::ACTIVATE);
            spans.exit(phase::ACTIVATE);
        }
        assert_eq!(spans.skipped_units(), 0);
        assert_eq!(spans.tree().roots[phase::ACTIVATE].count, 8);
    }

    #[test]
    fn skipped_units_count_the_rotor_tail() {
        let mut spans = TreeProfiler::sampled(3);
        let mut recorded = 0;
        for _ in 0..8 {
            if spans.unit_tick() {
                recorded += 1;
            }
        }
        // 8 units at period 3: units 3 and 6 record, rotor holds 2 more.
        assert_eq!(recorded, 2);
        assert_eq!(spans.skipped_units(), 6);
    }

    #[test]
    fn self_time_telescopes_to_the_root() {
        let tree = spin(
            TreeProfiler::new(),
            &[(
                phase::ACTIVATE,
                &[phase::GCT_LOOKUP, phase::RCC_PROBE, phase::RCC_FILL],
            )],
        );
        assert_eq!(tree.total_self_nanos(), tree.total_nanos());
        tree.check_conservation(0.05).expect("5% acceptance bound");
    }
}
