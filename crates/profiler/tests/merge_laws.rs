//! The algebra of [`ProfileTree::merge`] — the reduction `hydra-engine`
//! leans on when folding per-worker profile trees — and the folded-stack
//! round trip.
//!
//! Mirrors `stats_merge.rs` in `hydra-core`: merge must be commutative and
//! associative with the empty tree as identity, so shard trees can be
//! combined in *any completion order*. The folded export must parse back
//! to exactly the per-stack self times it was rendered from, with the
//! grand total preserved bit for bit.

use hydra_profiler::{FoldedProfile, ProfileNode, ProfileTree};
use proptest::prelude::*;

const PHASES: [&str; 5] = ["activate", "rcc_probe", "spill", "sim", "window_reset"];

/// One synthetic span record: a path into the tree plus aggregated span
/// observations (`count` spans of `span_nanos` each).
type Record = (Vec<u8>, u16, u32);

/// Inserts a record, creating intermediate nodes as needed. Maintains the
/// exported-tree invariants: `count == 0 ⇒ min == 0`, `min ≤ max`, and
/// totals consistent with the per-span value.
fn insert(tree: &mut ProfileTree, record: &Record) {
    let (path, count, span_nanos) = record;
    let count = u64::from(*count) + 1;
    let span = u64::from(*span_nanos);
    let mut segments = path.iter().map(|p| PHASES[*p as usize % PHASES.len()]);
    let Some(first) = segments.next() else { return };
    let mut node = tree
        .roots
        .entry(first.to_string())
        .or_insert_with(ProfileNode::empty);
    for seg in segments {
        node = node
            .children
            .entry(seg.to_string())
            .or_insert_with(ProfileNode::empty);
    }
    node.min_nanos = if node.count == 0 {
        span
    } else {
        node.min_nanos.min(span)
    };
    node.count += count;
    node.total_nanos += span * count;
    node.max_nanos = node.max_nanos.max(span);
}

fn tree_strategy() -> impl Strategy<Value = ProfileTree> {
    prop::collection::vec(
        (
            prop::collection::vec(0u8..10, 1..4),
            0u16..50,
            0u32..1_000_000,
        ),
        0..12,
    )
    .prop_map(|records| {
        let mut tree = ProfileTree::new();
        for r in &records {
            insert(&mut tree, r);
        }
        tree
    })
}

fn merged(a: &ProfileTree, b: &ProfileTree) -> ProfileTree {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) == merge(b, a): worker completion order is irrelevant.
    #[test]
    fn merge_is_commutative(a in tree_strategy(), b in tree_strategy()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)): trees fold in any
    /// grouping, e.g. as a reduction tree over shards.
    #[test]
    fn merge_is_associative(
        a in tree_strategy(),
        b in tree_strategy(),
        c in tree_strategy(),
    ) {
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    /// The empty tree is the identity element on both sides.
    #[test]
    fn empty_is_the_merge_identity(a in tree_strategy()) {
        prop_assert_eq!(merged(&a, &ProfileTree::new()), a.clone());
        prop_assert_eq!(merged(&ProfileTree::new(), &a), a);
    }

    /// Merging is counter-exact: totals and counts sum.
    #[test]
    fn merge_sums_totals(a in tree_strategy(), b in tree_strategy()) {
        let m = merged(&a, &b);
        prop_assert_eq!(m.total_nanos(), a.total_nanos() + b.total_nanos());
        let count = |t: &ProfileTree| -> u64 {
            fn walk(n: &ProfileNode) -> u64 {
                n.count + n.children.values().map(walk).sum::<u64>()
            }
            t.roots.values().map(walk).sum()
        };
        prop_assert_eq!(count(&m), count(&a) + count(&b));
    }

    /// Folded round trip: parsing the rendered folded output recovers the
    /// exact per-stack self times (and therefore the exact total).
    #[test]
    fn folded_round_trip_preserves_totals(a in tree_strategy()) {
        let text = a.to_folded();
        let parsed = FoldedProfile::parse(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&parsed, &FoldedProfile::from_tree(&a));
        prop_assert_eq!(parsed.total_nanos(), a.total_self_nanos());
    }
}
