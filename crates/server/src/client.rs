//! Client side of the serve protocol: a well-behaved [`Client`] with
//! exponential backoff on `Busy`, plus [`run_load`] — an adversarial
//! load generator that saturates a daemon with a mix of honest tenants,
//! a slow-reading subscriber, a frame corruptor driven by the wire-level
//! [`FaultPlan`] extension, a reconnect storm that tears connections
//! mid-frame, and (optionally) a tenant that asks its own shard to
//! panic.
//!
//! The load generator is the other half of the chaos gate: every honest
//! tenant locally replays its own batches through an identical
//! [`TenantPipeline`] and reports the
//! expected output digest, so a test (or the CI smoke job) can prove the
//! daemon computed exactly the same thing despite the adversaries —
//! zero cross-tenant interference, zero lost events.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hydra_faults::{FaultPlan, WireInjector};
use hydra_forensics::attribution::pack_row;
use hydra_types::{Deadline, RowAddr};

use crate::frame::{DecodeEvent, Decoder, Frame};
use crate::session::geometry_by_name;
use crate::stats::StatsReading;
use crate::tenant::TenantPipeline;

/// How long [`Client::recv_event`] polls between reads.
const POLL: Duration = Duration::from_millis(10);

/// Per-reply deadline for well-behaved traffic.
const REPLY_TIMEOUT: Duration = Duration::from_secs(5);

/// Busy-retry attempts before a client gives up.
const MAX_BUSY_RETRIES: u32 = 12;

/// A protocol client over one Unix-socket connection.
pub struct Client {
    stream: UnixStream,
    decoder: Decoder,
    injector: Option<WireInjector>,
    /// How long to wait for each reply before giving up. Defaults to a
    /// patient five seconds; adversarial clients that expect their own
    /// frames to be swallowed shorten it.
    pub reply_timeout: Duration,
    /// `Busy` replies absorbed (each one retried with backoff).
    pub busy_retries: u64,
    /// `Reject` frames received.
    pub rejects_seen: u64,
}

impl Client {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration I/O errors.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(POLL))?;
        Ok(Client {
            stream,
            decoder: Decoder::new(),
            injector: None,
            reply_timeout: REPLY_TIMEOUT,
            busy_retries: 0,
            rejects_seen: 0,
        })
    }

    /// Routes every subsequent send through a wire-fault injector
    /// (bit flips, truncation, duplication, delay).
    pub fn with_injector(mut self, injector: WireInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Sends one frame, applying wire faults when an injector is armed.
    ///
    /// # Errors
    ///
    /// Propagates write errors (daemon gone).
    pub fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        let bytes = frame.encode();
        match self.injector.as_mut() {
            None => self.stream.write_all(&bytes),
            Some(injector) => {
                let delivery = injector.deliver(&bytes);
                if delivery.delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(delivery.delay_ms));
                }
                for chunk in &delivery.frames {
                    self.stream.write_all(chunk)?;
                }
                Ok(())
            }
        }
    }

    /// Receives the next decode event, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// `Err("timeout")` when nothing arrived, `Err("eof")` when the
    /// daemon closed the connection.
    pub fn recv_event(&mut self, timeout: Duration) -> Result<DecodeEvent, String> {
        let deadline = Deadline::after(timeout);
        let mut buf = [0u8; 4096];
        loop {
            if let Some(event) = self.decoder.next_event() {
                return Ok(event);
            }
            if deadline.expired() {
                return Err("timeout".to_string());
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Err("eof".to_string()),
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => return Err(format!("read error: {e}")),
            }
        }
    }

    /// Sends `frame` and waits for its reply, absorbing `Busy` with
    /// exponential backoff (resending the same frame) and counting
    /// stray `Reject`s along the way.
    ///
    /// # Errors
    ///
    /// `Err` on I/O failure, reply timeout, retry exhaustion, or when
    /// `accept_reject` is false and the daemon rejected the frame.
    fn request(&mut self, frame: &Frame, accept_reject: bool) -> Result<Frame, String> {
        let mut attempt: u32 = 0;
        let reply_timeout = self.reply_timeout;
        loop {
            self.send(frame).map_err(|e| format!("send: {e}"))?;
            loop {
                match self.recv_event(reply_timeout)? {
                    DecodeEvent::Frame(Frame::Busy { retry_after_ms }) => {
                        if attempt >= MAX_BUSY_RETRIES {
                            return Err("busy retries exhausted".to_string());
                        }
                        self.busy_retries += 1;
                        let backoff = u64::from(retry_after_ms) << attempt.min(6);
                        std::thread::sleep(Duration::from_millis(backoff.min(1000)));
                        attempt += 1;
                        break; // resend the same frame
                    }
                    DecodeEvent::Frame(Frame::Reject { reason }) => {
                        self.rejects_seen += 1;
                        if accept_reject {
                            return Ok(Frame::Reject { reason });
                        }
                        return Err(format!("rejected: {}", reason.as_str()));
                    }
                    DecodeEvent::Frame(other) => return Ok(other),
                    DecodeEvent::Rejected { .. } => {
                        // Corrupted daemon->client bytes never happen in
                        // these tests; tolerate and keep waiting.
                    }
                }
            }
        }
    }

    /// Registers this connection under `tenant`.
    ///
    /// # Errors
    ///
    /// `Err` if the daemon rejected or shed the registration.
    pub fn hello(&mut self, tenant: &str) -> Result<(), String> {
        match self.request(
            &Frame::Hello {
                tenant: tenant.to_string(),
            },
            false,
        )? {
            Frame::Ack { .. } => Ok(()),
            other => Err(format!("unexpected hello reply: {other:?}")),
        }
    }

    /// Sends one batch and waits for its `Ack`, retrying through `Busy`.
    ///
    /// # Errors
    ///
    /// `Err` on rejection, timeout, or I/O failure.
    pub fn send_batch(&mut self, seq: u64, rows: &[u64]) -> Result<u32, String> {
        match self.request(
            &Frame::Batch {
                seq,
                rows: rows.to_vec(),
            },
            false,
        )? {
            Frame::Ack { seq: got, accepted } if got == seq => Ok(accepted),
            other => Err(format!("unexpected batch reply: {other:?}")),
        }
    }

    /// Best-effort batch send for adversarial clients: `Ok(true)` on
    /// ack, `Ok(false)` on rejection (expected under fault injection).
    ///
    /// # Errors
    ///
    /// `Err` only on I/O failure or timeout with nothing decodable.
    pub fn send_batch_lossy(&mut self, seq: u64, rows: &[u64]) -> Result<bool, String> {
        match self.request(
            &Frame::Batch {
                seq,
                rows: rows.to_vec(),
            },
            true,
        )? {
            Frame::Ack { seq: got, .. } => Ok(got == seq),
            _ => Ok(false),
        }
    }

    /// Writes the first half of `frame`'s encoding and hangs up,
    /// consuming the client — the "killed mid-batch" adversary. The
    /// daemon must account the torn bytes as truncated and carry on.
    pub fn abandon_mid_frame(mut self, frame: &Frame) {
        let bytes = frame.encode();
        let _ = self.stream.write_all(&bytes[..bytes.len() / 2]);
        // Dropping the stream closes the connection with the frame torn.
    }

    /// Subscribes this connection to the incident feed.
    ///
    /// # Errors
    ///
    /// `Err` if the daemon did not acknowledge the subscription.
    pub fn subscribe(&mut self) -> Result<(), String> {
        match self.request(&Frame::Subscribe, false)? {
            Frame::Ack { .. } => Ok(()),
            other => Err(format!("unexpected subscribe reply: {other:?}")),
        }
    }

    /// Asks the daemon to panic this tenant's shard (chaos testing).
    ///
    /// # Errors
    ///
    /// `Err` if the daemon refused (not running with crash frames
    /// enabled) or the ack never arrived.
    pub fn crash_shard(&mut self) -> Result<(), String> {
        match self.request(&Frame::Crash, true)? {
            Frame::Ack { .. } => Ok(()),
            Frame::Reject { reason } => Err(format!("crash refused: {}", reason.as_str())),
            other => Err(format!("unexpected crash reply: {other:?}")),
        }
    }

    /// Requests a live stats snapshot and returns its raw JSON payload.
    ///
    /// Works on any connection: on a subscriber, incident frames that
    /// arrive before the snapshot are simply skipped (the daemon routes
    /// the reply through the subscriber queue, so ordering is FIFO but
    /// interleaved with the feed).
    ///
    /// # Errors
    ///
    /// `Err` on I/O failure, timeout, or an explicit daemon rejection.
    pub fn stats_json(&mut self) -> Result<String, String> {
        self.send(&Frame::StatsRequest)
            .map_err(|e| format!("send: {e}"))?;
        let deadline = Deadline::after(self.reply_timeout);
        loop {
            match self.recv_event(deadline.remaining())? {
                DecodeEvent::Frame(Frame::StatsSnapshot { json }) => return Ok(json),
                DecodeEvent::Frame(Frame::Reject { reason }) => {
                    self.rejects_seen += 1;
                    return Err(format!("stats rejected: {}", reason.as_str()));
                }
                DecodeEvent::Frame(_) | DecodeEvent::Rejected { .. } => {}
            }
        }
    }

    /// Requests a live stats snapshot, parsed and schema-checked.
    ///
    /// # Errors
    ///
    /// As [`stats_json`](Self::stats_json), plus payload parse errors.
    pub fn stats(&mut self) -> Result<StatsReading, String> {
        StatsReading::parse(&self.stats_json()?)
    }

    /// Requests a graceful daemon drain.
    ///
    /// # Errors
    ///
    /// `Err` if the drain was not acknowledged.
    pub fn drain(&mut self) -> Result<(), String> {
        match self.request(&Frame::Drain, false)? {
            Frame::Ack { .. } => Ok(()),
            other => Err(format!("unexpected drain reply: {other:?}")),
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon socket to target.
    pub socket_path: PathBuf,
    /// Geometry name — must match the daemon's so local digests agree.
    pub geometry_name: String,
    /// Row-hammer threshold — must match the daemon's.
    pub t_rh: u32,
    /// Well-behaved tenants to run.
    pub tenants: usize,
    /// Batches per well-behaved tenant.
    pub batches_per_tenant: u64,
    /// Rows per batch.
    pub rows_per_batch: usize,
    /// Run the frame-corrupting adversary.
    pub corruptor: bool,
    /// Wire fault rate for the corruptor (per fault class).
    pub fault_rate: f64,
    /// Seed for the corruptor's deterministic fault stream.
    pub seed: u64,
    /// Run the slow-reading subscriber adversary.
    pub slow_reader: bool,
    /// Run the reconnect storm (connections torn mid-frame).
    pub reconnect_storm: bool,
    /// Run the tenant that crashes its own shard (daemon must allow
    /// crash frames).
    pub crash_tenant: bool,
    /// Send `Drain` when the mix completes, shutting the daemon down.
    pub drain: bool,
}

impl LoadConfig {
    /// The CI smoke preset: three honest tenants plus every adversary,
    /// ending in a drain.
    pub fn smoke(socket_path: impl Into<PathBuf>) -> Self {
        LoadConfig {
            socket_path: socket_path.into(),
            geometry_name: "tiny".to_string(),
            t_rh: 64,
            tenants: 3,
            batches_per_tenant: 24,
            rows_per_batch: 192,
            corruptor: true,
            fault_rate: 0.2,
            seed: 7,
            slow_reader: true,
            reconnect_storm: true,
            crash_tenant: true,
            drain: true,
        }
    }
}

/// One honest tenant's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLoadResult {
    /// Tenant name.
    pub tenant: String,
    /// Batches sent.
    pub sent: u64,
    /// Batches acknowledged by the daemon.
    pub acked: u64,
    /// `Busy` replies absorbed.
    pub busy_retries: u64,
    /// Digest of the locally computed expected output
    /// ([`crate::tenant::TenantSummary::digest`]).
    pub expected_digest: u64,
}

/// Aggregated load run outcome.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Per-honest-tenant results.
    pub tenants: Vec<TenantLoadResult>,
    /// Honest batches that were never acknowledged — the chaos gate
    /// requires this to be zero.
    pub lost_batches: u64,
    /// `Reject` frames the corruptor collected (must be nonzero when
    /// the corruptor ran with a nonzero fault rate).
    pub corruptor_rejects: u64,
    /// Corruptor batches that still made it through cleanly.
    pub corruptor_acked: u64,
    /// Incident frames the subscriber received.
    pub incidents_seen: u64,
    /// Connections the reconnect storm opened.
    pub reconnects: u64,
    /// Whether the crash tenant got its shard panic acknowledged.
    pub crash_acked: bool,
}

impl LoadReport {
    /// Grep-friendly `load.<name>=<value>` lines for the CI smoke job.
    pub fn to_kv_lines(&self) -> String {
        let mut out = String::new();
        let acked: u64 = self.tenants.iter().map(|t| t.acked).sum();
        let busy: u64 = self.tenants.iter().map(|t| t.busy_retries).sum();
        out.push_str(&format!("load.tenants={}\n", self.tenants.len()));
        out.push_str(&format!("load.acked_batches={acked}\n"));
        out.push_str(&format!("load.lost_batches={}\n", self.lost_batches));
        out.push_str(&format!("load.busy_retries={busy}\n"));
        out.push_str(&format!(
            "load.corruptor_rejects={}\n",
            self.corruptor_rejects
        ));
        out.push_str(&format!("load.corruptor_acked={}\n", self.corruptor_acked));
        out.push_str(&format!("load.incidents_seen={}\n", self.incidents_seen));
        out.push_str(&format!("load.reconnects={}\n", self.reconnects));
        out.push_str(&format!("load.crash_acked={}\n", self.crash_acked));
        for t in &self.tenants {
            out.push_str(&format!(
                "load.tenant name={} sent={} acked={} digest={:016x}\n",
                t.tenant, t.sent, t.acked, t.expected_digest
            ));
        }
        out
    }
}

/// Deterministic per-tenant batch generator: each honest tenant hammers
/// a pair of aggressor rows of its own, hard enough to cross the
/// daemon's mitigation threshold and produce forensics incidents.
pub fn tenant_batch(tenant_index: usize, seq: u64, rows_per_batch: usize) -> Vec<u64> {
    let bank = (tenant_index % 4) as u8;
    let base = 64 + (tenant_index as u32) * 8;
    (0..rows_per_batch)
        .map(|i| {
            let row = base + ((i as u32 + seq as u32) % 2) * 2;
            pack_row(RowAddr::new(0, 0, bank, row))
        })
        .collect()
}

fn honest_tenant(config: &LoadConfig, index: usize) -> Result<TenantLoadResult, String> {
    let tenant = format!("tenant-{index}");
    let geometry =
        geometry_by_name(&config.geometry_name).ok_or("unknown geometry in load config")?;
    let mut local = TenantPipeline::new(&tenant, geometry, config.t_rh)?;
    let mut client = Client::connect(&config.socket_path).map_err(|e| format!("connect: {e}"))?;
    client.hello(&tenant)?;
    let mut sent = 0;
    let mut acked = 0;
    for seq in 1..=config.batches_per_tenant {
        let rows = tenant_batch(index, seq, config.rows_per_batch);
        local
            .apply_batch(seq, &rows)
            .map_err(|r| format!("local pipeline rejected: {}", r.as_str()))?;
        sent += 1;
        client.send_batch(seq, &rows)?;
        acked += 1;
    }
    Ok(TenantLoadResult {
        tenant,
        sent,
        acked,
        busy_retries: client.busy_retries,
        expected_digest: local.finish().digest(),
    })
}

fn corruptor(config: &LoadConfig) -> Result<(u64, u64), String> {
    let plan = FaultPlan::uniform_wire(config.fault_rate, config.seed);
    let mut client = Client::connect(&config.socket_path).map_err(|e| format!("connect: {e}"))?;
    // Register cleanly so the tenant exists, then arm the injector.
    client.hello("corruptor")?;
    let mut client = client.with_injector(WireInjector::new(&plan));
    // Short patience: a truncated frame gets no reply until the next
    // send resynchronizes the daemon's decoder, so waiting the full
    // well-behaved timeout would stall the whole mix.
    client.reply_timeout = Duration::from_millis(250);
    let mut acked = 0;
    for seq in 1..=config.batches_per_tenant {
        let rows = tenant_batch(9, seq, config.rows_per_batch.min(64));
        // Few attempts, short patience: corrupted frames may simply be
        // swallowed until the next frame resyncs the decoder.
        for _ in 0..3 {
            match client.send_batch_lossy(seq, &rows) {
                Ok(true) => {
                    acked += 1;
                    break;
                }
                Ok(false) => continue,
                Err(e) if e == "timeout" => continue,
                Err(e) => return Err(format!("corruptor: {e}")),
            }
        }
    }
    Ok((client.rejects_seen, acked))
}

fn reconnect_storm(config: &LoadConfig) -> Result<u64, String> {
    let mut reconnects = 0;
    for round in 0..10u64 {
        let Ok(mut client) = Client::connect(&config.socket_path) else {
            continue;
        };
        reconnects += 1;
        if client.hello("storm").is_err() {
            continue;
        }
        let rows = tenant_batch(11, round + 1, 32);
        if round % 2 == 0 {
            let _ = client.send_batch(round + 1, &rows);
        } else {
            // Tear the connection mid-frame: the daemon must account it
            // as truncated and carry on.
            client.abandon_mid_frame(&Frame::Batch {
                seq: round + 1,
                rows,
            });
        }
    }
    Ok(reconnects)
}

fn subscriber(socket_path: &Path, done: &AtomicBool, slow: bool) -> Result<u64, String> {
    let mut client = Client::connect(socket_path).map_err(|e| format!("connect: {e}"))?;
    client.subscribe()?;
    let mut seen = 0;
    loop {
        match client.recv_event(Duration::from_millis(200)) {
            Ok(DecodeEvent::Frame(Frame::Incident { .. })) => {
                seen += 1;
                if slow {
                    // Deliberately lag so the daemon's bounded buffer
                    // has to evict (accounted as subscriber_dropped).
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            Ok(_) => {}
            Err(e) if e == "eof" => break,
            Err(_) => {
                if done.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    Ok(seen)
}

fn crash_tenant(config: &LoadConfig) -> Result<bool, String> {
    let mut client = Client::connect(&config.socket_path).map_err(|e| format!("connect: {e}"))?;
    client.hello("crasher")?;
    let rows = tenant_batch(13, 1, 64);
    client.send_batch(1, &rows)?;
    client.crash_shard()?;
    // The shard dies asynchronously; subsequent batches must be turned
    // away (not hung, not crossed into another tenant).
    let mut rejected = false;
    for seq in 2..=6u64 {
        match client.send_batch_lossy(seq, &rows) {
            Ok(false) => {
                rejected = true;
                break;
            }
            Ok(true) => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => {
                rejected = true; // connection-level failure also counts
                break;
            }
        }
    }
    if !rejected {
        return Err("crashed shard kept accepting batches".to_string());
    }
    Ok(true)
}

/// Runs the full adversarial mix against a live daemon.
///
/// # Errors
///
/// Returns the first failure that violates the chaos gate: an honest
/// tenant losing a batch, the corruptor seeing zero rejects at a nonzero
/// fault rate, or a crashed shard continuing to accept work.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, String> {
    let done = Arc::new(AtomicBool::new(false));
    let mut report = LoadReport::default();

    let sub_join = if config.slow_reader {
        let path = config.socket_path.clone();
        let done = Arc::clone(&done);
        std::thread::Builder::new()
            .name("load-subscriber".to_string())
            .spawn(move || subscriber(&path, &done, true))
            .ok()
    } else {
        None
    };

    let mut honest_joins = Vec::new();
    for index in 0..config.tenants {
        let cfg = config.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("load-tenant-{index}"))
            .spawn(move || honest_tenant(&cfg, index));
        honest_joins.push(spawned.map_err(|e| format!("spawn: {e}"))?);
    }
    let corruptor_join = if config.corruptor {
        let cfg = config.clone();
        std::thread::Builder::new()
            .name("load-corruptor".to_string())
            .spawn(move || corruptor(&cfg))
            .ok()
    } else {
        None
    };
    let storm_join = if config.reconnect_storm {
        let cfg = config.clone();
        std::thread::Builder::new()
            .name("load-storm".to_string())
            .spawn(move || reconnect_storm(&cfg))
            .ok()
    } else {
        None
    };
    let crash_join = if config.crash_tenant {
        let cfg = config.clone();
        std::thread::Builder::new()
            .name("load-crasher".to_string())
            .spawn(move || crash_tenant(&cfg))
            .ok()
    } else {
        None
    };

    for join in honest_joins {
        let result = join
            .join()
            .map_err(|_| "honest tenant thread panicked".to_string())??;
        report.lost_batches += result.sent - result.acked;
        report.tenants.push(result);
    }
    if let Some(join) = corruptor_join {
        let (rejects, acked) = join
            .join()
            .map_err(|_| "corruptor thread panicked".to_string())??;
        report.corruptor_rejects = rejects;
        report.corruptor_acked = acked;
    }
    if let Some(join) = storm_join {
        report.reconnects = join
            .join()
            .map_err(|_| "storm thread panicked".to_string())??;
    }
    if let Some(join) = crash_join {
        report.crash_acked = join
            .join()
            .map_err(|_| "crash-tenant thread panicked".to_string())??;
    }

    done.store(true, Ordering::SeqCst);
    if config.drain {
        let mut client =
            Client::connect(&config.socket_path).map_err(|e| format!("connect: {e}"))?;
        client.drain()?;
    }
    if let Some(join) = sub_join {
        report.incidents_seen = join
            .join()
            .map_err(|_| "subscriber thread panicked".to_string())??;
    }

    if report.lost_batches > 0 {
        return Err(format!(
            "chaos gate violated: {} honest batches lost",
            report.lost_batches
        ));
    }
    if config.corruptor && config.fault_rate > 0.0 && report.corruptor_rejects == 0 {
        return Err("corruptor saw zero rejects at a nonzero fault rate".to_string());
    }
    report.tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    Ok(report)
}
