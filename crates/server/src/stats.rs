//! Daemon-wide accounting: every frame the daemon rejects, every
//! connection it sheds, every subscriber event it drops is counted here.
//!
//! The chaos gate in `tests/daemon_chaos.rs` holds the daemon to a
//! conservation law: adversarial traffic may be rejected, shed or
//! dropped, but it must always be *accounted* — nothing disappears
//! silently, and well-behaved tenants lose nothing at all.

use std::collections::BTreeMap;

use crate::frame::RejectReason;

/// Monotonic counters for one daemon run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted by the listener.
    pub connections: u64,
    /// Connections closed by the idle watchdog.
    pub idle_reaped: u64,
    /// Well-formed frames decoded across all connections.
    pub frames_ok: u64,
    /// Batches accepted into tenant pipelines.
    pub batches_accepted: u64,
    /// Rows applied by tenant pipelines.
    pub rows_accepted: u64,
    /// `Busy` replies sent (load shed under backpressure).
    pub busy_shed: u64,
    /// Tenant shards lost to panics (each one reaped and attributed).
    pub tenant_panics: u64,
    /// Incident frames published to the subscriber hub.
    pub incidents_published: u64,
    /// Incident frames enqueued across all subscriber buffers.
    pub subscriber_queued: u64,
    /// Incident frames evicted from slow subscribers' bounded buffers.
    pub subscriber_dropped: u64,
    /// Rejected frames/byte-runs by [`RejectReason`] name.
    pub rejects: BTreeMap<&'static str, u64>,
}

impl ServeStats {
    /// Counts one rejection.
    pub fn record_reject(&mut self, reason: RejectReason) {
        *self.rejects.entry(reason.as_str()).or_insert(0) += 1;
    }

    /// Total rejections across all reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejects.values().sum()
    }

    /// Renders the counters as sorted `serve.<name>=<value>` lines —
    /// the daemon's exit report, grep-friendly for the CI smoke job.
    pub fn to_kv_lines(&self) -> String {
        let mut out = String::new();
        let scalars: [(&str, u64); 10] = [
            ("connections", self.connections),
            ("idle_reaped", self.idle_reaped),
            ("frames_ok", self.frames_ok),
            ("batches_accepted", self.batches_accepted),
            ("rows_accepted", self.rows_accepted),
            ("busy_shed", self.busy_shed),
            ("tenant_panics", self.tenant_panics),
            ("incidents_published", self.incidents_published),
            ("subscriber_queued", self.subscriber_queued),
            ("subscriber_dropped", self.subscriber_dropped),
        ];
        for (name, value) in scalars {
            out.push_str(&format!("serve.{name}={value}\n"));
        }
        out.push_str(&format!("serve.rejected_total={}\n", self.rejected_total()));
        for (reason, count) in &self.rejects {
            out.push_str(&format!("serve.reject.{reason}={count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_accounting_sums_by_reason() {
        let mut s = ServeStats::default();
        s.record_reject(RejectReason::BadMagic);
        s.record_reject(RejectReason::BadMagic);
        s.record_reject(RejectReason::Truncated);
        assert_eq!(s.rejected_total(), 3);
        assert_eq!(s.rejects.get("bad-magic"), Some(&2));
        assert_eq!(s.rejects.get("truncated"), Some(&1));
    }

    #[test]
    fn kv_lines_are_stable_and_complete() {
        let mut s = ServeStats {
            connections: 4,
            busy_shed: 2,
            ..ServeStats::default()
        };
        s.record_reject(RejectReason::Oversize);
        let text = s.to_kv_lines();
        assert!(text.contains("serve.connections=4\n"));
        assert!(text.contains("serve.busy_shed=2\n"));
        assert!(text.contains("serve.rejected_total=1\n"));
        assert!(text.contains("serve.reject.oversize=1\n"));
    }
}
