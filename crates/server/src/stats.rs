//! Daemon-wide accounting and the live metrics plane.
//!
//! Two layers live here:
//!
//! 1. [`ServeStats`] — the conservation ledger: every frame the daemon
//!    rejects, every connection it sheds, every subscriber event it
//!    drops is counted. The chaos gate in `tests/daemon_chaos.rs` holds
//!    the daemon to a conservation law: adversarial traffic may be
//!    rejected, shed or dropped, but it must always be *accounted* —
//!    nothing disappears silently, and well-behaved tenants lose
//!    nothing at all. The ledger is **snapshot-consistent**: the seam
//!    counters for one offered batch are updated in a single critical
//!    section, so the identity `enqueued + shed + refused = offered`
//!    holds at *every* mid-run snapshot, not just at drain (see
//!    DESIGN.md §15.2).
//! 2. [`MetricsSink`] / [`ServeMetrics`] — the optional latency plane:
//!    per-tenant counters plus [`LatencyHistogram`]s for
//!    batch-ingest→Ack latency, shard-queue wait, and incident publish
//!    lag, sampled on the monotonic clock via
//!    [`hydra_types::Stopwatch`]. The seam mirrors the
//!    `EventSink`/`NoopSink` pattern from `hydra-telemetry`: the
//!    default [`NoopMetrics`] compiles to nothing and reports
//!    [`is_enabled`](MetricsSink::is_enabled)` = false`, so the bare
//!    daemon pays zero cost and the metered daemon stays
//!    digest-identical (proven by the chaos suite).
//!
//! Both layers are rendered into the schema-versioned
//! [`SERVE_STATS_SCHEMA_VERSION`] JSON payload carried by
//! `StatsSnapshot` frames and scraped by `hydra top`.

use std::collections::BTreeMap;

use hydra_forensics::json::JsonValue;
use hydra_telemetry::histogram::LatencyHistogram;
use hydra_telemetry::json::quote;
use hydra_types::Stopwatch;

use crate::frame::RejectReason;

/// Schema version tag for the live stats snapshot payload.
///
/// This is the single definition of the literal; `repo-lint` enforces
/// that no other library source repeats it (`schema-single-source`).
pub const SERVE_STATS_SCHEMA_VERSION: &str = "hydra-serve-stats-v1";

/// Metric-name catalog: the JSON keys under which latency-plane series
/// are published in a [`SERVE_STATS_SCHEMA_VERSION`] snapshot.
///
/// This module is the single definition site for these strings;
/// `repo-lint` (`metric-names-single-source`) enforces that no other
/// library source repeats them, so a dashboard scraping one spelling
/// can never drift from a daemon publishing another.
pub mod names {
    /// Batch-ingest→Ack latency histogram (microseconds): stamped when a
    /// `Batch` frame is decoded, recorded when its `Ack` is written.
    pub const INGEST_US: &str = "ingest_us";
    /// Shard-queue wait histogram (microseconds): stamped at `try_send`,
    /// recorded when the shard dequeues the batch.
    pub const QUEUE_WAIT_US: &str = "queue_wait_us";
    /// Incident publish lag histogram (microseconds): stamped when a
    /// batch's incidents are produced, recorded as each one lands in the
    /// subscriber hub.
    pub const PUBLISH_LAG_US: &str = "publish_lag_us";
    /// Per-tenant shard-queue depth gauge (batches enqueued, not yet
    /// dequeued).
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Monotonic microseconds since the daemon started sampling.
    pub const UPTIME_MICROS: &str = "uptime_micros";
}

/// Monotonic counters for one daemon run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted by the listener.
    pub connections: u64,
    /// Connections closed by the idle watchdog.
    pub idle_reaped: u64,
    /// Well-formed frames decoded across all connections.
    pub frames_ok: u64,
    /// Batch frames from registered tenants that reached the shard-queue
    /// seam (`try_send`). Every offer lands in exactly one of
    /// [`batches_enqueued`](Self::batches_enqueued),
    /// [`batches_shed`](Self::batches_shed) or
    /// [`batches_refused`](Self::batches_refused), updated in the same
    /// critical section, so the identity holds at every snapshot.
    pub batches_offered: u64,
    /// Offered batches accepted into a shard queue.
    pub batches_enqueued: u64,
    /// Offered batches shed with `Busy` because the shard queue was full.
    pub batches_shed: u64,
    /// Offered batches refused because the tenant shard was gone
    /// (crashed between registration and offer).
    pub batches_refused: u64,
    /// Batches fully applied by tenant pipelines (Ack observed).
    pub batches_accepted: u64,
    /// Rows applied by tenant pipelines.
    pub rows_accepted: u64,
    /// `Busy` replies sent (load shed under backpressure): every shed
    /// batch offer, plus `Hello`s shed because the tenant table is full.
    pub busy_shed: u64,
    /// Tenant shards lost to panics (each one reaped and attributed).
    pub tenant_panics: u64,
    /// Incident frames published to the subscriber hub.
    pub incidents_published: u64,
    /// Incident frames enqueued across all subscriber buffers.
    pub subscriber_queued: u64,
    /// Incident frames evicted from slow subscribers' bounded buffers.
    pub subscriber_dropped: u64,
    /// `StatsSnapshot` frames served.
    pub stats_served: u64,
    /// Rejected frames/byte-runs by [`RejectReason`] name.
    pub rejects: BTreeMap<&'static str, u64>,
}

impl ServeStats {
    /// Counts one rejection.
    pub fn record_reject(&mut self, reason: RejectReason) {
        *self.rejects.entry(reason.as_str()).or_insert(0) += 1;
    }

    /// Total rejections across all reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejects.values().sum()
    }

    /// The scalar counters as stable `(name, value)` pairs — one source
    /// for both the kv exit report and the JSON snapshot payload.
    fn scalars(&self) -> [(&'static str, u64); 15] {
        [
            ("connections", self.connections),
            ("idle_reaped", self.idle_reaped),
            ("frames_ok", self.frames_ok),
            ("batches_offered", self.batches_offered),
            ("batches_enqueued", self.batches_enqueued),
            ("batches_shed", self.batches_shed),
            ("batches_refused", self.batches_refused),
            ("batches_accepted", self.batches_accepted),
            ("rows_accepted", self.rows_accepted),
            ("busy_shed", self.busy_shed),
            ("tenant_panics", self.tenant_panics),
            ("incidents_published", self.incidents_published),
            ("subscriber_queued", self.subscriber_queued),
            ("subscriber_dropped", self.subscriber_dropped),
            ("stats_served", self.stats_served),
        ]
    }

    /// Renders the counters as sorted `serve.<name>=<value>` lines —
    /// the daemon's exit report, grep-friendly for the CI smoke job.
    pub fn to_kv_lines(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.scalars() {
            out.push_str(&format!("serve.{name}={value}\n"));
        }
        out.push_str(&format!("serve.rejected_total={}\n", self.rejected_total()));
        for (reason, count) in &self.rejects {
            out.push_str(&format!("serve.reject.{reason}={count}\n"));
        }
        out
    }
}

/// Five-number summary of one [`LatencyHistogram`], in the histogram's
/// native unit (microseconds for every wire-path series).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact mean of recorded values.
    pub mean: f64,
    /// Approximate median (log-bucketed, clamped to the true max).
    pub p50: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn of(h: &LatencyHistogram) -> Self {
        HistSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.percentile(0.50),
            p99: h.percentile(0.99),
            max: h.max(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            self.count, self.mean, self.p50, self.p99, self.max
        )
    }

    fn parse(v: &JsonValue) -> Result<Self, String> {
        let field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("histogram summary missing numeric {k:?}"))
        };
        Ok(HistSummary {
            count: field("count")? as u64,
            mean: field("mean")?,
            p50: field("p50")?,
            p99: field("p99")?,
            max: field("max")? as u64,
        })
    }
}

/// One tenant's row in a metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRow {
    /// Tenant name.
    pub tenant: String,
    /// Batches Ack'd for this tenant.
    pub batches: u64,
    /// Rows (activations) applied for this tenant.
    pub rows: u64,
    /// `Busy` sheds at this tenant's shard-queue seam.
    pub sheds: u64,
    /// Incidents this tenant's pipeline produced.
    pub incidents: u64,
    /// Batches enqueued but not yet dequeued (gauge).
    pub queue_depth: u64,
    /// Ingest (Batch→Ack) latency summary for this tenant.
    pub ingest: HistSummary,
}

/// A point-in-time view of the latency plane, produced by
/// [`MetricsSink::snapshot`] when metrics are enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic microseconds since the daemon started sampling.
    pub uptime_micros: u64,
    /// Batch-ingest→Ack latency across all tenants.
    pub ingest: HistSummary,
    /// Shard-queue wait across all tenants.
    pub queue_wait: HistSummary,
    /// Incident publish lag (incident produced → hub enqueue).
    pub publish_lag: HistSummary,
    /// Per-tenant rows, sorted by tenant name.
    pub tenants: Vec<TenantRow>,
}

/// Where daemon hot paths report latency samples and per-tenant deltas.
///
/// Mirrors the `hydra_telemetry::EventSink` seam: every method has an
/// empty default, [`NoopMetrics`] keeps the bare daemon zero-cost (hot
/// paths gate their `Stopwatch` stamps on
/// [`is_enabled`](Self::is_enabled)), and the live [`ServeMetrics`]
/// registry aggregates under a single short-held mutex. Metrics must
/// never influence control flow — that is what keeps the metered daemon
/// digest-identical to bare.
pub trait MetricsSink: Send + Sync {
    /// True when samples are recorded; lets hot paths skip clock reads
    /// entirely when metrics are off.
    fn is_enabled(&self) -> bool {
        true
    }
    /// A batch entered `tenant`'s shard queue.
    fn on_enqueue(&self, _tenant: &str) {}
    /// A batch left `tenant`'s shard queue after waiting `wait_micros`.
    fn on_dequeue(&self, _tenant: &str, _wait_micros: u64) {}
    /// A batch offer for `tenant` was shed with `Busy`.
    fn on_shed(&self, _tenant: &str) {}
    /// A batch for `tenant` was Ack'd: `rows` applied, end-to-end
    /// ingest latency `ingest_micros`.
    fn on_batch_acked(&self, _tenant: &str, _rows: u64, _ingest_micros: u64) {}
    /// `tenant`'s pipeline produced `count` new incidents.
    fn on_incidents(&self, _tenant: &str, _count: u64) {}
    /// One incident reached the subscriber hub `lag_micros` after it was
    /// produced.
    fn on_publish_lag(&self, _lag_micros: u64) {}
    /// A consistent point-in-time view, or `None` when disabled.
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// The do-nothing sink: the default when metrics are off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopMetrics;

impl MetricsSink for NoopMetrics {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn on_enqueue(&self, _tenant: &str) {}
    #[inline(always)]
    fn on_dequeue(&self, _tenant: &str, _wait_micros: u64) {}
    #[inline(always)]
    fn on_shed(&self, _tenant: &str) {}
    #[inline(always)]
    fn on_batch_acked(&self, _tenant: &str, _rows: u64, _ingest_micros: u64) {}
    #[inline(always)]
    fn on_incidents(&self, _tenant: &str, _count: u64) {}
    #[inline(always)]
    fn on_publish_lag(&self, _lag_micros: u64) {}
}

#[derive(Debug, Default)]
struct TenantMetrics {
    batches: u64,
    rows: u64,
    sheds: u64,
    incidents: u64,
    enqueued: u64,
    dequeued: u64,
    ingest: LatencyHistogram,
}

#[derive(Debug, Default)]
struct MetricsInner {
    queue_wait: LatencyHistogram,
    publish_lag: LatencyHistogram,
    tenants: BTreeMap<String, TenantMetrics>,
}

impl MetricsInner {
    fn tenant(&mut self, name: &str) -> &mut TenantMetrics {
        // entry() would allocate a String on every hot-path call; probe
        // first so the steady state is allocation-free.
        if !self.tenants.contains_key(name) {
            self.tenants
                .insert(name.to_string(), TenantMetrics::default());
        }
        self.tenants
            .get_mut(name)
            .unwrap_or_else(|| unreachable!("tenant row inserted above"))
    }
}

/// The live metrics registry: per-tenant counters plus wire-path
/// latency histograms under one short-held mutex.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Stopwatch,
    inner: std::sync::Mutex<MetricsInner>,
}

impl ServeMetrics {
    /// A registry anchored now.
    pub fn new() -> Self {
        ServeMetrics {
            started: Stopwatch::start(),
            inner: std::sync::Mutex::new(MetricsInner::default()),
        }
    }

    fn with_inner(&self, f: impl FnOnce(&mut MetricsInner)) {
        if let Ok(mut inner) = self.inner.lock() {
            f(&mut inner);
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl MetricsSink for ServeMetrics {
    fn on_enqueue(&self, tenant: &str) {
        self.with_inner(|m| m.tenant(tenant).enqueued += 1);
    }

    fn on_dequeue(&self, tenant: &str, wait_micros: u64) {
        self.with_inner(|m| {
            m.queue_wait.record(wait_micros);
            m.tenant(tenant).dequeued += 1;
        });
    }

    fn on_shed(&self, tenant: &str) {
        self.with_inner(|m| m.tenant(tenant).sheds += 1);
    }

    fn on_batch_acked(&self, tenant: &str, rows: u64, ingest_micros: u64) {
        self.with_inner(|m| {
            let t = m.tenant(tenant);
            t.batches += 1;
            t.rows += rows;
            t.ingest.record(ingest_micros);
        });
    }

    fn on_incidents(&self, tenant: &str, count: u64) {
        self.with_inner(|m| m.tenant(tenant).incidents += count);
    }

    fn on_publish_lag(&self, lag_micros: u64) {
        self.with_inner(|m| m.publish_lag.record(lag_micros));
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        let uptime_micros = self.started.elapsed_micros();
        let inner = self.inner.lock().ok()?;
        let mut ingest_all = LatencyHistogram::new();
        let mut tenants = Vec::with_capacity(inner.tenants.len());
        for (name, t) in &inner.tenants {
            ingest_all.merge(&t.ingest);
            tenants.push(TenantRow {
                tenant: name.clone(),
                batches: t.batches,
                rows: t.rows,
                sheds: t.sheds,
                incidents: t.incidents,
                queue_depth: t.enqueued.saturating_sub(t.dequeued),
                ingest: HistSummary::of(&t.ingest),
            });
        }
        Some(MetricsSnapshot {
            uptime_micros,
            ingest: HistSummary::of(&ingest_all),
            queue_wait: HistSummary::of(&inner.queue_wait),
            publish_lag: HistSummary::of(&inner.publish_lag),
            tenants,
        })
    }
}

/// Renders the [`SERVE_STATS_SCHEMA_VERSION`] JSON payload: the counter
/// ledger always, the latency plane when metrics are enabled (`null`
/// otherwise, so scrapers can tell "disabled" from "idle").
pub fn render_stats_json(stats: &ServeStats, metrics: Option<&MetricsSnapshot>) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":");
    out.push_str(&quote(SERVE_STATS_SCHEMA_VERSION));
    out.push_str(",\"counters\":{");
    for (name, value) in stats.scalars() {
        out.push_str(&format!("{}:{value},", quote(name)));
    }
    out.push_str(&format!(
        "\"rejected_total\":{},\"rejects\":{{",
        stats.rejected_total()
    ));
    let mut first = true;
    for (reason, count) in &stats.rejects {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}:{count}", quote(reason)));
    }
    out.push_str("}},\"metrics\":");
    match metrics {
        None => out.push_str("null"),
        Some(m) => {
            out.push_str(&format!(
                "{{\"{}\":{},\"{}\":{},\"{}\":{},\"{}\":{},\"tenants\":[",
                names::UPTIME_MICROS,
                m.uptime_micros,
                names::INGEST_US,
                m.ingest.to_json(),
                names::QUEUE_WAIT_US,
                m.queue_wait.to_json(),
                names::PUBLISH_LAG_US,
                m.publish_lag.to_json(),
            ));
            for (i, t) in m.tenants.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"tenant\":{},\"batches\":{},\"rows\":{},\"sheds\":{},\"incidents\":{},\"{}\":{},\"{}\":{}}}",
                    quote(&t.tenant),
                    t.batches,
                    t.rows,
                    t.sheds,
                    t.incidents,
                    names::QUEUE_DEPTH,
                    t.queue_depth,
                    names::INGEST_US,
                    t.ingest.to_json(),
                ));
            }
            out.push_str("]}");
        }
    }
    out.push('}');
    out
}

/// A parsed [`SERVE_STATS_SCHEMA_VERSION`] snapshot, as seen by `hydra
/// top`, the load client and the chaos tests.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReading {
    /// Scalar counters by ledger name (includes `rejected_total`).
    pub counters: BTreeMap<String, u64>,
    /// Reject counts by reason name.
    pub rejects: BTreeMap<String, u64>,
    /// The latency plane, when the daemon had metrics enabled.
    pub metrics: Option<MetricsSnapshot>,
}

impl StatsReading {
    /// One scalar counter (0 when absent, so identity checks read
    /// naturally).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Parses and schema-checks a snapshot payload.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: malformed
    /// JSON, a missing/foreign schema tag, or a non-numeric counter.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = hydra_forensics::json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("snapshot missing schema tag")?;
        if schema != SERVE_STATS_SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema {schema:?}, expected {SERVE_STATS_SCHEMA_VERSION:?}"
            ));
        }
        let Some(JsonValue::Obj(counter_map)) = v.get("counters") else {
            return Err("snapshot missing counters object".to_string());
        };
        let mut counters = BTreeMap::new();
        let mut rejects = BTreeMap::new();
        for (name, value) in counter_map {
            if name == "rejects" {
                let JsonValue::Obj(reject_map) = value else {
                    return Err("counters.rejects is not an object".to_string());
                };
                for (reason, count) in reject_map {
                    let count = count
                        .as_u64()
                        .ok_or_else(|| format!("reject count {reason:?} is not a u64"))?;
                    rejects.insert(reason.clone(), count);
                }
                continue;
            }
            let value = value
                .as_u64()
                .ok_or_else(|| format!("counter {name:?} is not a u64"))?;
            counters.insert(name.clone(), value);
        }
        let metrics = match v.get("metrics") {
            None | Some(JsonValue::Null) => None,
            Some(m) => Some(parse_metrics(m)?),
        };
        Ok(StatsReading {
            counters,
            rejects,
            metrics,
        })
    }
}

fn parse_metrics(v: &JsonValue) -> Result<MetricsSnapshot, String> {
    let uptime_micros = v
        .get(names::UPTIME_MICROS)
        .and_then(JsonValue::as_u64)
        .ok_or("metrics missing uptime")?;
    let hist = |k: &str| -> Result<HistSummary, String> {
        HistSummary::parse(v.get(k).ok_or_else(|| format!("metrics missing {k:?}"))?)
    };
    let mut tenants = Vec::new();
    for row in v
        .get("tenants")
        .and_then(JsonValue::as_array)
        .ok_or("metrics missing tenants array")?
    {
        let s = |k: &str| -> Result<u64, String> {
            row.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("tenant row missing {k:?}"))
        };
        tenants.push(TenantRow {
            tenant: row
                .get("tenant")
                .and_then(JsonValue::as_str)
                .ok_or("tenant row missing name")?
                .to_string(),
            batches: s("batches")?,
            rows: s("rows")?,
            sheds: s("sheds")?,
            incidents: s("incidents")?,
            queue_depth: s(names::QUEUE_DEPTH)?,
            ingest: HistSummary::parse(
                row.get(names::INGEST_US)
                    .ok_or("tenant row missing ingest histogram")?,
            )?,
        });
    }
    Ok(MetricsSnapshot {
        uptime_micros,
        ingest: hist(names::INGEST_US)?,
        queue_wait: hist(names::QUEUE_WAIT_US)?,
        publish_lag: hist(names::PUBLISH_LAG_US)?,
        tenants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_accounting_sums_by_reason() {
        let mut s = ServeStats::default();
        s.record_reject(RejectReason::BadMagic);
        s.record_reject(RejectReason::BadMagic);
        s.record_reject(RejectReason::Truncated);
        assert_eq!(s.rejected_total(), 3);
        assert_eq!(s.rejects.get("bad-magic"), Some(&2));
        assert_eq!(s.rejects.get("truncated"), Some(&1));
    }

    #[test]
    fn kv_lines_are_stable_and_complete() {
        let mut s = ServeStats {
            connections: 4,
            busy_shed: 2,
            batches_offered: 9,
            ..ServeStats::default()
        };
        s.record_reject(RejectReason::Oversize);
        let text = s.to_kv_lines();
        assert!(text.contains("serve.connections=4\n"));
        assert!(text.contains("serve.busy_shed=2\n"));
        assert!(text.contains("serve.batches_offered=9\n"));
        assert!(text.contains("serve.rejected_total=1\n"));
        assert!(text.contains("serve.reject.oversize=1\n"));
    }

    #[test]
    fn noop_metrics_is_disabled_and_snapshotless() {
        let m = NoopMetrics;
        assert!(!m.is_enabled());
        m.on_enqueue("a");
        m.on_batch_acked("a", 10, 5);
        assert_eq!(m.snapshot(), None);
    }

    #[test]
    fn serve_metrics_aggregates_per_tenant() {
        let m = ServeMetrics::new();
        assert!(m.is_enabled());
        for _ in 0..3 {
            m.on_enqueue("alpha");
        }
        m.on_dequeue("alpha", 7);
        m.on_batch_acked("alpha", 192, 120);
        m.on_shed("alpha");
        m.on_incidents("alpha", 2);
        m.on_publish_lag(33);
        m.on_batch_acked("beta", 10, 999);
        let snap = m.snapshot().expect("live metrics snapshot");
        assert_eq!(snap.tenants.len(), 2);
        let alpha = &snap.tenants[0];
        assert_eq!(alpha.tenant, "alpha");
        assert_eq!(alpha.batches, 1);
        assert_eq!(alpha.rows, 192);
        assert_eq!(alpha.sheds, 1);
        assert_eq!(alpha.incidents, 2);
        assert_eq!(alpha.queue_depth, 2, "3 enqueued, 1 dequeued");
        assert_eq!(alpha.ingest.count, 1);
        assert_eq!(snap.ingest.count, 2, "global ingest merges tenants");
        assert_eq!(snap.queue_wait.count, 1);
        assert_eq!(snap.publish_lag.count, 1);
        assert_eq!(snap.publish_lag.max, 33);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut s = ServeStats {
            connections: 2,
            frames_ok: 40,
            batches_offered: 12,
            batches_enqueued: 10,
            batches_shed: 2,
            batches_accepted: 10,
            rows_accepted: 1920,
            incidents_published: 3,
            subscriber_queued: 3,
            ..ServeStats::default()
        };
        s.record_reject(RejectReason::BadChecksum);
        let m = ServeMetrics::new();
        m.on_enqueue("t-0");
        m.on_dequeue("t-0", 4);
        m.on_batch_acked("t-0", 192, 88);
        let snap = m.snapshot().expect("snapshot");
        let json = render_stats_json(&s, Some(&snap));
        let reading = StatsReading::parse(&json).expect("parse rendered snapshot");
        assert_eq!(reading.counter("connections"), 2);
        assert_eq!(reading.counter("batches_offered"), 12);
        assert_eq!(reading.counter("rejected_total"), 1);
        assert_eq!(reading.rejects.get("bad-checksum"), Some(&1));
        let metrics = reading.metrics.expect("metrics present");
        assert_eq!(metrics, snap, "lossless histogram-summary round-trip");
    }

    #[test]
    fn snapshot_json_without_metrics_parses_as_none() {
        let json = render_stats_json(&ServeStats::default(), None);
        let reading = StatsReading::parse(&json).expect("parse bare snapshot");
        assert_eq!(reading.metrics, None);
        assert_eq!(reading.counter("connections"), 0);
        assert_eq!(reading.counter("no-such-counter"), 0);
    }

    #[test]
    fn foreign_schema_is_refused() {
        let err = StatsReading::parse("{\"schema\":\"other-v9\",\"counters\":{}}")
            .expect_err("foreign schema must not parse");
        assert!(err.contains("other-v9"), "{err}");
        assert!(
            StatsReading::parse("{\"counters\":{}}").is_err(),
            "missing schema tag must not parse"
        );
        assert!(StatsReading::parse("not json").is_err());
    }

    #[test]
    fn hostile_tenant_names_survive_the_json_round_trip() {
        let m = ServeMetrics::new();
        let hostile = "t\"quote\\slash"; // valid_tenant_name rejects these
        m.on_batch_acked(hostile, 1, 1); // on the wire, but stay robust
        let snap = m.snapshot().expect("snapshot");
        let json = render_stats_json(&ServeStats::default(), Some(&snap));
        let reading = StatsReading::parse(&json).expect("escaped names parse");
        let metrics = reading.metrics.expect("metrics present");
        assert_eq!(metrics.tenants[0].tenant, hostile);
    }
}
