//! Deterministic session record/replay.
//!
//! A recorded session is the daemon's *accepted input* (every batch that
//! made it into a tenant pipeline, post-dedup) plus its *canonical
//! output* (each tenant's summary and incident lines). Because a
//! [`TenantPipeline`] is a pure function
//! of its ordered batches, `hydra replay-session` can re-run the
//! pipelines from the recorded input and regenerate the output — and the
//! regenerated file must equal the recorded file **byte for byte**.
//! Cross-tenant arrival interleaving is irrelevant by construction:
//! batches are grouped per tenant and ordered by sequence number, which
//! is exactly the order each shard consumed them.
//!
//! The on-disk format is line-based `key=value` (one record per line,
//! canonical ordering, trailing `end` sentinel) so a truncated or edited
//! file fails parsing loudly instead of replaying quietly wrong.

use hydra_types::MemGeometry;

use crate::frame::{valid_tenant_name, SERVE_SCHEMA_VERSION};
use crate::tenant::{TenantPipeline, TenantSummary};

/// One accepted batch, as consumed by a tenant pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedBatch {
    /// Tenant the batch belonged to.
    pub tenant: String,
    /// Batch sequence number (strictly increasing per tenant).
    pub seq: u64,
    /// Packed rows, in application order.
    pub rows: Vec<u64>,
}

/// A complete recorded session: configuration, accepted input, canonical
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Geometry name (`tiny` or `isca22`), resolvable by
    /// [`geometry_by_name`].
    pub geometry: String,
    /// Row-hammer threshold the daemon served with.
    pub t_rh: u32,
    /// Accepted batches, sorted by `(tenant, seq)`.
    pub batches: Vec<RecordedBatch>,
    /// Per-tenant outputs, sorted by tenant name.
    pub outputs: Vec<TenantSummary>,
}

/// Resolves the geometry names accepted on the `hydra serve` command
/// line and stored in session files.
pub fn geometry_by_name(name: &str) -> Option<MemGeometry> {
    match name {
        "tiny" => Some(MemGeometry::tiny()),
        "isca22" => Some(MemGeometry::isca22_baseline()),
        _ => None,
    }
}

impl Session {
    /// Canonicalizes: sorts batches by `(tenant, seq)` and outputs by
    /// tenant name. Called by the daemon before rendering.
    pub fn normalize(&mut self) {
        self.batches
            .sort_by(|a, b| a.tenant.cmp(&b.tenant).then(a.seq.cmp(&b.seq)));
        self.outputs.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    }

    /// Renders the canonical session text. `parse` ∘ `to_text` is the
    /// identity on normalized sessions, and replaying a session renders
    /// the same bytes again — both properties are under test.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("schema={SERVE_SCHEMA_VERSION}\n"));
        out.push_str(&format!("geometry={} t_rh={}\n", self.geometry, self.t_rh));
        for batch in &self.batches {
            let rows: Vec<String> = batch.rows.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!(
                "batch tenant={} seq={} rows={}\n",
                batch.tenant,
                batch.seq,
                rows.join(",")
            ));
        }
        for summary in &self.outputs {
            out.push_str(&format!(
                "output tenant={} digest={:016x}\n",
                summary.tenant,
                summary.digest()
            ));
            for line in summary.canon_text().lines() {
                out.push_str("| ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a recorded session, validating the schema line, tenant
    /// names, digests, and the `end` sentinel.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered description of the first malformed line,
    /// a digest mismatch (file edited or corrupted), or a missing
    /// sentinel (file truncated).
    pub fn parse(text: &str) -> Result<Session, String> {
        let mut lines = text.lines().enumerate();
        let (_, schema_line) = lines.next().ok_or("empty session file")?;
        let schema = schema_line
            .strip_prefix("schema=")
            .ok_or("line 1: expected schema=...")?;
        if schema != SERVE_SCHEMA_VERSION {
            return Err(format!("unsupported session schema {schema:?}"));
        }
        let (_, meta) = lines.next().ok_or("missing meta line")?;
        let meta_kv = parse_kv(meta)?;
        let geometry = meta_kv
            .iter()
            .find(|(k, _)| *k == "geometry")
            .map(|(_, v)| v.to_string())
            .ok_or("line 2: missing geometry=")?;
        geometry_by_name(&geometry).ok_or_else(|| format!("unknown geometry {geometry:?}"))?;
        let t_rh: u32 = lookup(&meta_kv, "t_rh")?
            .parse()
            .map_err(|_| "line 2: bad t_rh".to_string())?;

        let mut batches = Vec::new();
        let mut outputs: Vec<TenantSummary> = Vec::new();
        let mut open: Option<(String, u64, Vec<String>)> = None; // tenant, digest, canon lines
        let mut saw_end = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if let Some(rest) = line.strip_prefix("| ") {
                let (_, _, canon) = open
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: output body outside a section"))?;
                canon.push(rest.to_string());
                continue;
            }
            if let Some(section) = open.take() {
                outputs.push(close_output(section)?);
            }
            if let Some(rest) = line.strip_prefix("batch ") {
                let kv = parse_kv(rest)?;
                let tenant = lookup(&kv, "tenant")?.to_string();
                if !valid_tenant_name(&tenant) {
                    return Err(format!("line {lineno}: bad tenant name {tenant:?}"));
                }
                let seq: u64 = lookup(&kv, "seq")?
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad seq"))?;
                let rows_field = lookup(&kv, "rows")?;
                let mut rows = Vec::new();
                if !rows_field.is_empty() {
                    for part in rows_field.split(',') {
                        rows.push(
                            part.parse()
                                .map_err(|_| format!("line {lineno}: bad row {part:?}"))?,
                        );
                    }
                }
                batches.push(RecordedBatch { tenant, seq, rows });
            } else if let Some(rest) = line.strip_prefix("output ") {
                let kv = parse_kv(rest)?;
                let tenant = lookup(&kv, "tenant")?.to_string();
                let digest = u64::from_str_radix(lookup(&kv, "digest")?, 16)
                    .map_err(|_| format!("line {lineno}: bad digest"))?;
                open = Some((tenant, digest, Vec::new()));
            } else if line == "end" {
                saw_end = true;
                break;
            } else {
                return Err(format!("line {lineno}: unrecognized record {line:?}"));
            }
        }
        if let Some(section) = open.take() {
            outputs.push(close_output(section)?);
        }
        if !saw_end {
            return Err("missing end sentinel (file truncated?)".to_string());
        }
        Ok(Session {
            geometry,
            t_rh,
            batches,
            outputs,
        })
    }

    /// Re-runs every tenant pipeline over the recorded batches and
    /// returns the regenerated session (same input, freshly computed
    /// outputs). Tenants that recorded batches but no output (a crashed
    /// shard) are skipped, matching the live daemon.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry is unknown, a pipeline cannot be
    /// built, or the recorded sequence numbers do not replay cleanly.
    pub fn replay(&self) -> Result<Session, String> {
        let geometry = geometry_by_name(&self.geometry)
            .ok_or_else(|| format!("unknown geometry {:?}", self.geometry))?;
        // Replay exactly the tenants the recording produced output for —
        // including tenants with zero accepted batches, and excluding a
        // crashed shard's leftovers. A session with no recorded outputs
        // at all is fresh input: compute outputs for every batch tenant.
        let tenants: Vec<String> = if self.outputs.is_empty() {
            let mut names: Vec<String> = self.batches.iter().map(|b| b.tenant.clone()).collect();
            names.sort();
            names.dedup();
            names
        } else {
            self.outputs.iter().map(|s| s.tenant.clone()).collect()
        };
        let mut outputs = Vec::new();
        for tenant in &tenants {
            let mut pipeline = TenantPipeline::new(tenant, geometry, self.t_rh)?;
            for batch in self.batches.iter().filter(|b| &b.tenant == tenant) {
                pipeline.apply_batch(batch.seq, &batch.rows).map_err(|r| {
                    format!("tenant {} seq {}: {}", batch.tenant, batch.seq, r.as_str())
                })?;
            }
            outputs.push(pipeline.finish());
        }
        let mut replayed = Session {
            geometry: self.geometry.clone(),
            t_rh: self.t_rh,
            batches: self.batches.clone(),
            outputs,
        };
        replayed.normalize();
        Ok(replayed)
    }
}

/// Parses `text` as a recorded session, replays it, and byte-compares
/// the regenerated rendering against the original text.
///
/// # Errors
///
/// Returns a parse error, a replay error, or — on a mismatch — the first
/// line where the replayed session diverges from the recording.
pub fn replay_check(text: &str) -> Result<(), String> {
    let session = Session::parse(text)?;
    let replayed = session.replay()?;
    let regenerated = replayed.to_text();
    if regenerated == text {
        return Ok(());
    }
    for (i, (a, b)) in text.lines().zip(regenerated.lines()).enumerate() {
        if a != b {
            return Err(format!(
                "replay diverges at line {}: recorded {a:?}, replayed {b:?}",
                i + 1
            ));
        }
    }
    Err(format!(
        "replay diverges in length: recorded {} bytes, replayed {} bytes",
        text.len(),
        regenerated.len()
    ))
}

fn close_output(
    (tenant, digest, canon): (String, u64, Vec<String>),
) -> Result<TenantSummary, String> {
    let summary_line = canon
        .first()
        .ok_or_else(|| format!("output {tenant}: empty body"))?
        .clone();
    let kv = parse_kv(&summary_line)?;
    if lookup(&kv, "tenant")? != tenant {
        return Err(format!(
            "output {tenant}: summary line names another tenant"
        ));
    }
    let (batches, rows, invalid_rows) = (
        parse_u64(&kv, "batches")?,
        parse_u64(&kv, "rows")?,
        parse_u64(&kv, "invalid")?,
    );
    drop(kv);
    let summary = TenantSummary {
        tenant: tenant.clone(),
        batches,
        rows,
        invalid_rows,
        incidents: canon[1..].to_vec(),
        summary_line,
    };
    if summary.digest() != digest {
        return Err(format!(
            "output {tenant}: digest mismatch (recorded {digest:016x}, computed {:016x}) — file edited or corrupted",
            summary.digest()
        ));
    }
    Ok(summary)
}

fn parse_kv(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let mut out = Vec::new();
    let mut rest = line;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("malformed kv segment {rest:?}"))?;
        let key = &rest[..eq];
        let after = &rest[eq + 1..];
        // `rows=` and incident-bearing fields never contain spaces, so a
        // space always separates pairs.
        let (value, next) = match after.find(' ') {
            Some(sp) => (&after[..sp], &after[sp + 1..]),
            None => (after, ""),
        };
        out.push((key, value));
        rest = next;
    }
    Ok(out)
}

fn lookup<'a>(kv: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    kv.iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing {key}="))
}

fn parse_u64(kv: &[(&str, &str)], key: &str) -> Result<u64, String> {
    lookup(kv, key)?
        .parse()
        .map_err(|_| format!("bad {key}= value"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_forensics::attribution::pack_row;
    use hydra_types::RowAddr;

    fn sample_session() -> Session {
        let rows: Vec<u64> = (0..200)
            .map(|_| pack_row(RowAddr::new(0, 0, 1, 7)))
            .collect();
        let mut session = Session {
            geometry: "tiny".to_string(),
            t_rh: 64,
            batches: (1..=6)
                .map(|seq| RecordedBatch {
                    tenant: "t0".to_string(),
                    seq,
                    rows: rows.clone(),
                })
                .chain((1..=3).map(|seq| RecordedBatch {
                    tenant: "alpha".to_string(),
                    seq,
                    rows: rows[..50].to_vec(),
                }))
                .collect(),
            outputs: Vec::new(),
        };
        session.normalize();
        // Generate truthful outputs by replaying the input once.
        let mut replayed = session.replay().expect("replay of fresh input");
        replayed.normalize();
        replayed
    }

    #[test]
    fn text_round_trips_through_parse() {
        let session = sample_session();
        let text = session.to_text();
        let parsed = Session::parse(&text).expect("parse");
        assert_eq!(parsed, session);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn replay_check_accepts_a_faithful_recording() {
        let text = sample_session().to_text();
        replay_check(&text).expect("byte-identical replay");
    }

    #[test]
    fn tampered_output_is_rejected_by_digest() {
        let text = sample_session().to_text();
        let tampered = text.replace("incidents=", "incidents=9");
        assert!(Session::parse(&tampered).is_err());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let text = sample_session().to_text();
        let cut = &text[..text.len() - 5];
        let err = Session::parse(cut).expect_err("must reject truncation");
        assert!(err.contains("end sentinel") || err.contains("truncated"));
    }

    #[test]
    fn tampered_input_diverges_on_replay() {
        let session = sample_session();
        let text = session.to_text();
        // Drop one batch line: outputs no longer match the input.
        let victim = session
            .batches
            .last()
            .map(|b| format!("batch tenant={} seq={} ", b.tenant, b.seq))
            .expect("non-empty session");
        let tampered: String = text
            .lines()
            .filter(|l| !l.starts_with(&victim))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(replay_check(&tampered).is_err());
    }

    #[test]
    fn unknown_geometry_and_schema_are_rejected() {
        assert!(Session::parse("schema=other-v9\n").is_err());
        assert!(Session::parse("schema=hydra-serve-v1\ngeometry=mars t_rh=64\nend\n").is_err());
        assert!(geometry_by_name("isca22").is_some());
    }
}
