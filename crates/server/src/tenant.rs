//! Per-tenant activation pipeline: one tracker + forensics probe per
//! tenant, fed exclusively from that tenant's accepted batches.
//!
//! The pipeline is the unit of crash isolation *and* of determinism.
//! Isolation: each tenant's [`TenantPipeline`] lives on its own shard
//! thread inside the daemon, so a panic takes down exactly one tenant.
//! Determinism: the pipeline's outputs are a pure function of the
//! ordered accepted batches — the daemon's session recorder stores those
//! batches, and replay re-runs this same code to reproduce the outputs
//! byte for byte (`hydra replay-session`).

use hydra_core::{Hydra, HydraConfig, RowCountTable};
use hydra_dram::DramTiming;
use hydra_forensics::attribution::unpack_row;
use hydra_forensics::ForensicsProbe;
use hydra_sim::ActivationSim;
use hydra_types::MemGeometry;

use crate::frame::RejectReason;

/// Refresh-window scale for service pipelines. At the unscaled 64 ms
/// window a live tenant would never see a window close, so every
/// forensics incident would finalize only at drain — after the incident
/// hub has shut down. Scaling the window down makes windows close every
/// few thousand simulated cycles, so incidents finalize (and publish to
/// subscribers) while the tenant is still streaming. The same scale is
/// applied on record and on replay, so determinism is unaffected.
const WINDOW_SCALE: u64 = 10_000;

/// Result of applying one accepted batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Echo of the batch sequence number.
    pub seq: u64,
    /// Rows applied (valid rows only).
    pub accepted: u32,
    /// Rows skipped because they decode outside the shard's geometry.
    pub invalid: u32,
    /// Forensics incident JSONL lines newly finalized by this batch.
    pub new_incidents: Vec<String>,
}

/// End-of-stream summary for one tenant, rendered canonically so record
/// and replay can be compared byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSummary {
    /// Tenant name.
    pub tenant: String,
    /// Accepted batches.
    pub batches: u64,
    /// Valid rows applied.
    pub rows: u64,
    /// Rows skipped as outside the geometry.
    pub invalid_rows: u64,
    /// All incident JSONL lines, in finalization order.
    pub incidents: Vec<String>,
    /// Canonical summary line (first line of [`canon_text`]).
    ///
    /// [`canon_text`]: TenantSummary::canon_text
    pub summary_line: String,
}

impl TenantSummary {
    /// Canonical multi-line text for this tenant: the summary line
    /// followed by each incident line. Byte-compared between a live
    /// session and its replay.
    pub fn canon_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.incidents.len() * 128);
        out.push_str(&self.summary_line);
        out.push('\n');
        for line in &self.incidents {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// 64-bit FNV-1a digest of [`canon_text`](Self::canon_text); the
    /// compact fingerprint exchanged by the load client.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.canon_text().as_bytes())
    }
}

/// 64-bit FNV-1a — digest for canonical tenant output.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One tenant's tracker, probe and activation replay state.
pub struct TenantPipeline {
    tenant: String,
    geometry: MemGeometry,
    sim: ActivationSim<Hydra<RowCountTable, ForensicsProbe>>,
    last_seq: Option<u64>,
    published: usize,
    batches: u64,
    rows: u64,
    invalid_rows: u64,
}

impl TenantPipeline {
    /// Builds a pipeline for `tenant`: a channel-0 Hydra instance sized
    /// by [`HydraConfig::for_threshold`] with a forensics probe tagged
    /// with the tenant name.
    ///
    /// # Errors
    ///
    /// Returns the underlying configuration error text if `t_rh` is
    /// below the tracker's minimum or cannot be scaled to `geometry`.
    pub fn new(tenant: &str, geometry: MemGeometry, t_rh: u32) -> Result<Self, String> {
        let config = HydraConfig::for_threshold(geometry, 0, t_rh).map_err(|e| e.to_string())?;
        let probe = ForensicsProbe::new(config.t_h).with_workload(tenant);
        let tracker = Hydra::with_probe(config, probe).map_err(|e| e.to_string())?;
        let timing = DramTiming::ddr4_3200().with_scaled_window(WINDOW_SCALE);
        Ok(TenantPipeline {
            tenant: tenant.to_string(),
            geometry,
            sim: ActivationSim::new(geometry, tracker).with_timing(timing),
            last_seq: None,
            published: 0,
            batches: 0,
            rows: 0,
            invalid_rows: 0,
        })
    }

    /// Tenant name.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Highest accepted batch sequence number, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Applies one batch of packed rows.
    ///
    /// Sequence numbers must be strictly increasing: a stale or
    /// duplicated `seq` (e.g. manufactured by the wire-level duplicate
    /// fault) is rejected with [`RejectReason::BadSequence`] and leaves
    /// the pipeline untouched. Rows that decode outside the shard's
    /// geometry are skipped and accounted, not fatal.
    pub fn apply_batch(&mut self, seq: u64, rows: &[u64]) -> Result<BatchOutcome, RejectReason> {
        if self.last_seq.is_some_and(|last| seq <= last) {
            return Err(RejectReason::BadSequence);
        }
        self.last_seq = Some(seq);
        self.batches += 1;
        let mut accepted: u32 = 0;
        let mut invalid: u32 = 0;
        for &packed in rows {
            let row = unpack_row(packed);
            // The shard hosts a channel-0 tracker; out-of-geometry rows
            // would trip the tracker's channel debug-assert, so they are
            // filtered here (deterministically — replay skips them too).
            let in_geometry = row.channel == 0
                && row.rank < self.geometry.ranks_per_channel()
                && row.bank < self.geometry.banks_per_rank()
                && row.row < self.geometry.rows_per_bank();
            if in_geometry {
                self.sim.activate(row);
                accepted += 1;
            } else {
                invalid += 1;
            }
        }
        self.rows += u64::from(accepted);
        self.invalid_rows += u64::from(invalid);
        Ok(BatchOutcome {
            seq,
            accepted,
            invalid,
            new_incidents: self.drain_new_incidents(),
        })
    }

    fn drain_new_incidents(&mut self) -> Vec<String> {
        let incidents = self.sim.tracker().probe().incidents();
        let fresh: Vec<String> = incidents[self.published.min(incidents.len())..]
            .iter()
            .map(|inc| inc.to_json())
            .collect();
        self.published = incidents.len();
        fresh
    }

    /// Finalizes the probe and renders the canonical tenant summary.
    ///
    /// Consumes the pipeline: after the daemon drains a tenant there is
    /// nothing left to feed it.
    pub fn finish(self) -> TenantSummary {
        // Finalize the open forensics window, then collect every
        // incident from the start so the summary is self-contained.
        let report = self.sim.report();
        let mut tracker = self.sim.into_tracker();
        tracker.probe_mut().finish();
        let incidents: Vec<String> = tracker
            .into_probe()
            .incidents()
            .iter()
            .map(|inc| inc.to_json())
            .collect();
        let summary_line = format!(
            "tenant={} batches={} rows={} invalid={} acts={} mitigation_acts={} \
             mitigations={} side_reads={} side_writes={} window_resets={} incidents={}",
            self.tenant,
            self.batches,
            self.rows,
            self.invalid_rows,
            report.demand_acts,
            report.mitigation_acts,
            report.mitigations,
            report.side_reads,
            report.side_writes,
            report.window_resets,
            incidents.len(),
        );
        TenantSummary {
            tenant: self.tenant,
            batches: self.batches,
            rows: self.rows,
            invalid_rows: self.invalid_rows,
            incidents,
            summary_line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydra_forensics::attribution::pack_row;
    use hydra_types::RowAddr;

    fn pipeline() -> TenantPipeline {
        TenantPipeline::new("t0", MemGeometry::tiny(), 64).expect("tiny pipeline")
    }

    fn hammer_rows(n: usize) -> Vec<u64> {
        // Hammer one aggressor row hard enough to cross t_h = 32.
        (0..n)
            .map(|_| pack_row(RowAddr::new(0, 0, 1, 100)))
            .collect()
    }

    #[test]
    fn stale_and_duplicate_sequences_are_rejected() {
        let mut p = pipeline();
        assert!(p.apply_batch(1, &hammer_rows(4)).is_ok());
        assert_eq!(
            p.apply_batch(1, &hammer_rows(4)),
            Err(RejectReason::BadSequence)
        );
        assert_eq!(
            p.apply_batch(0, &hammer_rows(4)),
            Err(RejectReason::BadSequence)
        );
        assert!(p.apply_batch(2, &hammer_rows(4)).is_ok());
        assert_eq!(p.last_seq(), Some(2));
    }

    #[test]
    fn out_of_geometry_rows_are_skipped_not_fatal() {
        let mut p = pipeline();
        let bad_channel = pack_row(RowAddr::new(3, 0, 0, 1));
        let good = pack_row(RowAddr::new(0, 0, 0, 1));
        let outcome = p
            .apply_batch(1, &[bad_channel, good, u64::MAX])
            .expect("batch accepted");
        assert_eq!(outcome.accepted, 1);
        assert_eq!(outcome.invalid, 2);
        let summary = p.finish();
        assert_eq!(summary.rows, 1);
        assert_eq!(summary.invalid_rows, 2);
    }

    #[test]
    fn same_batches_produce_identical_canonical_output() {
        let run = || {
            let mut p = pipeline();
            for seq in 1..=8u64 {
                p.apply_batch(seq, &hammer_rows(64)).expect("accepted");
            }
            p.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.canon_text(), b.canon_text());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn hammering_yields_incidents_in_summary() {
        let mut p = pipeline();
        let mut published = 0;
        for seq in 1..=16u64 {
            let out = p.apply_batch(seq, &hammer_rows(256)).expect("accepted");
            published += out.new_incidents.len();
        }
        let summary = p.finish();
        assert!(
            !summary.incidents.is_empty(),
            "sustained hammering must classify as an attack"
        );
        assert!(
            published <= summary.incidents.len(),
            "incremental publishing never exceeds the final incident set"
        );
    }
}
