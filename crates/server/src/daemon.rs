//! The activation daemon: a crash-isolated, backpressured multi-tenant
//! service over a Unix domain socket.
//!
//! # Thread topology
//!
//! ```text
//! listener ──accept──▶ connection threads (one per client)
//!                         │ Hello/Batch ──try_send──▶ tenant shard threads
//!                         │                              │ incidents
//!                         │ Subscribe ──register──▶ hub ─┴─▶ subscriber
//!                         ▼                               writer threads
//!                      replies (Ack/Busy/Reject) on the same stream
//! ```
//!
//! Robustness properties, each held by a dedicated mechanism and proven
//! by `tests/daemon_chaos.rs`:
//!
//! * **Malformed input cannot kill a connection** — the
//!   [`Decoder`] resynchronizes and every skipped
//!   byte-run is answered with a `Reject` frame and counted.
//! * **A panicking tenant cannot take the daemon down** — each tenant's
//!   pipeline runs on its own shard thread; a dead shard is detected at
//!   the channel seam, reaped via `JoinHandle::join`, and attributed
//!   with the engine supervisor protocol
//!   ([`Supervisor::on_worker_panic`]). Other tenants never notice.
//! * **A slow subscriber cannot wedge publishers** — incidents flow
//!   through per-subscriber [`BoundedBuf`]s; the publisher never blocks,
//!   evictions are counted, and the writer thread drains what survives.
//! * **Overload is shed, not absorbed** — a full shard queue yields a
//!   `Busy` reply with a retry hint instead of unbounded buffering.
//! * **Idle connections are reaped** — a [`Watchdog`] on the shared
//!   monotonic-clock helper closes connections that go silent.
//! * **Shutdown is graceful** — a `Drain` frame (or
//!   [`DaemonHandle::shutdown`]) stops the listener, joins connections,
//!   drains every shard, and renders the final [`ServeReport`].

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hydra_engine::protocol::{ProtocolVariant, Supervisor, WorkerMsg};
use hydra_engine::CellOutcome;
use hydra_profiler::{phase, ProfileTree, SpanSink, TreeProfiler};
use hydra_telemetry::BoundedBuf;
use hydra_types::{Deadline, MemGeometry, Stopwatch, Watchdog};

use crate::frame::{valid_tenant_name, DecodeEvent, Decoder, Frame, RejectReason};
use crate::session::{RecordedBatch, Session};
use crate::stats::{render_stats_json, MetricsSink, NoopMetrics, ServeMetrics, ServeStats};
use crate::tenant::{TenantPipeline, TenantSummary};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to bind.
    pub socket_path: PathBuf,
    /// Geometry name (`tiny` or `isca22`); must resolve via
    /// [`crate::session::geometry_by_name`].
    pub geometry_name: String,
    /// Memory geometry every tenant pipeline is built on.
    pub geometry: MemGeometry,
    /// Row-hammer threshold for every tenant tracker.
    pub t_rh: u32,
    /// Most tenants the daemon will host; further `Hello`s are shed.
    pub max_tenants: usize,
    /// Batches a tenant shard may have queued before `Busy` shedding.
    pub shard_queue: usize,
    /// Incident frames buffered per subscriber before eviction.
    pub subscriber_queue: usize,
    /// Idle watchdog: a connection silent this long is closed.
    pub idle_timeout: Duration,
    /// Read-poll granularity (bounds shutdown and watchdog latency).
    pub poll_interval: Duration,
    /// Retry hint carried in `Busy` replies, in milliseconds.
    pub busy_retry_ms: u32,
    /// Honor chaos `Crash` frames (deliberate shard panics). Off by
    /// default: a stray `Crash` is answered `Reject(not-allowed)`.
    pub allow_crash_frames: bool,
    /// Record accepted batches and outputs for session replay.
    pub record: bool,
    /// Enable the live metrics plane ([`ServeMetrics`]): latency
    /// histograms and per-tenant counters served via `StatsRequest`.
    /// Off by default — the bare daemon pays zero sampling cost, and
    /// the chaos suite proves enabling it keeps outputs digest-identical.
    pub metrics: bool,
    /// Enable per-shard span profiling: each tenant shard records an
    /// `ingest`/`publish` call tree (one thread-local profiler per shard),
    /// merged order-insensitively into [`ServeReport::profile`] at drain.
    /// Off by default — the bare daemon never reads the clock here.
    pub profile: bool,
}

impl ServeConfig {
    /// A config with production defaults on the given socket/geometry.
    pub fn new(socket_path: impl Into<PathBuf>, geometry_name: &str, t_rh: u32) -> Option<Self> {
        let geometry = crate::session::geometry_by_name(geometry_name)?;
        Some(ServeConfig {
            socket_path: socket_path.into(),
            geometry_name: geometry_name.to_string(),
            geometry,
            t_rh,
            max_tenants: 16,
            shard_queue: 8,
            subscriber_queue: 256,
            idle_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
            busy_retry_ms: 20,
            allow_crash_frames: false,
            record: false,
            metrics: false,
            profile: false,
        })
    }
}

/// A tenant shard that died by panic, attributed via the supervisor
/// protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// Tenant whose shard panicked.
    pub tenant: String,
    /// Recovered panic payload message.
    pub message: String,
}

/// Everything a daemon run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Monotonic counters.
    pub stats: ServeStats,
    /// Surviving tenants' canonical summaries, sorted by name.
    pub tenants: Vec<TenantSummary>,
    /// Panicked tenant shards, sorted by name.
    pub crashed: Vec<CrashReport>,
    /// The recorded session, when [`ServeConfig::record`] was set.
    pub session: Option<Session>,
    /// Per-shard `ingest`/`publish` call trees merged across every tenant
    /// shard that drained cleanly, when [`ServeConfig::profile`] was set.
    pub profile: Option<ProfileTree>,
}

impl ServeReport {
    /// The summary for one tenant, if it survived to drain.
    pub fn tenant(&self, name: &str) -> Option<&TenantSummary> {
        self.tenants.iter().find(|t| t.tenant == name)
    }

    /// Grep-friendly exit report: stats counters, per-tenant summary
    /// lines, and crash attributions.
    pub fn to_kv_lines(&self) -> String {
        let mut out = self.stats.to_kv_lines();
        for t in &self.tenants {
            out.push_str(&format!("serve.tenant {}\n", t.summary_line));
        }
        for c in &self.crashed {
            out.push_str(&format!(
                "serve.crashed tenant={} message={:?}\n",
                c.tenant, c.message
            ));
        }
        out
    }
}

enum ShardMsg {
    Batch {
        seq: u64,
        rows: Vec<u64>,
        reply: SyncSender<Result<(u64, u32), RejectReason>>,
        /// Queue-wait stamp; `None` when metrics are off (zero-cost seam:
        /// the bare daemon never reads the clock here).
        enqueued_at: Option<Stopwatch>,
    },
    Crash,
    Drain,
}

struct ShardDone {
    summary: TenantSummary,
    record: Vec<RecordedBatch>,
    /// The shard's span tree, when profiling was on. The `TreeProfiler`
    /// itself never leaves the shard thread (it is deliberately not
    /// `Send`); only this exported tree crosses to the drain.
    profile: Option<ProfileTree>,
}

struct TenantEntry {
    index: usize,
    tx: Option<SyncSender<ShardMsg>>, // None once crashed
    join: Option<JoinHandle<ShardDone>>,
}

struct TenantTable {
    entries: HashMap<String, TenantEntry>,
    names: Vec<String>, // by supervisor index
}

/// One subscriber's bounded queue. Publishers push (never block, evict
/// oldest); the subscriber's writer thread pops and writes.
struct SubQueue {
    state: Mutex<BoundedBuf<Vec<u8>>>,
    cv: Condvar,
    closed: AtomicBool,
}

impl SubQueue {
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Enqueues one out-of-band frame (e.g. a `StatsSnapshot` reply) for
    /// the owning writer thread. Non-blocking: bounded push + notify, so
    /// routing a stats reply through here can never wedge anything.
    fn push_frame(&self, bytes: Vec<u8>) {
        if self.closed.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(mut state) = self.state.lock() {
            state.push(bytes);
        }
        self.cv.notify_one();
    }
}

struct Hub {
    subs: Mutex<Vec<Arc<SubQueue>>>,
}

impl Hub {
    /// Fans `bytes` out to every live subscriber queue. Returns the
    /// `(enqueued, evicted)` deltas for this publish so the caller can
    /// fold them into [`ServeStats`] *live* — mid-run snapshots see
    /// subscriber accounting as it happens, not only at drain.
    fn publish(&self, bytes: &[u8]) -> (u64, u64) {
        let (mut enqueued, mut evicted) = (0, 0);
        if let Ok(subs) = self.subs.lock() {
            for sub in subs.iter() {
                if sub.closed.load(Ordering::SeqCst) {
                    continue;
                }
                if let Ok(mut state) = sub.state.lock() {
                    if state.push(bytes.to_vec()).is_some() {
                        evicted += 1;
                    }
                    enqueued += 1;
                }
                sub.cv.notify_one();
            }
        }
        (enqueued, evicted)
    }

    fn register(&self, capacity: usize) -> Arc<SubQueue> {
        let sub = Arc::new(SubQueue {
            state: Mutex::new(BoundedBuf::new(capacity)),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        if let Ok(mut subs) = self.subs.lock() {
            subs.push(Arc::clone(&sub));
        }
        sub
    }

    fn close_all(&self) {
        if let Ok(subs) = self.subs.lock() {
            for sub in subs.iter() {
                sub.close();
            }
        }
    }
}

struct Shared {
    config: ServeConfig,
    stats: Mutex<ServeStats>,
    /// The metrics seam: [`ServeMetrics`] when enabled, [`NoopMetrics`]
    /// otherwise. Never consulted for control flow.
    metrics: Box<dyn MetricsSink>,
    tenants: Mutex<TenantTable>,
    supervisor: Mutex<Supervisor<()>>,
    hub: Hub,
    shutdown: AtomicBool,
    conn_joins: Mutex<Vec<JoinHandle<()>>>,
    writer_joins: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn with_stats(&self, f: impl FnOnce(&mut ServeStats)) {
        if let Ok(mut stats) = self.stats.lock() {
            f(&mut stats);
        }
    }

    /// Builds the current `StatsSnapshot` payload: counters cloned and
    /// `stats_served` bumped under one lock acquisition, latency plane
    /// snapshotted from the metrics seam.
    fn stats_snapshot_json(&self) -> String {
        let stats = match self.stats.lock() {
            Ok(mut stats) => {
                let snap = stats.clone();
                stats.stats_served += 1;
                snap
            }
            Err(_) => ServeStats::default(),
        };
        render_stats_json(&stats, self.metrics.snapshot().as_ref())
    }
}

/// Handle to a spawned daemon.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    listener_join: JoinHandle<ServeReport>,
}

impl DaemonHandle {
    /// Path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.shared.config.socket_path
    }

    /// Blocks until the daemon exits (a client sends `Drain`, or
    /// [`shutdown`](Self::shutdown) was called from another handle).
    ///
    /// # Errors
    ///
    /// Returns an error if the daemon control thread itself panicked —
    /// which the chaos suite asserts never happens.
    pub fn join(self) -> Result<ServeReport, String> {
        self.listener_join
            .join()
            .map_err(|_| "daemon control thread panicked".to_string())
    }

    /// Requests a graceful drain and waits for the final report.
    ///
    /// # Errors
    ///
    /// Same as [`join`](Self::join).
    pub fn shutdown(self) -> Result<ServeReport, String> {
        request_shutdown(&self.shared);
        self.join()
    }
}

fn request_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Wake the blocking accept() with a throwaway connection.
    let _ = UnixStream::connect(&shared.config.socket_path);
}

/// Binds the socket and spawns the daemon.
///
/// # Errors
///
/// Returns an I/O error if the socket cannot be bound, or a
/// configuration error (as `InvalidInput`) if the geometry/threshold
/// combination cannot build a tenant pipeline.
pub fn spawn(config: ServeConfig) -> std::io::Result<DaemonHandle> {
    // Validate the tenant-pipeline recipe once, up front, so per-tenant
    // creation cannot fail later for configuration reasons.
    TenantPipeline::new("probe", config.geometry, config.t_rh)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
    // A stale socket file from a dead daemon would make bind fail.
    let _ = std::fs::remove_file(&config.socket_path);
    let listener = UnixListener::bind(&config.socket_path)?;
    let max_tenants = config.max_tenants;
    let metrics: Box<dyn MetricsSink> = if config.metrics {
        Box::new(ServeMetrics::new())
    } else {
        Box::new(NoopMetrics)
    };
    let shared = Arc::new(Shared {
        config,
        stats: Mutex::new(ServeStats::default()),
        metrics,
        tenants: Mutex::new(TenantTable {
            entries: HashMap::new(),
            names: Vec::new(),
        }),
        supervisor: Mutex::new(Supervisor::new(
            max_tenants,
            max_tenants,
            ProtocolVariant::Faithful,
        )),
        hub: Hub {
            subs: Mutex::new(Vec::new()),
        },
        shutdown: AtomicBool::new(false),
        conn_joins: Mutex::new(Vec::new()),
        writer_joins: Mutex::new(Vec::new()),
    });
    let shared_for_listener = Arc::clone(&shared);
    let listener_join = std::thread::Builder::new()
        .name("hydra-serve-listener".to_string())
        .spawn(move || listener_main(listener, shared_for_listener))?;
    Ok(DaemonHandle {
        shared,
        listener_join,
    })
}

fn listener_main(listener: UnixListener, shared: Arc<Shared>) -> ServeReport {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.with_stats(|s| s.connections += 1);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("hydra-serve-conn".to_string())
            .spawn(move || conn_main(stream, conn_shared));
        if let Ok(handle) = spawned {
            if let Ok(mut joins) = shared.conn_joins.lock() {
                joins.push(handle);
            }
        }
    }
    drain_and_report(&shared)
}

fn drain_and_report(shared: &Shared) -> ServeReport {
    // 1. Join every connection thread (they observe the shutdown flag
    //    within one poll interval). No new batches can arrive after.
    let conn_joins = match shared.conn_joins.lock() {
        Ok(mut joins) => std::mem::take(&mut *joins),
        Err(_) => Vec::new(),
    };
    for handle in conn_joins {
        let _ = handle.join();
    }
    // 2. Drain every live shard: send Drain, join, settle the outcome
    //    through the supervisor protocol.
    let entries = match shared.tenants.lock() {
        Ok(mut table) => std::mem::take(&mut table.entries),
        Err(_) => HashMap::new(),
    };
    let mut summaries = Vec::new();
    let mut records = Vec::new();
    // Order-insensitive tree merge: shards drain in HashMap order, but
    // `ProfileTree::merge` is commutative/associative (proptested in
    // hydra-profiler), so the merged profile does not depend on it.
    let mut profile = shared.config.profile.then(ProfileTree::new);
    for (_, entry) in entries {
        if let Some(tx) = entry.tx {
            let _ = tx.send(ShardMsg::Drain);
            drop(tx);
        }
        let Some(join) = entry.join else { continue };
        match join.join() {
            Ok(done) => {
                if let Ok(mut sup) = shared.supervisor.lock() {
                    sup.on_message(WorkerMsg::Done {
                        index: entry.index,
                        result: (),
                    });
                }
                summaries.push(done.summary);
                records.extend(done.record);
                if let (Some(acc), Some(tree)) = (profile.as_mut(), done.profile.as_ref()) {
                    acc.merge(tree);
                }
            }
            Err(payload) => {
                settle_panic(shared, entry.index, panic_message(payload));
            }
        }
    }
    summaries.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    // 3. Close the hub and join the writers. Subscriber accounting is
    //    folded into stats live at publish time (so mid-run snapshots
    //    are consistent); joining here only guarantees the queues have
    //    flushed before the report is assembled.
    shared.hub.close_all();
    let writer_joins = match shared.writer_joins.lock() {
        Ok(mut joins) => std::mem::take(&mut *joins),
        Err(_) => Vec::new(),
    };
    for handle in writer_joins {
        let _ = handle.join();
    }
    // 4. Assemble the report.
    let mut crashed = Vec::new();
    let names = match shared.tenants.lock() {
        Ok(table) => table.names.clone(),
        Err(_) => Vec::new(),
    };
    if let Ok(sup) = shared.supervisor.lock() {
        for (index, outcome) in sup.outcomes().iter().enumerate() {
            if let CellOutcome::Panicked(message) = outcome {
                let tenant = names
                    .get(index)
                    .cloned()
                    .unwrap_or_else(|| format!("tenant-index-{index}"));
                crashed.push(CrashReport {
                    tenant,
                    message: message.clone(),
                });
            }
        }
    }
    crashed.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let stats = match shared.stats.lock() {
        Ok(stats) => stats.clone(),
        Err(_) => ServeStats::default(),
    };
    let session = if shared.config.record {
        let mut session = Session {
            geometry: shared.config.geometry_name.clone(),
            t_rh: shared.config.t_rh,
            batches: records,
            outputs: summaries.clone(),
        };
        session.normalize();
        Some(session)
    } else {
        None
    };
    let _ = std::fs::remove_file(&shared.config.socket_path);
    ServeReport {
        stats,
        tenants: summaries,
        crashed,
        session,
        profile,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "opaque panic payload".to_string(),
        },
    }
}

fn settle_panic(shared: &Shared, index: usize, message: String) {
    if let Ok(mut sup) = shared.supervisor.lock() {
        sup.on_worker_panic(index, message);
    }
    shared.with_stats(|s| s.tenant_panics += 1);
}

/// Outcome of looking up (or creating) a tenant for `Hello`.
enum Registration {
    Ready(SyncSender<ShardMsg>),
    Crashed,
    Full,
}

fn register_tenant(shared: &Arc<Shared>, name: &str) -> Registration {
    let Ok(mut table) = shared.tenants.lock() else {
        return Registration::Full;
    };
    if let Some(entry) = table.entries.get(name) {
        return match &entry.tx {
            Some(tx) => Registration::Ready(tx.clone()),
            None => Registration::Crashed,
        };
    }
    if table.names.len() >= shared.config.max_tenants {
        return Registration::Full;
    }
    let Ok(pipeline) = TenantPipeline::new(name, shared.config.geometry, shared.config.t_rh) else {
        return Registration::Full; // recipe was validated at spawn; defensive
    };
    let index = table.names.len();
    let (tx, rx) = sync_channel::<ShardMsg>(shared.config.shard_queue);
    let shard_shared = Arc::clone(shared);
    let shard_name = name.to_string();
    let spawned = std::thread::Builder::new()
        .name(format!("hydra-shard-{name}"))
        .spawn(move || shard_main(shard_name, pipeline, rx, shard_shared));
    let Ok(join) = spawned else {
        return Registration::Full;
    };
    // Claim-before-compute: the supervisor learns which tenant this
    // shard slot runs before any batch executes, so a panic is
    // attributable even if it happens on the first message.
    if let Ok(mut sup) = shared.supervisor.lock() {
        sup.on_message(WorkerMsg::Claimed {
            worker: index,
            index,
        });
    }
    table.names.push(name.to_string());
    table.entries.insert(
        name.to_string(),
        TenantEntry {
            index,
            tx: Some(tx.clone()),
            join: Some(join),
        },
    );
    Registration::Ready(tx)
}

/// Marks a tenant crashed (its channel receiver is gone), reaps the
/// shard thread, and attributes the panic.
fn reap_tenant(shared: &Shared, name: &str) {
    let (index, join) = {
        let Ok(mut table) = shared.tenants.lock() else {
            return;
        };
        let Some(entry) = table.entries.get_mut(name) else {
            return;
        };
        if entry.tx.is_none() {
            return; // already reaped
        }
        entry.tx = None;
        (entry.index, entry.join.take())
    };
    let Some(join) = join else { return };
    match join.join() {
        Err(payload) => settle_panic(shared, index, panic_message(payload)),
        Ok(_) => {
            // A shard cannot return while the table still holds its
            // sender, so a clean exit here means a logic bug — record it
            // as a panic-equivalent so it is never silent.
            settle_panic(shared, index, "shard exited without drain".to_string());
        }
    }
}

fn shard_main(
    tenant: String,
    mut pipeline: TenantPipeline,
    rx: Receiver<ShardMsg>,
    shared: Arc<Shared>,
) -> ShardDone {
    let mut record = Vec::new();
    // One thread-local profiler per shard; only the exported tree leaves
    // this thread (the handle is deliberately not `Send`).
    let mut profiler = shared.config.profile.then(TreeProfiler::new);
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch {
                seq,
                rows,
                reply,
                enqueued_at,
            } => {
                if let Some(stamp) = enqueued_at {
                    shared.metrics.on_dequeue(&tenant, stamp.elapsed_micros());
                }
                if let Some(p) = profiler.as_mut() {
                    p.enter(phase::INGEST);
                }
                match pipeline.apply_batch(seq, &rows) {
                    Ok(outcome) => {
                        if shared.config.record {
                            record.push(RecordedBatch {
                                tenant: tenant.clone(),
                                seq,
                                rows,
                            });
                        }
                        // `incidents_published` is bumped *before* the hub
                        // enqueues anything and `subscriber_queued` only as
                        // queues actually accept, so `queued ≤ published`
                        // holds at every mid-run snapshot.
                        let incidents = outcome.new_incidents.len() as u64;
                        shared.with_stats(|s| s.incidents_published += incidents);
                        if incidents > 0 {
                            shared.metrics.on_incidents(&tenant, incidents);
                        }
                        let produced_at = shared.metrics.is_enabled().then(Stopwatch::start);
                        if let Some(p) = profiler.as_mut() {
                            p.enter(phase::PUBLISH);
                        }
                        for line in &outcome.new_incidents {
                            let frame = Frame::Incident {
                                tenant: tenant.clone(),
                                line: line.clone(),
                            };
                            let (enqueued, evicted) = shared.hub.publish(&frame.encode());
                            shared.with_stats(|s| {
                                s.subscriber_queued += enqueued;
                                s.subscriber_dropped += evicted;
                            });
                            if let Some(stamp) = produced_at {
                                shared.metrics.on_publish_lag(stamp.elapsed_micros());
                            }
                        }
                        if let Some(p) = profiler.as_mut() {
                            p.exit(phase::PUBLISH);
                        }
                        let _ = reply.send(Ok((seq, outcome.accepted)));
                    }
                    Err(reason) => {
                        let _ = reply.send(Err(reason));
                    }
                }
                if let Some(p) = profiler.as_mut() {
                    p.exit(phase::INGEST);
                }
            }
            ShardMsg::Crash => {
                // Deliberate chaos: prove the blast radius is one tenant.
                panic!("chaos crash frame for tenant {tenant}");
            }
            ShardMsg::Drain => break,
        }
    }
    ShardDone {
        summary: pipeline.finish(),
        record,
        profile: profiler.map(|p| p.tree()),
    }
}

fn write_frame(stream: &mut UnixStream, frame: &Frame) {
    // A peer that vanished mid-reply is not an error worth acting on;
    // its connection thread is about to see EOF anyway.
    let _ = stream.write_all(&frame.encode());
}

fn conn_main(mut stream: UnixStream, shared: Arc<Shared>) {
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
    {
        return;
    }
    let mut decoder = Decoder::new();
    let mut watchdog = Watchdog::new(shared.config.idle_timeout);
    let mut tenant: Option<(String, SyncSender<ShardMsg>)> = None;
    let mut sub_queue: Option<Arc<SubQueue>> = None;
    let mut buf = [0u8; 4096];
    'conn: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                watchdog.feed();
                decoder.push(&buf[..n]);
                while let Some(event) = decoder.next_event() {
                    let keep_going =
                        handle_event(&mut stream, &shared, &mut tenant, &mut sub_queue, event);
                    if !keep_going {
                        break 'conn;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Subscribers are output-driven: they legitimately never
                // send another byte, so the idle watchdog spares them.
                if sub_queue.is_none() && watchdog.poll() {
                    shared.with_stats(|s| s.idle_reaped += 1);
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // EOF or reap: account a torn trailing frame.
    // Dropping our read half is safe for subscribers: the writer thread
    // owns its own clone of the stream and outlives this thread.
    if let Some(DecodeEvent::Rejected { reason, .. }) = decoder.finish() {
        shared.with_stats(|s| s.record_reject(reason));
    }
}

/// Handles one decoded event. Returns `false` when the connection should
/// close.
fn handle_event(
    stream: &mut UnixStream,
    shared: &Arc<Shared>,
    tenant: &mut Option<(String, SyncSender<ShardMsg>)>,
    sub_queue: &mut Option<Arc<SubQueue>>,
    event: DecodeEvent,
) -> bool {
    let frame = match event {
        DecodeEvent::Rejected { reason, .. } => {
            shared.with_stats(|s| s.record_reject(reason));
            write_frame(stream, &Frame::Reject { reason });
            return true;
        }
        DecodeEvent::Frame(frame) => frame,
    };
    shared.with_stats(|s| s.frames_ok += 1);
    match frame {
        Frame::Hello { tenant: name } => {
            if !valid_tenant_name(&name) {
                reject(stream, shared, RejectReason::BadPayload);
                return true;
            }
            match register_tenant(shared, &name) {
                Registration::Ready(tx) => {
                    *tenant = Some((name, tx));
                    write_frame(
                        stream,
                        &Frame::Ack {
                            seq: 0,
                            accepted: 0,
                        },
                    );
                }
                Registration::Crashed => reject(stream, shared, RejectReason::NotAllowed),
                Registration::Full => busy(stream, shared),
            }
        }
        Frame::Batch { seq, rows } => {
            let Some((name, tx)) = tenant.as_ref() else {
                reject(stream, shared, RejectReason::NotAllowed);
                return true;
            };
            // Metrics stamps are taken only when enabled, so the bare
            // daemon never reads the clock on this path.
            let ingest_at = shared.metrics.is_enabled().then(Stopwatch::start);
            let (reply_tx, reply_rx) = sync_channel(1);
            let msg = ShardMsg::Batch {
                seq,
                rows,
                reply: reply_tx,
                enqueued_at: ingest_at,
            };
            // Seam accounting: `offered` and its outcome (`enqueued`,
            // `shed` or `refused`) move in one critical section, so the
            // conservation identity holds at every mid-run snapshot.
            match tx.try_send(msg) {
                Ok(()) => {
                    shared.with_stats(|s| {
                        s.batches_offered += 1;
                        s.batches_enqueued += 1;
                    });
                    shared.metrics.on_enqueue(name);
                }
                Err(TrySendError::Full(_)) => {
                    shared.with_stats(|s| {
                        s.batches_offered += 1;
                        s.batches_shed += 1;
                        s.busy_shed += 1;
                    });
                    shared.metrics.on_shed(name);
                    write_frame(
                        stream,
                        &Frame::Busy {
                            retry_after_ms: shared.config.busy_retry_ms,
                        },
                    );
                    return true;
                }
                Err(TrySendError::Disconnected(_)) => {
                    shared.with_stats(|s| {
                        s.batches_offered += 1;
                        s.batches_refused += 1;
                    });
                    let name = name.clone();
                    reap_tenant(shared, &name);
                    *tenant = None;
                    reject(stream, shared, RejectReason::NotAllowed);
                    return true;
                }
            }
            // The shard normally answers promptly; a panic mid-batch
            // drops the reply sender and recv fails fast. The deadline
            // only guards against a pathologically stalled shard.
            let deadline = Deadline::after(shared.config.idle_timeout);
            match reply_rx.recv_timeout(deadline.remaining()) {
                Ok(Ok((seq, accepted))) => {
                    // Accepted-batch accounting happens here, after the
                    // enqueue accounting on this same thread, so
                    // `batches_accepted ≤ batches_enqueued` can never be
                    // observed violated by a concurrent snapshot.
                    shared.with_stats(|s| {
                        s.batches_accepted += 1;
                        s.rows_accepted += u64::from(accepted);
                    });
                    write_frame(stream, &Frame::Ack { seq, accepted });
                    if let Some(stamp) = ingest_at {
                        shared.metrics.on_batch_acked(
                            name,
                            u64::from(accepted),
                            stamp.elapsed_micros(),
                        );
                    }
                }
                Ok(Err(reason)) => reject(stream, shared, reason),
                Err(_) => {
                    let name = name.clone();
                    reap_tenant(shared, &name);
                    *tenant = None;
                    reject(stream, shared, RejectReason::NotAllowed);
                }
            }
        }
        Frame::Subscribe => {
            if sub_queue.is_some() {
                write_frame(
                    stream,
                    &Frame::Ack {
                        seq: 0,
                        accepted: 0,
                    },
                );
                return true;
            }
            let Ok(writer_stream) = stream.try_clone() else {
                reject(stream, shared, RejectReason::NotAllowed);
                return true;
            };
            let queue = shared.hub.register(shared.config.subscriber_queue);
            let writer_queue = Arc::clone(&queue);
            let spawned = std::thread::Builder::new()
                .name("hydra-serve-sub".to_string())
                .spawn(move || subscriber_writer(writer_stream, writer_queue));
            match spawned {
                Ok(handle) => {
                    if let Ok(mut joins) = shared.writer_joins.lock() {
                        joins.push(handle);
                    }
                    *sub_queue = Some(queue);
                    write_frame(
                        stream,
                        &Frame::Ack {
                            seq: 0,
                            accepted: 0,
                        },
                    );
                }
                Err(_) => reject(stream, shared, RejectReason::NotAllowed),
            }
        }
        Frame::StatsRequest => {
            let frame = Frame::StatsSnapshot {
                json: shared.stats_snapshot_json(),
            };
            match sub_queue.as_ref() {
                // On a subscriber connection the writer thread owns the
                // stream clone: route the reply through its queue so it
                // never interleaves with an incident frame mid-write and
                // never blocks the publisher (bounded push + notify).
                Some(queue) => queue.push_frame(frame.encode()),
                None => write_frame(stream, &frame),
            }
        }
        Frame::Crash => {
            if !shared.config.allow_crash_frames {
                reject(stream, shared, RejectReason::NotAllowed);
                return true;
            }
            let Some((_, tx)) = tenant.as_ref() else {
                reject(stream, shared, RejectReason::NotAllowed);
                return true;
            };
            let _ = tx.try_send(ShardMsg::Crash);
            write_frame(
                stream,
                &Frame::Ack {
                    seq: 0,
                    accepted: 0,
                },
            );
        }
        Frame::Drain => {
            write_frame(
                stream,
                &Frame::Ack {
                    seq: 0,
                    accepted: 0,
                },
            );
            request_shutdown(shared);
            return false;
        }
        // Server-to-client frames arriving at the server are protocol
        // violations from a confused or hostile peer.
        Frame::Ack { .. }
        | Frame::Busy { .. }
        | Frame::Reject { .. }
        | Frame::Incident { .. }
        | Frame::StatsSnapshot { .. } => {
            reject(stream, shared, RejectReason::NotAllowed);
        }
    }
    true
}

fn reject(stream: &mut UnixStream, shared: &Shared, reason: RejectReason) {
    shared.with_stats(|s| s.record_reject(reason));
    write_frame(stream, &Frame::Reject { reason });
}

fn busy(stream: &mut UnixStream, shared: &Shared) {
    shared.with_stats(|s| s.busy_shed += 1);
    write_frame(
        stream,
        &Frame::Busy {
            retry_after_ms: shared.config.busy_retry_ms,
        },
    );
}

/// Drains a subscriber's bounded queue onto its stream. Queue accounting
/// is folded into [`ServeStats`] live at publish time, so this thread
/// only moves bytes.
fn subscriber_writer(mut stream: UnixStream, queue: Arc<SubQueue>) {
    loop {
        let item = {
            let Ok(mut state) = queue.state.lock() else {
                break;
            };
            loop {
                if let Some(bytes) = state.pop() {
                    break Some(bytes);
                }
                if queue.closed.load(Ordering::SeqCst) {
                    break None;
                }
                state = match queue.cv.wait(state) {
                    Ok(guard) => guard,
                    Err(_) => break None,
                };
            }
            // Lock is released here, before the (possibly slow) write.
        };
        match item {
            Some(bytes) => {
                if stream.write_all(&bytes).is_err() {
                    queue.close(); // peer gone: stop buffering for it
                    break;
                }
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> Hub {
        Hub {
            subs: Mutex::new(Vec::new()),
        }
    }

    #[test]
    fn hub_publish_evicts_oldest_and_accounts_without_blocking() {
        let hub = hub();
        let sub = hub.register(2);
        for i in 0..5u8 {
            hub.publish(&[i]);
        }
        let mut state = sub.state.lock().expect("queue lock");
        assert_eq!(state.pushed(), 5, "every publish is accounted");
        assert_eq!(state.dropped(), 3, "evictions are accounted, not silent");
        assert_eq!(state.pop(), Some(vec![3]));
        assert_eq!(state.pop(), Some(vec![4]));
        assert_eq!(state.pop(), None, "only the newest survive eviction");
    }

    #[test]
    fn closed_subscriber_stops_accumulating() {
        let hub = hub();
        let sub = hub.register(4);
        hub.publish(&[1]);
        sub.close();
        hub.publish(&[2]);
        let mut state = sub.state.lock().expect("queue lock");
        assert_eq!(state.pushed(), 1);
        assert_eq!(state.pop(), Some(vec![1]));
        assert_eq!(state.pop(), None);
    }
}
