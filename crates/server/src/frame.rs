//! The `hydra-serve-v1` wire protocol: a versioned, checksummed,
//! length-prefixed frame codec that survives hostile bytes.
//!
//! Every frame is `[magic "HY"] [version] [kind] [payload len, u32 LE]
//! [FNV-1a checksum, u32 LE] [payload]` — a 12-byte header. The
//! checksum covers the version and kind bytes as well as the payload, so
//! a single corrupted bit anywhere semantic (including a kind byte that
//! would otherwise morph one valid frame into another) is detected.
//! The codec's contract, proven by the proptests and fuzz corpus in
//! `tests/frame_codec.rs`:
//!
//! * `decode(encode(f)) == f` for every representable frame;
//! * the [`Decoder`] **never panics** on arbitrary byte soup;
//! * a malformed frame (bad magic, wrong version, unknown kind, oversize
//!   length, checksum mismatch, unparseable payload) is surfaced as a
//!   [`DecodeEvent::Rejected`] with a [`RejectReason`] and the connection
//!   keeps decoding — the decoder resynchronizes on the next magic bytes
//!   instead of dying;
//! * bytes left over at end-of-stream are reported as
//!   [`RejectReason::Truncated`], so a client killed mid-frame is
//!   accounted, not silently swallowed.
//!
//! Payload limits ([`MAX_PAYLOAD`], [`MAX_BATCH_ROWS`],
//! [`MAX_TENANT_LEN`]) bound what one frame can make the daemon buffer:
//! backpressure is enforced per frame before any allocation trusts the
//! attacker-controlled length field.

/// Schema identifier of the serve wire protocol and its recorded session
/// files.
///
/// This is the single definition of the literal; `repo-lint` enforces
/// that no other library source repeats it.
pub const SERVE_SCHEMA_VERSION: &str = "hydra-serve-v1";

/// Frame magic: ASCII `HY`.
pub const WIRE_MAGIC: [u8; 2] = [0x48, 0x59];

/// Wire protocol version byte.
pub const WIRE_VERSION: u8 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Largest accepted payload. A length field above this is rejected
/// *before* any buffering, so a hostile header cannot make the daemon
/// allocate gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Most packed rows one activation batch may carry.
pub const MAX_BATCH_ROWS: usize = 65_536;

/// Longest accepted tenant name, in bytes.
pub const MAX_TENANT_LEN: usize = 64;

/// Why a byte sequence was rejected by the decoder (or a frame by the
/// daemon's semantic checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Bytes did not start with the frame magic.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion,
    /// Unknown frame kind.
    BadKind,
    /// Payload length exceeds [`MAX_PAYLOAD`].
    Oversize,
    /// Payload checksum mismatch (corruption in flight).
    BadChecksum,
    /// Payload structure failed to parse.
    BadPayload,
    /// Stream ended mid-frame.
    Truncated,
    /// Batch sequence number was not strictly increasing (duplicate or
    /// replayed frame).
    BadSequence,
    /// Frame kind is valid but not permitted on this connection (e.g.
    /// `Crash` without the daemon's chaos flag).
    NotAllowed,
}

impl RejectReason {
    /// All reasons, in wire-code order.
    pub const ALL: [RejectReason; 9] = [
        RejectReason::BadMagic,
        RejectReason::BadVersion,
        RejectReason::BadKind,
        RejectReason::Oversize,
        RejectReason::BadChecksum,
        RejectReason::BadPayload,
        RejectReason::Truncated,
        RejectReason::BadSequence,
        RejectReason::NotAllowed,
    ];

    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            RejectReason::BadMagic => 0,
            RejectReason::BadVersion => 1,
            RejectReason::BadKind => 2,
            RejectReason::Oversize => 3,
            RejectReason::BadChecksum => 4,
            RejectReason::BadPayload => 5,
            RejectReason::Truncated => 6,
            RejectReason::BadSequence => 7,
            RejectReason::NotAllowed => 8,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<Self> {
        RejectReason::ALL.get(usize::from(code)).copied()
    }

    /// Stable kebab-case name (telemetry counter key).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::BadMagic => "bad-magic",
            RejectReason::BadVersion => "bad-version",
            RejectReason::BadKind => "bad-kind",
            RejectReason::Oversize => "oversize",
            RejectReason::BadChecksum => "bad-checksum",
            RejectReason::BadPayload => "bad-payload",
            RejectReason::Truncated => "truncated",
            RejectReason::BadSequence => "bad-sequence",
            RejectReason::NotAllowed => "not-allowed",
        }
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → daemon: open a tenant ingest stream.
    Hello {
        /// Tenant name (1–[`MAX_TENANT_LEN`] bytes of `[A-Za-z0-9_-]`,
        /// validated by the daemon).
        tenant: String,
    },
    /// Client → daemon: one activation batch of packed rows (see
    /// `hydra_forensics::pack_row`). `seq` must be strictly increasing
    /// per tenant; duplicates are rejected with
    /// [`RejectReason::BadSequence`], which is what makes wire-level
    /// frame duplication harmless.
    Batch {
        /// Per-tenant, strictly increasing batch sequence number.
        seq: u64,
        /// Packed row addresses to activate, in order.
        rows: Vec<u64>,
    },
    /// Client → daemon: this connection wants the incident feed.
    Subscribe,
    /// Daemon → client: batch `seq` was accepted with `accepted` rows.
    Ack {
        /// Echo of the accepted batch's sequence number.
        seq: u64,
        /// Rows actually applied.
        accepted: u32,
    },
    /// Daemon → client: overloaded, retry after the hinted backoff.
    Busy {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// Daemon → client: the previous bytes/frame were rejected.
    Reject {
        /// Why.
        reason: RejectReason,
    },
    /// Daemon → subscriber: one `hydra-forensics-v1` incident line.
    Incident {
        /// Tenant the incident belongs to.
        tenant: String,
        /// The incident's JSONL line, verbatim.
        line: String,
    },
    /// Client → daemon: deliberately panic this tenant's shard (chaos
    /// testing; honored only when the daemon runs with
    /// `allow_crash_frames`).
    Crash,
    /// Client → daemon: drain and shut down gracefully.
    Drain,
    /// Client → daemon: request a live [`StatsSnapshot`](Frame::StatsSnapshot).
    /// Allowed on any connection; on subscriber connections the reply is
    /// routed through the subscriber queue so it never interleaves with
    /// incident frames or blocks the publisher.
    StatsRequest,
    /// Daemon → client: a point-in-time stats snapshot.
    StatsSnapshot {
        /// The `hydra-serve-stats-v1` JSON payload (see
        /// [`crate::stats::SERVE_STATS_SCHEMA_VERSION`]).
        json: String,
    },
}

impl Frame {
    /// Stable wire kind code.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Batch { .. } => 2,
            Frame::Subscribe => 3,
            Frame::Ack { .. } => 4,
            Frame::Busy { .. } => 5,
            Frame::Reject { .. } => 6,
            Frame::Incident { .. } => 7,
            Frame::Crash => 8,
            Frame::Drain => 9,
            Frame::StatsRequest => 10,
            Frame::StatsSnapshot { .. } => 11,
        }
    }

    /// Encodes the frame: header + payload.
    ///
    /// Strings longer than their field width and batches above
    /// [`MAX_BATCH_ROWS`] are truncated to the maximum — the encoder
    /// never produces a frame its own decoder would reject for size.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&frame_checksum(WIRE_VERSION, self.kind(), &payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { tenant } => {
                put_str16(&mut out, tenant, MAX_TENANT_LEN);
            }
            Frame::Batch { seq, rows } => {
                out.extend_from_slice(&seq.to_le_bytes());
                let n = rows.len().min(MAX_BATCH_ROWS);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                for row in rows.iter().take(n) {
                    out.extend_from_slice(&row.to_le_bytes());
                }
            }
            Frame::Subscribe | Frame::Crash | Frame::Drain | Frame::StatsRequest => {}
            Frame::Ack { seq, accepted } => {
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&accepted.to_le_bytes());
            }
            Frame::Busy { retry_after_ms } => {
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Frame::Reject { reason } => {
                out.push(reason.code());
            }
            Frame::Incident { tenant, line } => {
                put_str16(&mut out, tenant, MAX_TENANT_LEN);
                let budget = MAX_PAYLOAD - out.len() - 4;
                put_str32(&mut out, line, budget);
            }
            Frame::StatsSnapshot { json } => {
                put_str32(&mut out, json, MAX_PAYLOAD - 4);
            }
        }
        out
    }

    fn parse(kind: u8, payload: &[u8]) -> Result<Frame, RejectReason> {
        let mut r = Reader::new(payload);
        let frame = match kind {
            1 => Frame::Hello {
                tenant: r.str16(MAX_TENANT_LEN)?,
            },
            2 => {
                let seq = r.u64()?;
                let n = r.u32()? as usize;
                if n > MAX_BATCH_ROWS || n != r.remaining() / 8 {
                    return Err(RejectReason::BadPayload);
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(r.u64()?);
                }
                Frame::Batch { seq, rows }
            }
            3 => Frame::Subscribe,
            4 => Frame::Ack {
                seq: r.u64()?,
                accepted: r.u32()?,
            },
            5 => Frame::Busy {
                retry_after_ms: r.u32()?,
            },
            6 => Frame::Reject {
                reason: RejectReason::from_code(r.u8()?).ok_or(RejectReason::BadPayload)?,
            },
            7 => {
                let tenant = r.str16(MAX_TENANT_LEN)?;
                Frame::Incident {
                    tenant,
                    line: r.str32()?,
                }
            }
            8 => Frame::Crash,
            9 => Frame::Drain,
            10 => Frame::StatsRequest,
            11 => Frame::StatsSnapshot { json: r.str32()? },
            _ => return Err(RejectReason::BadKind),
        };
        r.done()?;
        Ok(frame)
    }
}

/// True iff `kind` is a known frame kind code.
fn known_kind(kind: u8) -> bool {
    (1..=11).contains(&kind)
}

/// What [`Decoder::next_event`] yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeEvent {
    /// A well-formed frame.
    Frame(Frame),
    /// Malformed bytes were skipped; decoding continues after them.
    Rejected {
        /// Why the bytes were rejected.
        reason: RejectReason,
        /// How many bytes were discarded.
        skipped: usize,
    },
}

/// Incremental, resynchronizing frame decoder.
///
/// Feed bytes with [`push`](Decoder::push), drain events with
/// [`next_event`](Decoder::next_event) until it returns `None` (= need more bytes),
/// and call [`finish`](Decoder::finish) at end-of-stream to account any
/// torn tail. Total buffered bytes stay bounded by
/// `HEADER_LEN + MAX_PAYLOAD` plus one read's worth of input: headers
/// claiming more than [`MAX_PAYLOAD`] are rejected without waiting for
/// their payload.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
}

impl Decoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends raw bytes from the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Decodes the next event, or `None` if more bytes are needed.
    pub fn next_event(&mut self) -> Option<DecodeEvent> {
        if self.buf.is_empty() {
            return None;
        }
        // Resynchronize: if the buffer does not start with the magic,
        // skip to the next candidate magic byte and report the junk run.
        if self.buf[0] != WIRE_MAGIC[0] || (self.buf.len() >= 2 && self.buf[1] != WIRE_MAGIC[1]) {
            let skip = self.buf[1..]
                .iter()
                .position(|&b| b == WIRE_MAGIC[0])
                .map_or(self.buf.len(), |p| p + 1);
            self.buf.drain(..skip);
            return Some(DecodeEvent::Rejected {
                reason: RejectReason::BadMagic,
                skipped: skip,
            });
        }
        if self.buf.len() < HEADER_LEN {
            return None; // plausible header still arriving
        }
        let version = self.buf[2];
        let kind = self.buf[3];
        let len = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) as usize;
        // Header-field rejections skip only the magic: the rest of the
        // header is untrusted, so resync rescans it for a genuine frame.
        if version != WIRE_VERSION {
            return Some(self.reject_resync(RejectReason::BadVersion));
        }
        if !known_kind(kind) {
            return Some(self.reject_resync(RejectReason::BadKind));
        }
        if len > MAX_PAYLOAD {
            return Some(self.reject_resync(RejectReason::Oversize));
        }
        if self.buf.len() < HEADER_LEN + len {
            return None; // payload still arriving
        }
        let checksum = u32::from_le_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]]);
        let payload = &self.buf[HEADER_LEN..HEADER_LEN + len];
        if frame_checksum(version, kind, payload) != checksum {
            let total = HEADER_LEN + len;
            self.buf.drain(..total);
            return Some(DecodeEvent::Rejected {
                reason: RejectReason::BadChecksum,
                skipped: total,
            });
        }
        let parsed = Frame::parse(kind, payload);
        let total = HEADER_LEN + len;
        self.buf.drain(..total);
        match parsed {
            Ok(frame) => Some(DecodeEvent::Frame(frame)),
            Err(reason) => Some(DecodeEvent::Rejected {
                reason,
                skipped: total,
            }),
        }
    }

    /// Ends the stream: any buffered partial frame is reported as
    /// [`RejectReason::Truncated`] and discarded.
    pub fn finish(&mut self) -> Option<DecodeEvent> {
        if self.buf.is_empty() {
            return None;
        }
        let skipped = self.buf.len();
        self.buf.clear();
        Some(DecodeEvent::Rejected {
            reason: RejectReason::Truncated,
            skipped,
        })
    }

    fn reject_resync(&mut self, reason: RejectReason) -> DecodeEvent {
        self.buf.drain(..WIRE_MAGIC.len());
        DecodeEvent::Rejected {
            reason,
            skipped: WIRE_MAGIC.len(),
        }
    }
}

/// 32-bit FNV-1a over `bytes` — cheap, dependency-free checksum core.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    fnv1a32_update(0x811c_9dc5, bytes)
}

fn fnv1a32_update(mut hash: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// The frame checksum: FNV-1a over `[version, kind]` followed by the
/// payload. Covering the header's semantic bytes means a bit flip that
/// rewrites the frame kind cannot silently produce a different valid
/// frame.
pub fn frame_checksum(version: u8, kind: u8, payload: &[u8]) -> u32 {
    fnv1a32_update(fnv1a32(&[version, kind]), payload)
}

fn put_str16(out: &mut Vec<u8>, s: &str, max: usize) {
    let bytes = truncate_utf8(s, max);
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_str32(out: &mut Vec<u8>, s: &str, max: usize) {
    let bytes = truncate_utf8(s, max);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// The longest prefix of `s` that fits in `max` bytes, cut on a char
/// boundary so the result stays valid UTF-8 (the decoder re-validates).
fn truncate_utf8(s: &str, max: usize) -> &[u8] {
    let mut end = s.len().min(max);
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s.as_bytes()[..end]
}

/// Bounds-checked little-endian payload reader; every read that would
/// run past the end returns `Err(BadPayload)` instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], RejectReason> {
        if self.remaining() < n {
            return Err(RejectReason::BadPayload);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, RejectReason> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RejectReason> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, RejectReason> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn u16(&mut self) -> Result<u16, RejectReason> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn str16(&mut self, max: usize) -> Result<String, RejectReason> {
        let len = usize::from(self.u16()?);
        if len > max {
            return Err(RejectReason::BadPayload);
        }
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RejectReason::BadPayload)
    }

    fn str32(&mut self) -> Result<String, RejectReason> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RejectReason::BadPayload)
    }

    fn done(&self) -> Result<(), RejectReason> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(RejectReason::BadPayload)
        }
    }
}

/// True iff `name` is a valid tenant name: 1–[`MAX_TENANT_LEN`] bytes of
/// ASCII alphanumerics, `-` or `_`. Keeps tenant names safe to embed in
/// session files, socket logs and JSON without escaping.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut d = Decoder::new();
        d.push(&frame.encode());
        assert_eq!(d.next_event(), Some(DecodeEvent::Frame(frame)));
        assert_eq!(d.next_event(), None);
        assert_eq!(d.finish(), None);
    }

    #[test]
    fn every_kind_round_trips() {
        round_trip(Frame::Hello {
            tenant: "tenant-0".to_string(),
        });
        round_trip(Frame::Batch {
            seq: 7,
            rows: vec![0, u64::MAX, 0x0001_0203_0405_0607],
        });
        round_trip(Frame::Subscribe);
        round_trip(Frame::Ack {
            seq: 9,
            accepted: 512,
        });
        round_trip(Frame::Busy { retry_after_ms: 25 });
        round_trip(Frame::Reject {
            reason: RejectReason::BadChecksum,
        });
        round_trip(Frame::Incident {
            tenant: "t".to_string(),
            line: "{\"x\":1}".to_string(),
        });
        round_trip(Frame::Crash);
        round_trip(Frame::Drain);
        round_trip(Frame::StatsRequest);
        round_trip(Frame::StatsSnapshot {
            json: "{\"schema\":\"x\",\"counters\":{}}".to_string(),
        });
    }

    #[test]
    fn stats_snapshot_payload_is_length_prefixed_utf8() {
        let json = "{\"tenant\":\"行列積\"}".to_string();
        round_trip(Frame::StatsSnapshot { json: json.clone() });
        // A non-UTF-8 payload body must reject, not panic.
        let mut bytes = Frame::StatsSnapshot { json }.encode();
        let last = bytes.len() - 1;
        bytes[last] = 0xff; // snap a multibyte char
        let checksum = frame_checksum(WIRE_VERSION, 11, &bytes[HEADER_LEN..]);
        bytes[8..12].copy_from_slice(&checksum.to_le_bytes());
        let mut d = Decoder::new();
        d.push(&bytes);
        assert!(matches!(
            d.next_event(),
            Some(DecodeEvent::Rejected {
                reason: RejectReason::BadPayload,
                ..
            })
        ));
    }

    #[test]
    fn stats_request_payload_must_be_empty() {
        let mut bytes = Frame::StatsRequest.encode();
        bytes.extend_from_slice(&[0xab]); // trailing garbage byte
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let checksum = frame_checksum(WIRE_VERSION, 10, &[0xab]);
        bytes[8..12].copy_from_slice(&checksum.to_le_bytes());
        let mut d = Decoder::new();
        d.push(&bytes);
        assert!(matches!(
            d.next_event(),
            Some(DecodeEvent::Rejected {
                reason: RejectReason::BadPayload,
                ..
            })
        ));
    }

    #[test]
    fn split_delivery_reassembles() {
        let frame = Frame::Batch {
            seq: 3,
            rows: (0..100).collect(),
        };
        let encoded = frame.encode();
        let mut d = Decoder::new();
        for byte in &encoded {
            assert_eq!(d.next_event(), None, "no event until the frame completes");
            d.push(&[*byte]);
        }
        assert_eq!(d.next_event(), Some(DecodeEvent::Frame(frame)));
    }

    #[test]
    fn corrupt_payload_is_rejected_and_stream_resyncs() {
        let good = Frame::Ack {
            seq: 1,
            accepted: 4,
        };
        let mut corrupted = Frame::Batch {
            seq: 2,
            rows: vec![1, 2, 3],
        }
        .encode();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x40; // payload bit flip → checksum mismatch
        let mut d = Decoder::new();
        d.push(&corrupted);
        d.push(&good.encode());
        assert!(matches!(
            d.next_event(),
            Some(DecodeEvent::Rejected {
                reason: RejectReason::BadChecksum,
                ..
            })
        ));
        assert_eq!(d.next_event(), Some(DecodeEvent::Frame(good)));
    }

    #[test]
    fn junk_before_frame_is_skipped_with_accounting() {
        let frame = Frame::Subscribe;
        let mut d = Decoder::new();
        d.push(&[0xde, 0xad, 0xbe, 0xef]);
        d.push(&frame.encode());
        let mut skipped = 0;
        loop {
            match d.next_event() {
                Some(DecodeEvent::Rejected {
                    reason: RejectReason::BadMagic,
                    skipped: s,
                }) => skipped += s,
                Some(DecodeEvent::Frame(f)) => {
                    assert_eq!(f, frame);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(skipped, 4);
    }

    #[test]
    fn oversize_length_is_rejected_without_buffering() {
        let mut bytes = Frame::Subscribe.encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut d = Decoder::new();
        d.push(&bytes);
        assert!(matches!(
            d.next_event(),
            Some(DecodeEvent::Rejected {
                reason: RejectReason::Oversize,
                ..
            })
        ));
    }

    #[test]
    fn wrong_version_and_kind_are_rejected() {
        let mut v = Frame::Subscribe.encode();
        v[2] = 99;
        let mut k = Frame::Subscribe.encode();
        k[3] = 200;
        for (bytes, want) in [(v, RejectReason::BadVersion), (k, RejectReason::BadKind)] {
            let mut d = Decoder::new();
            d.push(&bytes);
            match d.next_event() {
                Some(DecodeEvent::Rejected { reason, .. }) => assert_eq!(reason, want),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn torn_tail_is_truncated_at_finish() {
        let encoded = Frame::Batch {
            seq: 0,
            rows: vec![42],
        }
        .encode();
        let mut d = Decoder::new();
        d.push(&encoded[..encoded.len() - 3]);
        assert_eq!(d.next_event(), None, "incomplete frame: wait for more");
        assert_eq!(
            d.finish(),
            Some(DecodeEvent::Rejected {
                reason: RejectReason::Truncated,
                skipped: encoded.len() - 3,
            })
        );
    }

    #[test]
    fn tenant_name_validation() {
        assert!(valid_tenant_name("tenant-0_A"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("has space"));
        assert!(!valid_tenant_name("newline\n"));
        assert!(!valid_tenant_name(&"x".repeat(MAX_TENANT_LEN + 1)));
    }

    #[test]
    fn reject_reason_codes_round_trip() {
        for reason in RejectReason::ALL {
            assert_eq!(RejectReason::from_code(reason.code()), Some(reason));
        }
        assert_eq!(RejectReason::from_code(99), None);
    }
}
