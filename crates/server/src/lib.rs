//! Hydra-as-a-service: a crash-isolated, backpressured multi-tenant
//! activation daemon.
//!
//! The rest of the workspace runs Hydra as a library inside one
//! process. This crate turns it into a long-lived service: tenants
//! stream activation batches over a Unix domain socket, each tenant gets
//! its own tracker + forensics probe on its own shard thread, and
//! `hydra-forensics-v1` incidents fan out to subscriber connections.
//! The design goal is not throughput but *robustness under hostile
//! conditions* — the daemon is built to survive every failure mode the
//! wire-level fault injector ([`hydra_faults::WireInjector`]) and the
//! adversarial load client can produce:
//!
//! * [`frame`] — the `hydra-serve-v1` codec: versioned, checksummed,
//!   length-prefixed frames; a resynchronizing decoder that never
//!   panics and never kills a connection over malformed bytes.
//! * [`tenant`] — the per-tenant pipeline (tracker + probe + activation
//!   replay), the unit of crash isolation and of deterministic replay.
//! * [`daemon`] — the service itself: listener, per-connection threads
//!   with idle watchdogs, per-tenant shard threads supervised by the
//!   engine panic-attribution protocol, a bounded-buffer incident hub,
//!   `Busy` load shedding, and graceful drain.
//! * [`client`] — the protocol client plus [`client::run_load`], the
//!   adversary mix (honest tenants, slow subscriber, frame corruptor,
//!   reconnect storm, shard crasher) that enforces the chaos gate.
//! * [`session`] — deterministic session record/replay: a recorded
//!   session file replays byte-identically via `hydra replay-session`.
//! * [`stats`] — the accounting ledger (every reject, shed, drop and
//!   panic is counted; nothing fails silently) plus the live metrics
//!   plane: wire-path latency histograms and per-tenant counters,
//!   served as `hydra-serve-stats-v1` snapshots and rendered by
//!   `hydra top`.
//!
//! This is the only crate in the workspace allowed to touch Unix-socket
//! I/O (`repo-lint`'s `io-layer` rule) and, alongside `hydra-engine` and
//! the batch harness, to spawn threads (`thread-spawn-layer`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod frame;
pub mod session;
pub mod stats;
pub mod tenant;

pub use client::{run_load, tenant_batch, Client, LoadConfig, LoadReport, TenantLoadResult};
pub use daemon::{spawn, CrashReport, DaemonHandle, ServeConfig, ServeReport};
pub use frame::{
    DecodeEvent, Decoder, Frame, RejectReason, MAX_BATCH_ROWS, MAX_PAYLOAD, MAX_TENANT_LEN,
    SERVE_SCHEMA_VERSION,
};
pub use session::{geometry_by_name, replay_check, RecordedBatch, Session};
pub use stats::{
    render_stats_json, HistSummary, MetricsSink, MetricsSnapshot, NoopMetrics, ServeMetrics,
    ServeStats, StatsReading, TenantRow, SERVE_STATS_SCHEMA_VERSION,
};
pub use tenant::{BatchOutcome, TenantPipeline, TenantSummary};
