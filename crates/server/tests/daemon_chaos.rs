//! Chaos gate for the activation daemon.
//!
//! Every test spawns a real daemon on a throwaway Unix socket and
//! attacks it. The acceptance bar (ISSUE satellite 3 + chaos gate):
//!
//! * a client killed mid-batch leaves every other tenant's output
//!   **bit-identical** to an undisturbed run;
//! * a panicking tenant shard is reaped and attributed while other
//!   tenants never notice;
//! * overload is shed as `Busy` and accounted, never absorbed silently;
//! * idle connections are reaped by the watchdog;
//! * a recorded session replays byte-identically;
//! * under the full adversary mix the daemon stays up, honest tenants
//!   lose zero events, and every reject/shed/panic is accounted.

use std::path::PathBuf;
use std::time::Duration;

use hydra_server::client::{run_load, tenant_batch};
use hydra_server::{
    geometry_by_name, replay_check, spawn, Client, DecodeEvent, Frame, LoadConfig, ServeConfig,
    ServeReport, StatsReading, TenantPipeline,
};

/// Unique socket path per test so suites can run in parallel.
fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hydra-chaos-{}-{name}.sock", std::process::id()))
}

/// A fast-reacting config for tests: short watchdog, tight polling.
fn test_config(name: &str) -> ServeConfig {
    let mut config =
        ServeConfig::new(socket_path(name), "tiny", 64).expect("tiny geometry resolves");
    config.idle_timeout = Duration::from_secs(5);
    config.poll_interval = Duration::from_millis(5);
    config
}

/// Locally computes the canonical output an honest tenant expects the
/// daemon to produce for `tenant_batch(index, 1..=batches, rows)`.
fn expected_canon(tenant: &str, index: usize, batches: u64, rows: usize) -> String {
    let geometry = geometry_by_name("tiny").expect("tiny geometry resolves");
    let mut pipeline = TenantPipeline::new(tenant, geometry, 64).expect("pipeline builds");
    for seq in 1..=batches {
        pipeline
            .apply_batch(seq, &tenant_batch(index, seq, rows))
            .expect("local batch accepted");
    }
    pipeline.finish().canon_text()
}

fn daemon_canon(report: &ServeReport, tenant: &str) -> String {
    report
        .tenant(tenant)
        .unwrap_or_else(|| panic!("tenant {tenant} missing from report"))
        .canon_text()
}

#[test]
fn killed_client_mid_batch_leaves_others_bit_identical() {
    // Disturbed run: "steady" works while "victim" tears a batch frame
    // in half and vanishes, twice.
    let config = test_config("midkill");
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    let mut steady = Client::connect(&path).expect("steady connects");
    steady.hello("steady").expect("steady registered");
    for round in 0..2u64 {
        let mut victim = Client::connect(&path).expect("victim connects");
        victim.hello("victim").expect("victim registered");
        // Interleave: steady lands a batch, victim dies mid-frame.
        let seq = round + 1;
        steady
            .send_batch(seq, &tenant_batch(0, seq, 96))
            .expect("steady batch acked");
        victim.abandon_mid_frame(&Frame::Batch {
            seq,
            rows: tenant_batch(1, seq, 96),
        });
    }
    for seq in 3..=6u64 {
        steady
            .send_batch(seq, &tenant_batch(0, seq, 96))
            .expect("steady batch acked");
    }
    drop(steady);
    let disturbed = handle.shutdown().expect("daemon drains cleanly");

    // Undisturbed run: only "steady", same batches.
    let handle = spawn(test_config("midkill-clean")).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();
    let mut steady = Client::connect(&path).expect("steady connects");
    steady.hello("steady").expect("steady registered");
    for seq in 1..=6u64 {
        steady
            .send_batch(seq, &tenant_batch(0, seq, 96))
            .expect("steady batch acked");
    }
    drop(steady);
    let clean = handle.shutdown().expect("daemon drains cleanly");

    assert_eq!(
        daemon_canon(&disturbed, "steady"),
        daemon_canon(&clean, "steady"),
        "a torn neighbor connection must not perturb another tenant's output"
    );
    assert_eq!(
        daemon_canon(&clean, "steady"),
        expected_canon("steady", 0, 6, 96),
        "daemon output matches the local pipeline replay"
    );
    // The victim's torn frames were accounted, not ignored: two halves
    // of a batch frame are each a truncated byte-run at connection EOF.
    assert!(
        disturbed
            .stats
            .rejects
            .get("truncated")
            .copied()
            .unwrap_or(0)
            >= 2,
        "torn frames must be accounted as truncated: {:?}",
        disturbed.stats.rejects
    );
}

#[test]
fn crashing_shard_is_reaped_attributed_and_isolated() {
    let mut config = test_config("crash");
    config.allow_crash_frames = true;
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    let mut honest = Client::connect(&path).expect("honest connects");
    honest.hello("honest").expect("honest registered");
    honest
        .send_batch(1, &tenant_batch(0, 1, 128))
        .expect("batch before the crash");

    let mut doomed = Client::connect(&path).expect("doomed connects");
    doomed.hello("doomed").expect("doomed registered");
    doomed
        .send_batch(1, &tenant_batch(2, 1, 128))
        .expect("doomed batch acked before crash");
    doomed.crash_shard().expect("crash frame acknowledged");

    // The dead shard must turn away further work without hanging.
    let mut turned_away = false;
    for seq in 2..=6u64 {
        match doomed.send_batch_lossy(seq, &tenant_batch(2, seq, 16)) {
            Ok(false) | Err(_) => {
                turned_away = true;
                break;
            }
            Ok(true) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(turned_away, "a crashed shard must stop accepting batches");

    // The honest tenant keeps working after the neighbor's crash.
    for seq in 2..=4u64 {
        honest
            .send_batch(seq, &tenant_batch(0, seq, 128))
            .expect("honest batch after the crash");
    }
    drop(honest);
    drop(doomed);
    let report = handle.shutdown().expect("daemon survives the shard panic");

    assert_eq!(report.crashed.len(), 1, "exactly one shard crashed");
    assert_eq!(report.crashed[0].tenant, "doomed");
    assert!(
        report.crashed[0].message.contains("chaos crash frame"),
        "panic payload attributed verbatim: {:?}",
        report.crashed[0].message
    );
    assert_eq!(report.stats.tenant_panics, 1);
    assert!(
        report.tenant("doomed").is_none(),
        "a crashed tenant has no (partial) summary"
    );
    assert_eq!(
        daemon_canon(&report, "honest"),
        expected_canon("honest", 0, 4, 128),
        "the crash blast radius must be exactly one tenant"
    );
}

#[test]
fn tenant_capacity_overflow_is_shed_as_busy() {
    let mut config = test_config("shed");
    config.max_tenants = 1;
    config.busy_retry_ms = 1; // keep the client's backoff sum tiny
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    let mut alpha = Client::connect(&path).expect("alpha connects");
    alpha.hello("alpha").expect("alpha registered");
    alpha
        .send_batch(1, &tenant_batch(0, 1, 64))
        .expect("alpha batch acked");

    let mut beta = Client::connect(&path).expect("beta connects");
    let err = beta.hello("beta").expect_err("beta must be shed");
    assert!(
        err.contains("busy retries exhausted"),
        "shedding surfaces as Busy + exhausted backoff, got: {err}"
    );
    assert!(beta.busy_retries > 0, "beta retried through Busy replies");

    // Shedding beta must not disturb alpha.
    alpha
        .send_batch(2, &tenant_batch(0, 2, 64))
        .expect("alpha still served");
    drop(alpha);
    drop(beta);
    let report = handle.shutdown().expect("daemon drains cleanly");
    assert!(
        report.stats.busy_shed > 0,
        "every shed is accounted: {:?}",
        report.stats
    );
    assert_eq!(
        daemon_canon(&report, "alpha"),
        expected_canon("alpha", 0, 2, 64),
        "load shedding must not perturb admitted tenants"
    );
}

#[test]
fn idle_connection_is_reaped_by_the_watchdog() {
    let mut config = test_config("idle");
    config.idle_timeout = Duration::from_millis(100);
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    let mut lurker = Client::connect(&path).expect("lurker connects");
    lurker.hello("lurker").expect("lurker registered");
    // Go silent well past the watchdog boundary.
    std::thread::sleep(Duration::from_millis(400));
    let report = handle.shutdown().expect("daemon drains cleanly");
    assert!(
        report.stats.idle_reaped >= 1,
        "the watchdog must reap a silent connection: {:?}",
        report.stats
    );
}

#[test]
fn recorded_session_replays_byte_identically() {
    let mut config = test_config("record");
    config.record = true;
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    for index in 0..2usize {
        let tenant = format!("tenant-{index}");
        let mut client = Client::connect(&path).expect("client connects");
        client.hello(&tenant).expect("tenant registered");
        for seq in 1..=8u64 {
            client
                .send_batch(seq, &tenant_batch(index, seq, 160))
                .expect("batch acked");
        }
    }
    let report = handle.shutdown().expect("daemon drains cleanly");
    let session = report.session.expect("recording was enabled");
    let text = session.to_text();
    replay_check(&text).expect("recorded session replays byte-identically");
    // And the recording is not vacuous.
    assert_eq!(session.batches.len(), 16);
    assert_eq!(session.outputs.len(), 2);
}

#[test]
fn full_adversary_mix_preserves_honest_tenants() {
    let mut config = test_config("mix");
    config.allow_crash_frames = true;
    config.record = true;
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    let load = run_load(&LoadConfig::smoke(&path)).expect("chaos gate holds");
    // run_load's smoke preset ends with Drain, so join (not shutdown).
    let report = handle.join().expect("daemon survives the full mix");

    // Zero lost events: every honest tenant's daemon output matches the
    // digest its local pipeline computed independently.
    assert_eq!(load.tenants.len(), 3);
    for t in &load.tenants {
        assert_eq!(t.sent, t.acked, "{}: every batch acked", t.tenant);
        let summary = report
            .tenant(&t.tenant)
            .unwrap_or_else(|| panic!("{} missing from daemon report", t.tenant));
        assert_eq!(
            summary.digest(),
            t.expected_digest,
            "{}: daemon and local pipeline disagree",
            t.tenant
        );
    }

    // The adversaries actually ran and were all accounted.
    assert!(load.corruptor_rejects > 0, "corruptor must draw rejects");
    assert!(load.reconnects > 0, "storm must have connected");
    assert!(load.crash_acked, "crash tenant must have fired");
    assert!(load.incidents_seen > 0, "subscriber must see incidents");
    assert!(
        report.stats.rejected_total() > 0,
        "rejected frames are counted: {:?}",
        report.stats.rejects
    );
    assert_eq!(report.stats.tenant_panics, 1, "exactly the chaos crash");
    assert_eq!(report.crashed.len(), 1);
    assert_eq!(report.crashed[0].tenant, "crasher");

    // Incident conservation: nothing published bypasses the subscriber
    // queue accounting, and nothing seen was never queued.
    assert!(report.stats.subscriber_queued <= report.stats.incidents_published);
    assert!(load.incidents_seen <= report.stats.subscriber_queued);

    // The recorded session — taken under full adversarial fire —
    // replays byte-identically.
    let session = report.session.expect("recording was enabled");
    replay_check(&session.to_text()).expect("session replays byte-identically under chaos");
}

#[test]
fn metered_daemon_is_digest_identical_to_bare_under_chaos() {
    // Same full adversary mix as the bare-daemon chaos gate, but with
    // the metrics plane live. Metrics must never influence control flow:
    // every honest tenant's daemon digest still matches the digest its
    // local pipeline computed independently (the same bar the unmetered
    // run is held to), and the recorded session still replays
    // byte-identically.
    let mut config = test_config("metered-mix");
    config.allow_crash_frames = true;
    config.record = true;
    config.metrics = true;
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    let load = run_load(&LoadConfig::smoke(&path)).expect("chaos gate holds with metrics on");
    let report = handle.join().expect("metered daemon survives the mix");

    assert_eq!(load.tenants.len(), 3);
    for t in &load.tenants {
        assert_eq!(t.sent, t.acked, "{}: every batch acked", t.tenant);
        let summary = report
            .tenant(&t.tenant)
            .unwrap_or_else(|| panic!("{} missing from daemon report", t.tenant));
        assert_eq!(
            summary.digest(),
            t.expected_digest,
            "{}: metering changed the daemon's output",
            t.tenant
        );
    }
    let session = report.session.expect("recording was enabled");
    replay_check(&session.to_text()).expect("metered session replays byte-identically");
}

#[test]
fn profiled_daemon_is_digest_identical_and_yields_an_ingest_tree() {
    // Same bar as the metered run: per-shard span profiling must never
    // influence control flow — every honest tenant's daemon digest still
    // matches its local pipeline — while the drained report carries one
    // merged `ingest`/`publish` call tree covering all shards.
    let mut config = test_config("profiled-mix");
    config.allow_crash_frames = true;
    config.profile = true;
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    let load = run_load(&LoadConfig::smoke(&path)).expect("chaos gate holds with profiling on");
    let report = handle.join().expect("profiled daemon survives the mix");

    for t in &load.tenants {
        assert_eq!(t.sent, t.acked, "{}: every batch acked", t.tenant);
        let summary = report
            .tenant(&t.tenant)
            .unwrap_or_else(|| panic!("{} missing from daemon report", t.tenant));
        assert_eq!(
            summary.digest(),
            t.expected_digest,
            "{}: profiling changed the daemon's output",
            t.tenant
        );
    }

    let tree = report.profile.expect("profiling was enabled");
    let roots: Vec<&str> = tree.roots.keys().map(String::as_str).collect();
    assert_eq!(
        roots,
        vec!["ingest"],
        "every span hangs off the ingest root"
    );
    let ingest = &tree.roots["ingest"];
    assert!(
        ingest.count >= report.stats.batches_accepted,
        "every accepted batch opened an ingest span ({} < {})",
        ingest.count,
        report.stats.batches_accepted
    );
    if report.stats.incidents_published > 0 {
        assert!(
            ingest.children.contains_key("publish"),
            "published incidents must show up under ingest"
        );
    }
    tree.check_conservation(0.0).expect("conservation");
}

/// Pulls the seam identities out of one snapshot and asserts them.
fn assert_snapshot_identities(r: &StatsReading) {
    let offered = r.counter("batches_offered");
    let enqueued = r.counter("batches_enqueued");
    let shed = r.counter("batches_shed");
    let refused = r.counter("batches_refused");
    assert_eq!(
        enqueued + shed + refused,
        offered,
        "every offered batch has exactly one outcome at every snapshot"
    );
    assert!(
        r.counter("batches_accepted") <= enqueued,
        "a batch is accounted enqueued before it can be acked"
    );
    assert!(
        r.counter("subscriber_queued") <= r.counter("incidents_published"),
        "an incident is accounted published before it is queued"
    );
    assert!(
        r.counter("subscriber_dropped") <= r.counter("subscriber_queued"),
        "an evicted incident was queued first"
    );
}

#[test]
fn stats_snapshots_stay_consistent_and_monotonic_under_chaos() {
    let mut config = test_config("statsmono");
    config.allow_crash_frames = true;
    config.metrics = true;
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    // Chaos mix in the background; this thread scrapes snapshots while
    // the adversaries run.
    let load_path = path.clone();
    let load = std::thread::spawn(move || run_load(&LoadConfig::smoke(&load_path)));

    let mut snapshots: Vec<StatsReading> = Vec::new();
    let mut scraper: Option<Client> = None;
    loop {
        let client = match scraper.as_mut() {
            Some(c) => c,
            // (Re)connect lazily: the daemon may already be draining.
            None => match Client::connect(&path) {
                Ok(c) => scraper.insert(c),
                Err(_) => break,
            },
        };
        match client.stats() {
            Ok(reading) => snapshots.push(reading),
            Err(_) => break,
        }
    }
    let load = load.join().expect("load thread").expect("chaos gate holds");
    assert!(load.incidents_seen > 0, "mix produced incidents");
    assert!(
        snapshots.len() >= 3,
        "scraper landed only {} snapshot(s) mid-run",
        snapshots.len()
    );

    for (i, snap) in snapshots.iter().enumerate() {
        // The race-consistency identities hold at *every* mid-run
        // snapshot, not just at drain.
        assert_snapshot_identities(snap);
        // And every counter is monotonically non-decreasing between
        // successive snapshots.
        if i > 0 {
            let prev = &snapshots[i - 1];
            for (name, value) in &snap.counters {
                let before = prev.counter(name);
                assert!(
                    *value >= before,
                    "counter {name} went backwards between snapshots: {before} -> {value}"
                );
            }
        }
    }
    // The scrape itself is accounted.
    let last = snapshots.last().expect("nonempty");
    assert!(
        last.counter("stats_served") + 1 >= snapshots.len() as u64 - 1,
        "stats_served must count the scrapes"
    );
}

#[test]
fn stats_request_on_a_subscriber_never_blocks_the_publisher() {
    let mut config = test_config("statsub");
    config.metrics = true;
    let handle = spawn(config).expect("daemon spawns");
    let path = handle.socket_path().to_path_buf();

    let mut sub = Client::connect(&path).expect("subscriber connects");
    sub.subscribe().expect("subscribed");
    // Park a stats request on the subscriber connection and deliberately
    // do NOT read the reply yet: the snapshot must ride the subscriber
    // queue without stalling incident fan-out or batch ingest.
    sub.send(&Frame::StatsRequest).expect("stats request sent");

    let mut honest = Client::connect(&path).expect("honest connects");
    honest.hello("honest").expect("registered");
    for seq in 1..=16u64 {
        honest
            .send_batch(seq, &tenant_batch(0, seq, 192))
            .expect("batch acked while the subscriber sits on its reply");
    }

    // Now drain the subscriber queue: the snapshot must arrive among the
    // incidents, schema-stamped and parseable, with live metrics.
    let mut saw_snapshot = false;
    let mut incidents = 0u64;
    for _ in 0..200 {
        match sub.recv_event(Duration::from_millis(100)) {
            Ok(DecodeEvent::Frame(Frame::StatsSnapshot { json })) => {
                let reading = StatsReading::parse(&json).expect("snapshot parses");
                assert!(reading.metrics.is_some(), "metrics plane was enabled");
                saw_snapshot = true;
                break;
            }
            Ok(DecodeEvent::Frame(Frame::Incident { .. })) => incidents += 1,
            Ok(_) => {}
            Err(e) if e == "timeout" => break,
            Err(e) => panic!("subscriber read failed: {e}"),
        }
    }
    assert!(
        saw_snapshot,
        "snapshot never arrived on the subscriber queue ({incidents} incidents seen)"
    );
    drop(sub);
    drop(honest);
    let report = handle.shutdown().expect("daemon drains cleanly");
    assert!(report.stats.stats_served >= 1, "the scrape was accounted");
    assert_eq!(
        daemon_canon(&report, "honest"),
        expected_canon("honest", 0, 16, 192),
        "a parked stats reply must not perturb ingest"
    );
}
