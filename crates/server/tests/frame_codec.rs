//! Property and corpus tests for the `hydra-serve-v1` frame codec.
//!
//! The codec's contract: `decode ∘ encode` is the identity on every
//! representable frame, decoding is invariant under arbitrary chunking
//! of the byte stream, and the decoder **never panics** — not on fuzz
//! soup, not on adversarially corrupted frames, not on truncation. The
//! `corpus/` directory pins known-nasty byte sequences (hex-encoded) so
//! regressions in resynchronization are caught byte-for-byte.

use std::path::PathBuf;

use hydra_server::frame::{DecodeEvent, Decoder, Frame, RejectReason};
use proptest::prelude::*;

const TENANT_CHARS: &[char] = &['a', 'b', 'z', 'A', 'Z', '0', '9', '-', '_'];

const LINE_FRAGMENTS: &[&str] = &[
    "{\"schema\":\"x\"}",
    "plain",
    "with space",
    "uni→code",
    "\\\"quoted\\\"",
    "",
];

fn arb_tenant() -> BoxedStrategy<String> {
    prop::collection::vec(prop::sample::select(TENANT_CHARS.to_vec()), 1..16)
        .prop_map(|chars| chars.into_iter().collect())
        .boxed()
}

fn arb_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        2 => arb_tenant().prop_map(|tenant| Frame::Hello { tenant }),
        4 => (0u64..u64::MAX, prop::collection::vec(0u64..u64::MAX, 0..64))
            .prop_map(|(seq, rows)| Frame::Batch { seq, rows }),
        1 => Just(Frame::Subscribe),
        2 => (0u64..u64::MAX, 0u32..u32::MAX)
            .prop_map(|(seq, accepted)| Frame::Ack { seq, accepted }),
        1 => (0u32..60_000).prop_map(|retry_after_ms| Frame::Busy { retry_after_ms }),
        1 => prop::sample::select(RejectReason::ALL.to_vec())
            .prop_map(|reason| Frame::Reject { reason }),
        2 => (arb_tenant(), prop::sample::select(LINE_FRAGMENTS.to_vec()))
            .prop_map(|(tenant, line)| Frame::Incident {
                tenant,
                line: line.to_string(),
            }),
        1 => Just(Frame::Crash),
        1 => Just(Frame::Drain),
        1 => Just(Frame::StatsRequest),
        2 => prop::sample::select(LINE_FRAGMENTS.to_vec())
            .prop_map(|json| Frame::StatsSnapshot {
                json: json.to_string(),
            }),
    ]
    .boxed()
}

/// Decodes everything in one shot, including end-of-stream accounting.
fn decode_all(bytes: &[u8]) -> Vec<DecodeEvent> {
    let mut decoder = Decoder::new();
    decoder.push(bytes);
    let mut events = Vec::new();
    while let Some(event) = decoder.next_event() {
        events.push(event);
    }
    if let Some(event) = decoder.finish() {
        events.push(event);
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_then_decode_is_identity(frame in arb_frame()) {
        let events = decode_all(&frame.encode());
        prop_assert_eq!(events, vec![DecodeEvent::Frame(frame)]);
    }

    #[test]
    fn decoder_never_panics_on_byte_soup(
        soup in prop::collection::vec(0u32..256, 0..512).prop_map(
            |v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()
        ),
    ) {
        // The assertion is completing without panic; additionally every
        // rejected run must account at least one byte so decoding makes
        // progress and terminates.
        for event in decode_all(&soup) {
            if let DecodeEvent::Rejected { skipped, .. } = event {
                prop_assert!(skipped > 0);
            }
        }
    }

    #[test]
    fn decoding_is_invariant_under_chunking(
        frames in prop::collection::vec(arb_frame(), 1..5),
        chunk in 1usize..9,
    ) {
        let bytes: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        let whole = decode_all(&bytes);
        let mut decoder = Decoder::new();
        let mut chunked = Vec::new();
        for piece in bytes.chunks(chunk) {
            decoder.push(piece);
            while let Some(event) = decoder.next_event() {
                chunked.push(event);
            }
        }
        if let Some(event) = decoder.finish() {
            chunked.push(event);
        }
        prop_assert_eq!(whole.clone(), chunked);
        // And an uncorrupted multi-frame stream decodes losslessly.
        let expected: Vec<DecodeEvent> =
            frames.into_iter().map(DecodeEvent::Frame).collect();
        prop_assert_eq!(whole, expected);
    }

    #[test]
    fn corrupting_one_byte_never_panics_and_never_misdecodes_silently(
        frame in arb_frame(),
        pos_seed in 0usize..4096,
        flip in 1u32..256,
    ) {
        let mut bytes = frame.encode();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip as u8;
        for event in decode_all(&bytes) {
            if let DecodeEvent::Frame(decoded) = event {
                // The checksum covers version, kind and payload, so the
                // only way a Frame event survives a bit flip is an FNV
                // collision — which the deterministic generator never
                // produces. A decoded frame must therefore be the
                // original, never a silently morphed variant.
                prop_assert_eq!(decoded, frame.clone());
            }
        }
    }
}

fn corpus(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(format!("{name}.hex"));
    let hex =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let hex = hex.trim();
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("valid hex fixture"))
        .collect()
}

fn reasons(events: &[DecodeEvent]) -> Vec<RejectReason> {
    events
        .iter()
        .filter_map(|e| match e {
            DecodeEvent::Rejected { reason, .. } => Some(*reason),
            DecodeEvent::Frame(_) => None,
        })
        .collect()
}

#[test]
fn corpus_valid_frames_decode() {
    let hello = decode_all(&corpus("valid_hello"));
    assert!(matches!(
        hello.as_slice(),
        [DecodeEvent::Frame(Frame::Hello { tenant })] if tenant == "tenant-0"
    ));
    let batch = decode_all(&corpus("valid_batch"));
    assert!(matches!(
        batch.as_slice(),
        [DecodeEvent::Frame(Frame::Batch { seq: 3, rows })] if rows == &[1, 2, u64::MAX]
    ));
}

#[test]
fn corpus_valid_stats_frames_decode() {
    let request = decode_all(&corpus("valid_stats_request"));
    assert_eq!(request, vec![DecodeEvent::Frame(Frame::StatsRequest)]);
    let snapshot = decode_all(&corpus("valid_stats_snapshot"));
    assert!(matches!(
        snapshot.as_slice(),
        [DecodeEvent::Frame(Frame::StatsSnapshot { json })]
            if json.contains("hydra-serve-stats-v1")
    ));
}

#[test]
fn corpus_malformed_inputs_are_classified() {
    let cases: [(&str, RejectReason); 9] = [
        ("bad_magic_junk", RejectReason::BadMagic),
        ("bad_version", RejectReason::BadVersion),
        ("bad_kind", RejectReason::BadKind),
        ("oversize_len", RejectReason::Oversize),
        ("bad_checksum", RejectReason::BadChecksum),
        ("payload_soup", RejectReason::BadPayload),
        // Stats-frame variants: an oversize snapshot length, a corrupted
        // snapshot payload byte under the original checksum, and a
        // StatsRequest carrying bytes where the payload must be empty
        // (checksum deliberately valid so only payload parsing rejects).
        ("stats_snapshot_oversize", RejectReason::Oversize),
        ("stats_snapshot_bad_checksum", RejectReason::BadChecksum),
        ("stats_request_trailing_byte", RejectReason::BadPayload),
    ];
    for (name, expected) in cases {
        let got = reasons(&decode_all(&corpus(name)));
        assert!(
            got.contains(&expected),
            "{name}: expected {expected:?} among {got:?}"
        );
    }
}

#[test]
fn corpus_truncated_tail_is_accounted_at_finish() {
    let events = decode_all(&corpus("truncated_tail"));
    assert_eq!(reasons(&events), vec![RejectReason::Truncated]);
}

#[test]
fn corpus_empty_input_produces_nothing() {
    assert!(decode_all(&corpus("empty")).is_empty());
}

#[test]
fn corpus_interleaved_stream_recovers_both_valid_frames() {
    let events = decode_all(&corpus("interleaved"));
    let frames: Vec<&Frame> = events
        .iter()
        .filter_map(|e| match e {
            DecodeEvent::Frame(f) => Some(f),
            DecodeEvent::Rejected { .. } => None,
        })
        .collect();
    assert_eq!(frames.len(), 2, "events: {events:?}");
    assert!(matches!(frames[0], Frame::Hello { tenant } if tenant == "a"));
    assert!(matches!(frames[1], Frame::Batch { seq: 9, rows } if rows == &[5]));
    let got = reasons(&events);
    assert!(got.contains(&RejectReason::BadMagic));
    assert!(got.contains(&RejectReason::BadChecksum));
}
