//! Quickstart: build the paper's default Hydra tracker, hammer a row, and
//! watch the three heads (GCT → RCC → RCT) engage.
//!
//! Run with: `cargo run --release --example quickstart`

use hydra_repro::core::{Hydra, HydraStorage};
use hydra_repro::types::{ActivationKind, ActivationTracker, MemGeometry, RowAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 32 GB DDR4 baseline: 2 channels x 1 rank x 16 banks,
    // 8 KB rows (Table 2).
    let geom = MemGeometry::isca22_baseline();
    println!(
        "memory geometry : {} GB, {} rows of {} KB",
        geom.capacity_bytes() >> 30,
        geom.total_rows(),
        geom.row_bytes() / 1024
    );

    // One Hydra instance per channel; T_H = 250, T_G = 200 for T_RH = 500.
    let mut hydra = Hydra::isca22_default(geom, 0)?;
    let storage = HydraStorage::for_system(hydra.config(), geom.channels() as u32);
    println!(
        "hydra storage   : GCT {} KB + RCC {} KB + RIT {} B = {:.1} KB SRAM, {} MB DRAM",
        storage.gct_bytes / 1024,
        storage.rcc_bytes / 1024,
        storage.rit_bytes,
        storage.total_sram_bytes() as f64 / 1024.0,
        storage.rct_dram_bytes >> 20,
    );

    // Hammer one row; Hydra must mitigate at (or before) every T_H = 250
    // activations.
    let aggressor = RowAddr::new(0, 0, 3, 12_345);
    let mut mitigated_at = Vec::new();
    for i in 1..=1000u32 {
        let response = hydra.on_activation(aggressor, u64::from(i), ActivationKind::Demand);
        if !response.mitigations.is_empty() {
            mitigated_at.push(i);
        }
    }
    println!("hammering {aggressor} 1000 times -> mitigations at ACTs {mitigated_at:?}");

    // HydraStats renders as an aligned counter table, with the activation
    // share of each tracking path (GCT-only / RCC-hit / RCT / reserved).
    println!("\n{}", hydra.stats());

    assert_eq!(mitigated_at, vec![250, 500, 750, 1000]);
    println!("\nTheorem-1 in action: one mitigation per T_H activations. OK");
    Ok(())
}
