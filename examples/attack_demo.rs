//! Attack demo: replay the classic Row-Hammer attack patterns against an
//! unprotected system and against Hydra, and report whether any row could
//! have accumulated enough unmitigated activations to flip bits.
//!
//! Run with: `cargo run --release --example attack_demo`

use hydra_repro::core::Hydra;
use hydra_repro::sim::ActivationSim;
use hydra_repro::types::{ActivationTracker, MemGeometry, RowAddr};
use hydra_repro::workloads::AttackPattern;
use std::collections::HashMap;

/// The Row-Hammer threshold the demo assumes for the DRAM device.
const T_RH: u32 = 500;
/// Activations replayed per attack.
const ACTS: u64 = 400_000;

fn audit<T: ActivationTracker>(
    pattern: &AttackPattern,
    geom: MemGeometry,
    tracker: T,
) -> (u32, u64) {
    let mut sim = ActivationSim::new(geom, tracker);
    let mut rows = pattern.rows(geom);
    // Exact unmitigated-activation audit per row.
    let mut counts: HashMap<RowAddr, u32> = HashMap::new();
    let mut worst = 0u32;
    for _ in 0..ACTS {
        let mut row = rows.next_row();
        row.channel = 0;
        *counts.entry(row).or_insert(0) += 1;
        sim.activate(row);
        for mitigated in sim.drain_mitigated() {
            counts.insert(mitigated, 0);
        }
        worst = worst.max(*counts.get(&row).unwrap_or(&0));
    }
    (worst, sim.report().mitigations)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = MemGeometry::isca22_baseline();
    let victim = RowAddr::new(0, 0, 2, 77_000 % geom.rows_per_bank());
    let patterns = [
        AttackPattern::SingleSided { aggressor: victim },
        AttackPattern::DoubleSided { victim },
        AttackPattern::ManySided {
            first: victim,
            n: 8,
        },
        AttackPattern::HalfDouble { victim, ratio: 16 },
        AttackPattern::Thrash {
            rows: 100_000,
            seed: 3,
        },
    ];

    println!("Row-Hammer threshold T_RH = {T_RH}; an attack succeeds if any row");
    println!("collects {T_RH} unmitigated activations in a tracking window.\n");
    println!(
        "{:<14} {:>22} {:>24}",
        "attack", "unprotected (max ACTs)", "hydra (max unmitigated)"
    );
    println!("{}", "-".repeat(64));

    for pattern in &patterns {
        // Unprotected: the null tracker never mitigates.
        let (unprotected, _) = audit(pattern, geom, hydra_repro::types::tracker::NullTracker);
        // Hydra at the paper's design point.
        let hydra = Hydra::isca22_default(geom, 0)?;
        let (protected, mitigations) = audit(pattern, geom, hydra);
        let flips = if unprotected >= T_RH {
            "BIT FLIPS"
        } else {
            "safe"
        };
        println!(
            "{:<14} {:>12} ({:<9}) {:>12} (safe, {} mitigations)",
            pattern.name(),
            unprotected,
            flips,
            protected,
            mitigations
        );
        assert!(
            protected < T_RH / 2 + 1,
            "Hydra must bound unmitigated ACTs by T_H"
        );
    }

    println!("\nEvery pattern that breaks the unprotected system is held below");
    println!(
        "T_H = T_RH/2 = {} unmitigated activations by Hydra.",
        T_RH / 2
    );
    Ok(())
}
