//! Security audit: the static config auditor plus a dynamic shadow-oracle
//! sweep over Hydra variants (default, randomized indexing, both ablations)
//! and every attack pattern — verifying the Theorem-1 guarantee end to end,
//! including the counter-row attack on the RCT region (Sec. 5.2.2) and the
//! Half-Double feedback accounting (Sec. 5.2.1).
//!
//! The static layer (`hydra_analysis::audit_hydra`) derives worst-case
//! bounds from the configuration alone; the dynamic layer replays attacks
//! through the activation simulator with a [`ShadowOracle`] independently
//! checking ground truth. Both must agree the design point is secure.
//!
//! Run with: `cargo run --release --example security_audit`

use hydra_repro::analysis::audit::audit_hydra;
use hydra_repro::analysis::oracle::ShadowOracle;
use hydra_repro::core::{GroupIndexer, Hydra, HydraConfig};
use hydra_repro::sim::ActivationSim;
use hydra_repro::types::{MemGeometry, RowAddr};
use hydra_repro::workloads::AttackPattern;

const ACTS_PER_CASE: u64 = 150_000;
/// Row-Hammer threshold the design point targets (T_H = T_RH / 2).
const T_RH: u32 = 500;

fn variant_config(geom: MemGeometry, variant: &str) -> HydraConfig {
    let mut b = HydraConfig::builder(geom, 0);
    b.thresholds(250, 200)
        .gct_entries(16_384)
        .rcc_entries(4_096);
    match variant {
        "default" => {}
        "randomized" => {
            let rows = geom.rows_per_channel();
            b.indexer(GroupIndexer::randomized_for(rows, 16_384, 0xFEED).expect("indexer"));
        }
        "no-gct" => {
            b.without_gct();
        }
        "no-rcc" => {
            b.without_rcc();
        }
        other => panic!("unknown variant {other}"),
    }
    b.build().expect("config")
}

fn main() {
    let geom = MemGeometry::isca22_baseline();
    let variants = ["default", "randomized", "no-gct", "no-rcc"];
    let mut failures = 0;

    // ---- Layer 1: static analysis of each variant's configuration. ----
    println!("Static audit (analytical worst-case bounds, T_RH = {T_RH}):\n");
    println!(
        "{:<12} {:>8} {:>22}",
        "variant", "verdict", "worst unmitigated"
    );
    println!("{}", "-".repeat(46));
    for variant in variants {
        let config = variant_config(geom, variant);
        let report = audit_hydra(&config, T_RH);
        let secure = report.is_secure();
        if !secure {
            failures += 1;
        }
        println!(
            "{:<12} {:>8} {:>22}",
            variant,
            if secure { "SECURE" } else { "INSECURE" },
            report
                .worst_case_unmitigated()
                .map_or_else(|| "unbounded".into(), |b| b.to_string()),
        );
    }

    // ---- Layer 2: dynamic sweep under the shadow oracle. ----
    let victim = RowAddr::new(0, 0, 1, 50_000);
    let patterns = [
        AttackPattern::SingleSided { aggressor: victim },
        AttackPattern::DoubleSided { victim },
        AttackPattern::ManySided {
            first: victim,
            n: 32,
        },
        AttackPattern::HalfDouble { victim, ratio: 8 },
        AttackPattern::Thrash {
            rows: 50_000,
            seed: 99,
        },
    ];

    println!(
        "\nDynamic audit ({} activations per case, shadow oracle at T_RH = {T_RH}):\n",
        ACTS_PER_CASE
    );
    println!(
        "{:<14} {:<12} {:>18} {:>12}",
        "attack", "variant", "max unmitigated", "verdict"
    );
    println!("{}", "-".repeat(60));

    for pattern in &patterns {
        for variant in variants {
            let hydra = Hydra::new(variant_config(geom, variant)).expect("hydra");
            let mut sim = ActivationSim::new(geom, ShadowOracle::new(hydra, T_RH));
            let mut rows = pattern.rows(geom);
            for _ in 0..ACTS_PER_CASE {
                let mut row = rows.next_row();
                row.channel = 0;
                sim.activate(row);
            }
            let oracle = sim.into_tracker();
            let report = oracle.report();
            let ok = oracle.is_clean();
            if !ok {
                failures += 1;
                if let Some(v) = oracle.violations().first() {
                    eprintln!("  first violation: {v}");
                }
            }
            println!(
                "{:<14} {:<12} {:>18} {:>12}",
                pattern.name(),
                variant,
                report.worst_unmitigated,
                if ok { "SECURE" } else { "VIOLATION" }
            );
        }
    }

    // Counter-row attack: hammer the RCT's own DRAM rows. The RIT-ACT
    // counters must keep mitigating (the oracle audits this run too).
    let hydra = Hydra::new(variant_config(geom, "default")).expect("hydra");
    let reserved = RowAddr::new(0, 0, geom.banks_per_rank() - 1, geom.rows_per_bank() - 1);
    assert!(hydra.is_reserved_row(reserved));
    let mut sim = ActivationSim::new(geom, ShadowOracle::new(hydra, T_RH));
    for _ in 0..100_000 {
        sim.activate(reserved);
    }
    let oracle = sim.into_tracker();
    let rit = oracle.inner().stats().rit_mitigations;
    let rit_ok = oracle.is_clean() && rit >= 100_000 / 250 - 1;
    println!(
        "{:<14} {:<12} {:>18} {:>12}",
        "counter-row",
        "default",
        format!("{rit} RIT mitig."),
        if rit_ok { "SECURE" } else { "VIOLATION" }
    );
    if !rit_ok {
        failures += 1;
    }

    println!(
        "\n{}",
        if failures == 0 {
            "All attack/variant combinations satisfied the tracking guarantee."
        } else {
            "SECURITY VIOLATIONS FOUND — see above."
        }
    );
    std::process::exit(i32::from(failures > 0));
}
