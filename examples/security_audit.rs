//! Security audit: exhaustively audit Hydra variants (default, randomized
//! indexing, both ablations) against every attack pattern with an exact
//! oracle, verifying the Theorem-1 guarantee end to end — including the
//! counter-row attack on the RCT region (Sec. 5.2.2) and the Half-Double
//! feedback accounting (Sec. 5.2.1).
//!
//! Run with: `cargo run --release --example security_audit`

use hydra_repro::core::{GroupIndexer, Hydra, HydraConfig};
use hydra_repro::sim::ActivationSim;
use hydra_repro::types::{ActivationTracker, MemGeometry, RowAddr};
use hydra_repro::workloads::AttackPattern;
use std::collections::HashMap;

const ACTS_PER_CASE: u64 = 150_000;

fn build_variant(geom: MemGeometry, variant: &str) -> Hydra {
    let mut b = HydraConfig::builder(geom, 0);
    b.thresholds(250, 200).gct_entries(16_384).rcc_entries(4_096);
    match variant {
        "default" => {}
        "randomized" => {
            let rows = geom.rows_per_channel();
            b.indexer(GroupIndexer::randomized_for(rows, 16_384, 0xFEED).expect("indexer"));
        }
        "no-gct" => {
            b.without_gct();
        }
        "no-rcc" => {
            b.without_rcc();
        }
        other => panic!("unknown variant {other}"),
    }
    Hydra::new(b.build().expect("config")).expect("hydra")
}

fn main() {
    let geom = MemGeometry::isca22_baseline();
    let victim = RowAddr::new(0, 0, 1, 50_000);
    let patterns = [
        AttackPattern::SingleSided { aggressor: victim },
        AttackPattern::DoubleSided { victim },
        AttackPattern::ManySided { first: victim, n: 32 },
        AttackPattern::HalfDouble { victim, ratio: 8 },
        AttackPattern::Thrash { rows: 50_000, seed: 99 },
    ];
    let variants = ["default", "randomized", "no-gct", "no-rcc"];

    println!("Auditing Theorem-1 (mitigation at or before T_H = 250 unmitigated ACTs)");
    println!("over {} activations per case.\n", ACTS_PER_CASE);
    println!("{:<14} {:<12} {:>18} {:>12}", "attack", "variant", "max unmitigated", "verdict");
    println!("{}", "-".repeat(60));

    let mut failures = 0;
    for pattern in &patterns {
        for variant in variants {
            let hydra = build_variant(geom, variant);
            let t_h = hydra.config().t_h;
            let mut sim = ActivationSim::new(geom, hydra);
            let mut rows = pattern.rows(geom);
            let mut oracle: HashMap<RowAddr, u32> = HashMap::new();
            let mut worst = 0u32;
            for _ in 0..ACTS_PER_CASE {
                let mut row = rows.next_row();
                row.channel = 0;
                *oracle.entry(row).or_insert(0) += 1;
                sim.activate(row);
                for mitigated in sim.drain_mitigated() {
                    oracle.insert(mitigated, 0);
                }
                worst = worst.max(*oracle.get(&row).unwrap_or(&0));
            }
            let ok = worst <= t_h;
            if !ok {
                failures += 1;
            }
            println!(
                "{:<14} {:<12} {:>18} {:>12}",
                pattern.name(),
                variant,
                worst,
                if ok { "SECURE" } else { "VIOLATION" }
            );
        }
    }

    // Counter-row attack: hammer the RCT's own DRAM rows.
    let hydra = build_variant(geom, "default");
    let reserved = RowAddr::new(0, 0, geom.banks_per_rank() - 1, geom.rows_per_bank() - 1);
    assert!(hydra.is_reserved_row(reserved));
    let mut sim = ActivationSim::new(geom, hydra);
    for _ in 0..100_000 {
        sim.activate(reserved);
    }
    let rit = sim.tracker().stats().rit_mitigations;
    let rit_ok = rit >= 100_000 / 250 - 1;
    println!(
        "{:<14} {:<12} {:>18} {:>12}",
        "counter-row",
        "default",
        format!("{rit} RIT mitig."),
        if rit_ok { "SECURE" } else { "VIOLATION" }
    );
    if !rit_ok {
        failures += 1;
    }

    println!("\n{}", if failures == 0 {
        "All attack/variant combinations satisfied the tracking guarantee."
    } else {
        "SECURITY VIOLATIONS FOUND — see above."
    });
    std::process::exit(i32::from(failures > 0));
}
