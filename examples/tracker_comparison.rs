//! Tracker comparison: run a few representative workloads through the full
//! cycle-level simulator under the non-secure baseline, Graphene, CRA and
//! Hydra, and print normalized performance — a miniature Figure 5.
//!
//! Run with: `cargo run --release --example tracker_comparison`

use hydra_repro::baselines::{Cra, CraConfig, Graphene, GrapheneConfig};
use hydra_repro::core::{Hydra, HydraConfig};
use hydra_repro::sim::{SystemConfig, SystemSim};
use hydra_repro::types::tracker::{ActivationTracker, NullTracker};
use hydra_repro::types::MemGeometry;
use hydra_repro::workloads::registry;

/// Time-compression factor (see DESIGN.md): footprints, structures and the
/// tracking window all shrink by S; thresholds stay at paper values.
const S: u64 = 256;
const INSTRUCTIONS: u64 = 100_000;

fn tracker(kind: &str, geom: MemGeometry, channel: u8) -> Box<dyn ActivationTracker> {
    match kind {
        "baseline" => Box::new(NullTracker),
        "graphene" => {
            let act_max = 1_360_000 / S;
            Box::new(Graphene::new(
                GrapheneConfig::for_threshold(geom, channel, 500, act_max).expect("graphene"),
            ))
        }
        "cra" => Box::new(
            Cra::new(
                CraConfig::for_threshold(geom, channel, 500, (64 * 1024 / S as usize).max(1024))
                    .expect("cra config"),
            )
            .expect("cra"),
        ),
        "hydra" => {
            let channels = usize::from(geom.channels());
            let mut b = HydraConfig::builder(geom, channel);
            b.thresholds(250, 200)
                .gct_entries(((32_768 / channels) as u64 / S).next_power_of_two() as usize)
                .rcc_entries(((8_192 / channels) as u64 / S).max(8).next_power_of_two() as usize);
            Box::new(Hydra::new(b.build().expect("config")).expect("hydra"))
        }
        other => panic!("unknown tracker {other}"),
    }
}

fn main() {
    let mut config = SystemConfig::scaled(S);
    config.instructions_per_core = INSTRUCTIONS;
    let geom = config.geometry;

    let workloads = ["mcf", "parest", "gups", "stream", "leela"];
    println!(
        "Normalized performance vs non-secure baseline (S={S}, {INSTRUCTIONS} instrs/core):\n"
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "workload", "graphene", "cra-64KB", "hydra"
    );
    println!("{}", "-".repeat(44));

    for name in workloads {
        let spec = registry::by_name(name).expect("registered workload");
        let run = |kind: &'static str| {
            let mut sim =
                SystemSim::new(config.clone(), |core| spec.build(geom, S, 42 ^ core as u64))
                    .with_trackers(|ch| tracker(kind, geom, ch));
            sim.run()
        };
        let baseline = run("baseline");
        let graphene = run("graphene").normalized_to(&baseline);
        let cra = run("cra").normalized_to(&baseline);
        let hydra = run("hydra").normalized_to(&baseline);
        println!("{name:<10} {graphene:>10.3} {cra:>10.3} {hydra:>10.3}");
    }
    println!("\nExpected shape (paper Fig. 5): graphene ~ 1.0, hydra ~ 0.99, cra clearly lower.");
}
