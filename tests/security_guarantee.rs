//! Cross-crate security verification — Theorem-1 audited with the OCPR oracle.
//!
//! Hydra (hydra-core) is compared against the exact One-Counter-Per-Row
//! tracker (hydra-baselines) on identical adversarial streams through the
//! activation-level simulator (hydra-sim): Hydra must never mitigate *later*
//! than the oracle allows, for any pattern and any Hydra variant.

use hydra_repro::analysis::oracle::ShadowOracle;
use hydra_repro::baselines::Ocpr;
use hydra_repro::core::{Hydra, HydraConfig};
use hydra_repro::sim::ActivationSim;
use hydra_repro::types::{ActivationTracker, MemGeometry, RowAddr};
use hydra_repro::workloads::AttackPattern;

const T_H: u32 = 64;
const T_G: u32 = 51;
/// The threshold the shadow oracle audits against (window-split bound).
const T_RH: u32 = 2 * T_H;

fn hydra(geom: MemGeometry) -> Hydra {
    let mut b = HydraConfig::builder(geom, 0);
    b.thresholds(T_H, T_G).gct_entries(256).rcc_entries(64);
    Hydra::new(b.build().unwrap()).unwrap()
}

/// Replays `acts` activations of `pattern` through a tracker inside the
/// activation simulator, with the [`ShadowOracle`] sanitizer independently
/// auditing ground truth (victim-refresh feedback included). Panics on any
/// contract violation; returns the worst unmitigated count observed.
fn audit<T: ActivationTracker>(pattern: &AttackPattern, acts: u64, tracker: T) -> u64 {
    let geom = MemGeometry::tiny();
    let mut sim = ActivationSim::new(geom, ShadowOracle::new(tracker, T_RH));
    let mut rows = pattern.rows(geom);
    for _ in 0..acts {
        let mut row = rows.next_row();
        row.channel = 0;
        sim.activate(row);
    }
    let oracle = sim.into_tracker();
    assert!(
        oracle.is_clean(),
        "{}: {:?}",
        pattern.name(),
        oracle.violations().first()
    );
    oracle.report().worst_unmitigated
}

fn patterns() -> Vec<AttackPattern> {
    let victim = RowAddr::new(0, 0, 1, 500);
    vec![
        AttackPattern::SingleSided { aggressor: victim },
        AttackPattern::DoubleSided { victim },
        AttackPattern::ManySided {
            first: victim,
            n: 12,
        },
        AttackPattern::HalfDouble { victim, ratio: 8 },
        AttackPattern::Thrash { rows: 900, seed: 5 },
    ]
}

#[test]
fn hydra_bounds_unmitigated_activations_for_all_patterns() {
    let geom = MemGeometry::tiny();
    for pattern in patterns() {
        let worst = audit(&pattern, 60_000, hydra(geom));
        assert!(
            worst <= u64::from(T_H),
            "{}: worst unmitigated {worst} > T_H {T_H}",
            pattern.name()
        );
    }
}

#[test]
fn oracle_bounds_match_hydra_bounds() {
    let geom = MemGeometry::tiny();
    for pattern in patterns() {
        let hydra_worst = audit(&pattern, 40_000, hydra(geom));
        let ocpr_worst = audit(&pattern, 40_000, Ocpr::new(geom, 0, T_H).unwrap());
        // The oracle mitigates at exactly T_H; Hydra at or before.
        assert!(ocpr_worst <= u64::from(T_H), "{}", pattern.name());
        assert!(hydra_worst <= u64::from(T_H), "{}", pattern.name());
    }
}

#[test]
fn hydra_never_mitigates_later_than_oracle_on_single_row() {
    // Mitigation indices for a pure hammer must be <= the oracle's.
    let geom = MemGeometry::tiny();
    let row = RowAddr::new(0, 0, 0, 9);
    let mut h = hydra(geom);
    let mut o = Ocpr::new(geom, 0, T_H).unwrap();
    let mut h_mitigations = Vec::new();
    let mut o_mitigations = Vec::new();
    for i in 1..=1000u32 {
        if !h
            .on_activation(
                row,
                u64::from(i),
                hydra_repro::types::ActivationKind::Demand,
            )
            .mitigations
            .is_empty()
        {
            h_mitigations.push(i);
        }
        if !o
            .on_activation(
                row,
                u64::from(i),
                hydra_repro::types::ActivationKind::Demand,
            )
            .mitigations
            .is_empty()
        {
            o_mitigations.push(i);
        }
    }
    assert_eq!(o_mitigations.len(), (1000 / T_H) as usize);
    assert!(h_mitigations.len() >= o_mitigations.len());
    for (h_at, o_at) in h_mitigations.iter().zip(&o_mitigations) {
        assert!(h_at <= o_at, "hydra at {h_at} later than oracle at {o_at}");
    }
}

#[test]
fn window_reset_does_not_double_the_effective_threshold_beyond_2x() {
    // Sec. 4.6: the attacker can split (T_H − 1) + (T_H − 1) around a reset,
    // which is why T_H = T_RH / 2. Verify the bound is exactly achievable
    // but never exceedable: across one reset, a row gets at most
    // 2·(T_H − 1) unmitigated activations.
    let geom = MemGeometry::tiny();
    let mut h = hydra(geom);
    let row = RowAddr::new(0, 0, 0, 77);
    let mut unmitigated = 0u32;
    for i in 0..(T_H - 1) {
        let r = h.on_activation(
            row,
            u64::from(i),
            hydra_repro::types::ActivationKind::Demand,
        );
        assert!(r.mitigations.is_empty());
        unmitigated += 1;
    }
    h.reset_window(1000);
    for i in 0..(T_H - 1) {
        let r = h.on_activation(
            row,
            u64::from(i),
            hydra_repro::types::ActivationKind::Demand,
        );
        assert!(r.mitigations.is_empty(), "mitigated early after reset");
        unmitigated += 1;
    }
    assert_eq!(unmitigated, 2 * (T_H - 1));
    // The very next activation must trip the per-row counter.
    let mut tripped = false;
    for i in 0..=T_H {
        if !h
            .on_activation(
                row,
                u64::from(i),
                hydra_repro::types::ActivationKind::Demand,
            )
            .mitigations
            .is_empty()
        {
            tripped = true;
            break;
        }
    }
    assert!(tripped);
}
