//! End-to-end tests of the forensics-facing CLI surface: `hydra trace
//! --kinds/--limit/--forensics`, the `hydra forensics` replay subcommand,
//! and `hydra bench --compare` exit-code gating.
//!
//! These run the real binary (`CARGO_BIN_EXE_hydra`), so they cover flag
//! parsing, stream framing (meta header, event lines, incident lines), and
//! process exit codes — the contract CI scripts depend on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hydra(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hydra"))
        .args(args)
        .output()
        .expect("hydra binary runs")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn temp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hydra-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn trace_kinds_filters_and_limit_caps_the_stream() {
    let out = hydra(&[
        "trace",
        "double_sided",
        "3000",
        "--kinds",
        "mitigation,window_reset",
        "--limit",
        "5",
    ]);
    assert!(out.status.success(), "trace exits 0");
    let text = stdout_of(&out);
    let mut lines = text.lines();
    let header = lines.next().expect("meta header line");
    assert!(header.contains("\"schema\":\"hydra-trace-v1\""));
    assert!(header.contains("\"workload\":\"double_sided\""));
    let events: Vec<&str> = lines.collect();
    assert!(!events.is_empty(), "filtered stream still has events");
    assert!(
        events.len() <= 5,
        "--limit caps events, got {}",
        events.len()
    );
    for line in &events {
        assert!(
            line.contains("\"ev\":\"mitigation\"") || line.contains("\"ev\":\"window_reset\""),
            "only allow-listed kinds pass: {line}"
        );
    }
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        err.contains("filtered by --kinds"),
        "filter accounting: {err}"
    );
}

#[test]
fn trace_rejects_unknown_kinds_with_the_valid_list() {
    let out = hydra(&["trace", "double_sided", "100", "--kinds", "nonsense"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("unknown event kind"), "{err}");
    assert!(err.contains("mitigation"), "error lists valid kinds: {err}");
}

#[test]
fn trace_forensics_emits_incidents_and_forensics_replays_them() {
    let out = hydra(&["trace", "double_sided", "3000", "--forensics"]);
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(
        text.contains("\"schema\":\"hydra-forensics-v1\""),
        "incident record on stdout"
    );
    assert!(
        text.contains("\"class\":\"double_sided\""),
        "classified as double-sided"
    );

    // Re-analyze the same stream offline: `hydra forensics` must reach the
    // same classification from the recorded trace alone.
    let plain = hydra(&["trace", "double_sided", "3000"]);
    assert!(plain.status.success());
    let trace_path = temp_file("replay.jsonl");
    std::fs::write(&trace_path, plain.stdout).expect("write trace file");
    let replayed = hydra(&["forensics", trace_path.to_str().expect("utf-8 path")]);
    let _ = std::fs::remove_file(&trace_path);
    assert!(replayed.status.success());
    let incidents = stdout_of(&replayed);
    assert!(incidents.contains("\"schema\":\"hydra-forensics-v1\""));
    assert!(incidents.contains("\"class\":\"double_sided\""));
    let err = String::from_utf8_lossy(&replayed.stderr).to_string();
    assert!(err.contains("verdict: double_sided"), "{err}");
    assert!(err.contains("0 malformed"), "{err}");
}

fn bench_report(inflation: f64, mitigations: u64) -> String {
    format!(
        concat!(
            "{{\"schema\":\"hydra-bench-v1\",\"smoke\":true,\"acts_per_cell\":20000,",
            "\"cells\":[{{\"workload\":\"double_sided\",\"geometry\":\"tiny\",",
            "\"acts\":20000,\"wall_secs\":0.01,\"acts_per_sec\":1000000.0,",
            "\"bandwidth_inflation\":{:.6},\"slowdown_pct\":{:.3},\"windows\":14,",
            "\"mitigations\":{},\"delta_sum_ok\":true}}],\"failures\":[],",
            "\"summary\":{{\"cells\":1,\"ok\":1,\"failed\":0,",
            "\"mean_acts_per_sec\":1000000.0,\"max_slowdown_pct\":{:.3},",
            "\"all_delta_sums_ok\":true}}}}"
        ),
        inflation,
        (inflation - 1.0) * 100.0,
        mitigations,
        (inflation - 1.0) * 100.0,
    )
}

#[test]
fn bench_compare_gates_on_regression_and_passes_self_compare() {
    let base = temp_file("base.json");
    let same = temp_file("same.json");
    let slow = temp_file("slow.json");
    std::fs::write(&base, bench_report(1.014, 56)).expect("write baseline");
    std::fs::write(&same, bench_report(1.014, 56)).expect("write identical");
    // +15% relative inflation growth: past the default 10% tolerance.
    std::fs::write(&slow, bench_report(1.1661, 56)).expect("write regressed");

    let base_s = base.to_str().expect("utf-8 path");
    let clean = hydra(&[
        "bench",
        "--compare",
        base_s,
        "--against",
        same.to_str().unwrap(),
    ]);
    assert!(clean.status.success(), "self-compare exits 0");
    assert!(stdout_of(&clean).contains("0 regression(s)"));

    let gated = hydra(&[
        "bench",
        "--compare",
        base_s,
        "--against",
        slow.to_str().unwrap(),
    ]);
    assert!(!gated.status.success(), "regression exits nonzero");
    assert!(stdout_of(&gated).contains("REGRESSED"));

    // A loosened tolerance lets the same diff pass.
    let loose = hydra(&[
        "bench",
        "--compare",
        base_s,
        "--against",
        slow.to_str().unwrap(),
        "--tolerance",
        "20",
    ]);
    assert!(loose.status.success(), "tolerance 20% exits 0");

    for p in [&base, &same, &slow] {
        let _ = std::fs::remove_file(p);
    }
}
