//! End-to-end full-system runs spanning every crate: workload generators →
//! cores → LLC-calibrated miss streams → memory controller → DRAM model →
//! trackers → mitigation, on a scaled configuration.

use hydra_repro::baselines::{Cra, CraConfig, Graphene, GrapheneConfig};
use hydra_repro::core::{Hydra, HydraConfig};
use hydra_repro::sim::{SystemConfig, SystemSim};
use hydra_repro::types::{MemGeometry, RowAddr};
use hydra_repro::workloads::{registry, AttackPattern};

const SCALE: u64 = 1024;

fn config(instructions: u64) -> SystemConfig {
    let mut c = SystemConfig::scaled(SCALE);
    c.cores = 4;
    c.instructions_per_core = instructions;
    c
}

fn scaled_hydra(geom: MemGeometry, channel: u8) -> Hydra {
    let mut b = HydraConfig::builder(geom, channel);
    b.thresholds(250, 200).gct_entries(64).rcc_entries(16);
    Hydra::new(b.build().unwrap()).unwrap()
}

#[test]
fn baseline_workload_run_retires_all_instructions() {
    let cfg = config(30_000);
    let geom = cfg.geometry;
    let spec = registry::by_name("mcf").unwrap();
    let mut sim = SystemSim::new(cfg, |core| spec.build(geom, SCALE, core as u64));
    let result = sim.run();
    // Cores retire up to 8 instructions per cycle, so they may overshoot
    // their budget within the final cycle.
    assert!(result.instructions >= 4 * 30_000);
    assert!(result.instructions < 4 * 30_000 + 4 * 8);
    assert!(result.ipc() > 0.05, "ipc {}", result.ipc());
    assert!(result.demand_acts() > 100);
}

#[test]
fn hydra_tracked_workload_completes_with_modest_overhead() {
    let geom = MemGeometry::isca22_baseline();
    let spec = registry::by_name("stream").unwrap();
    let run = |tracked: bool| {
        let mut sim = SystemSim::new(config(30_000), |core| spec.build(geom, SCALE, core as u64));
        if tracked {
            sim = sim.with_trackers(|ch| Box::new(scaled_hydra(geom, ch)));
        }
        sim.run()
    };
    let baseline = run(false);
    let hydra = run(true);
    let slowdown = hydra.slowdown_pct(&baseline);
    // Shape: Hydra's overhead is small (paper: 0.7 %; scaled runs are noisy
    // so accept anything clearly below CRA territory).
    assert!(slowdown < 15.0, "hydra slowdown {slowdown:.1}%");
}

#[test]
fn all_four_trackers_run_the_same_workload() {
    let geom = MemGeometry::isca22_baseline();
    let spec = registry::by_name("gups").unwrap();
    let mk = || SystemSim::new(config(15_000), |core| spec.build(geom, SCALE, core as u64));
    let baseline = mk().run();
    let hydra = mk()
        .with_trackers(|ch| Box::new(scaled_hydra(geom, ch)))
        .run();
    let graphene = mk()
        .with_trackers(|ch| {
            Box::new(Graphene::new(
                GrapheneConfig::for_threshold(geom, ch, 500, 1_360_000 / SCALE).unwrap(),
            ))
        })
        .run();
    let cra = mk()
        .with_trackers(|ch| {
            Box::new(Cra::new(CraConfig::for_threshold(geom, ch, 500, 2048).unwrap()).unwrap())
        })
        .run();
    for (name, r) in [
        ("baseline", &baseline),
        ("hydra", &hydra),
        ("graphene", &graphene),
        ("cra", &cra),
    ] {
        assert!(r.instructions >= 4 * 15_000, "{name}");
        assert!(r.cycles > 0, "{name}");
    }
    // CRA with a thrashed 2 KB cache must be the slowest tracked design.
    assert!(
        cra.cycles >= hydra.cycles,
        "cra {} vs hydra {}",
        cra.cycles,
        hydra.cycles
    );
    assert!(cra.cycles >= graphene.cycles);
}

#[test]
fn attack_through_full_system_is_mitigated() {
    // Note: deep MSHRs + FR-FCFS coalesce a naive two-row alternation into
    // few activations (row hits) — a real effect. The tracked threshold here
    // is set against the *achievable* ACT rate of the pattern.
    let geom = MemGeometry::isca22_baseline();
    let attack = AttackPattern::DoubleSided {
        victim: RowAddr::new(0, 0, 0, 1000),
    };
    let mut sim = SystemSim::new(config(10_000), |_| attack.trace(geom)).with_trackers(|ch| {
        let mut b = HydraConfig::builder(geom, ch);
        b.thresholds(64, 51).gct_entries(64).rcc_entries(16);
        Box::new(Hydra::new(b.build().unwrap()).unwrap())
    });
    let result = sim.run();
    assert!(
        result.mitigation_acts() > 0,
        "full-system double-sided attack must trigger victim refreshes"
    );
    // Both aggressors sit inside the blast radius of each other's victims,
    // so victim refreshes also hit real rows: count them.
    assert!(result.demand_acts() > 0);
}

#[test]
fn mitigation_refreshes_cost_activations_but_not_correctness() {
    // A sustained hammer under a small threshold: many mitigations, the run
    // still completes, and mitigation ACTs are accounted.
    let geom = MemGeometry::isca22_baseline();
    // T_H must stay well above blast-radius × side-ops-per-act, or victim
    // refreshes regenerate themselves faster than they retire (a mitigation
    // storm the real design avoids by construction: 4 ACTs per 250).
    // A many-sided hammer defeats row-hit coalescing enough to generate a
    // steady activation stream.
    let attack = AttackPattern::ManySided {
        first: RowAddr::new(0, 0, 1, 2000),
        n: 4,
    };
    let mut sim = SystemSim::new(config(15_000), |_| attack.trace(geom)).with_trackers(|ch| {
        let mut b = HydraConfig::builder(geom, ch);
        b.thresholds(32, 24).gct_entries(64).rcc_entries(16);
        Box::new(Hydra::new(b.build().unwrap()).unwrap())
    });
    let result = sim.run();
    assert!(
        result.mitigation_acts() > 50,
        "acts {}",
        result.mitigation_acts()
    );
    assert!(result.instructions >= 4 * 15_000);
}
