//! Contract tests every tracker implementation must satisfy: determinism,
//! window-reset semantics, sustained-hammer mitigation, and honest SRAM
//! claims.

use hydra_repro::baselines::{Cra, CraConfig, Graphene, GrapheneConfig, Ocpr, Para};
use hydra_repro::core::{Hydra, HydraConfig};
use hydra_repro::types::{
    ActivationKind, ActivationTracker, MemGeometry, RowAddr, TrackerResponse,
};

const THRESHOLD: u32 = 32;

fn all_trackers() -> Vec<Box<dyn ActivationTracker>> {
    let geom = MemGeometry::tiny();
    let mut hydra_builder = HydraConfig::builder(geom, 0);
    hydra_builder
        .thresholds(THRESHOLD, THRESHOLD * 4 / 5)
        .gct_entries(128)
        .rcc_entries(32);
    vec![
        Box::new(Hydra::new(hydra_builder.build().unwrap()).unwrap()),
        Box::new(Graphene::new(GrapheneConfig {
            geometry: geom,
            channel: 0,
            threshold: THRESHOLD,
            entries_per_bank: 256,
        })),
        Box::new(
            Cra::new(CraConfig {
                geometry: geom,
                channel: 0,
                threshold: THRESHOLD,
                cache_bytes: 1024,
                cache_ways: 4,
            })
            .unwrap(),
        ),
        Box::new(Ocpr::new(geom, 0, THRESHOLD).unwrap()),
    ]
}

fn hammer(tracker: &mut dyn ActivationTracker, row: RowAddr, n: u32) -> Vec<u32> {
    (1..=n)
        .filter(|&i| {
            !tracker
                .on_activation(row, u64::from(i), ActivationKind::Demand)
                .mitigations
                .is_empty()
        })
        .collect()
}

#[test]
fn deterministic_trackers_mitigate_within_threshold() {
    let row = RowAddr::new(0, 0, 0, 200);
    for mut tracker in all_trackers() {
        let mitigations = hammer(tracker.as_mut(), row, 10 * THRESHOLD);
        assert!(
            !mitigations.is_empty(),
            "{} never mitigated",
            tracker.name()
        );
        assert!(
            mitigations[0] <= THRESHOLD,
            "{} first mitigation at {} > {THRESHOLD}",
            tracker.name(),
            mitigations[0]
        );
        // Between consecutive mitigations: at most THRESHOLD activations.
        for pair in mitigations.windows(2) {
            assert!(
                pair[1] - pair[0] <= THRESHOLD,
                "{} gap {:?}",
                tracker.name(),
                pair
            );
        }
    }
}

#[test]
fn window_reset_restarts_every_tracker() {
    let row = RowAddr::new(0, 0, 1, 300);
    for mut tracker in all_trackers() {
        // Warm up close to the threshold, reset, then verify a fresh count.
        for i in 0..(THRESHOLD - 1) {
            tracker.on_activation(row, u64::from(i), ActivationKind::Demand);
        }
        tracker.reset_window(10_000);
        for i in 0..(THRESHOLD - 2) {
            let r = tracker.on_activation(row, u64::from(i), ActivationKind::Demand);
            assert!(
                r.mitigations.is_empty(),
                "{} mitigated {} ACTs after reset",
                tracker.name(),
                i + 1
            );
        }
    }
}

#[test]
fn trackers_report_nonnegative_sram_and_names() {
    for tracker in all_trackers() {
        assert!(!tracker.name().is_empty());
        // OCPR and Graphene claim real SRAM; CRA claims its cache; Hydra its
        // tables. All are consistent with the storage module's units.
        let _ = tracker.sram_bytes();
    }
}

#[test]
fn para_mitigates_probabilistically_and_deterministically_per_seed() {
    let row = RowAddr::new(0, 0, 0, 1);
    let run = |seed: u64| -> Vec<u32> {
        let mut para = Para::for_threshold(2 * THRESHOLD, 1e-4, seed).unwrap();
        hammer(&mut para, row, 2000)
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "PARA must be deterministic per seed");
    assert!(!a.is_empty(), "PARA must mitigate a sustained hammer");
}

#[test]
fn responses_to_single_activation_are_bounded() {
    // No tracker may return an unbounded response to one activation: at most
    // one mitigation for the activated row plus a handful of side requests.
    let row = RowAddr::new(0, 0, 2, 123);
    for mut tracker in all_trackers() {
        for i in 0..500u32 {
            let r: TrackerResponse =
                tracker.on_activation(row, u64::from(i), ActivationKind::Demand);
            assert!(r.mitigations.len() <= 1, "{}", tracker.name());
            assert!(r.side_requests.len() <= 8, "{}", tracker.name());
        }
    }
}

/// Records the exact interleaving of activations and window resets it sees.
#[derive(Default)]
struct WindowProbe {
    /// `(is_reset, now)` in arrival order.
    events: Vec<(bool, u64)>,
}

impl ActivationTracker for WindowProbe {
    fn on_activation(&mut self, _row: RowAddr, now: u64, _kind: ActivationKind) -> TrackerResponse {
        self.events.push((false, now));
        TrackerResponse::none()
    }

    fn reset_window(&mut self, now: u64) {
        self.events.push((true, now));
    }

    fn name(&self) -> &str {
        "window-probe"
    }

    fn sram_bytes(&self) -> u64 {
        0
    }
}

#[test]
fn window_boundary_activation_counts_in_exactly_one_window() {
    // Regression guard for the window-boundary off-by-one: an activation
    // landing exactly on the reset boundary (`now == next_reset`) must be
    // observed exactly once, and in the *new* window — the driver resets
    // first, then reports the activation. Counting it in the old window (or
    // twice) would let the per-window undercount exceed the 2·(T_H − 1)
    // split bound.
    use hydra_repro::dram::DramTiming;
    use hydra_repro::sim::ActivationSim;

    let mut timing = DramTiming::ddr4_3200();
    timing.refresh_window = 1000;
    let mut sim = ActivationSim::new(MemGeometry::tiny(), WindowProbe::default())
        .with_timing(timing)
        .with_cycles_per_activation(1);
    let row = RowAddr::new(0, 0, 0, 1);
    for _ in 0..2500 {
        sim.activate(row);
    }
    assert_eq!(sim.report().window_resets, 2);

    let events = sim.into_tracker().events;
    let acts: Vec<u64> = events.iter().filter(|e| !e.0).map(|e| e.1).collect();
    let resets: Vec<u64> = events.iter().filter(|e| e.0).map(|e| e.1).collect();
    assert_eq!(acts.len(), 2500, "every activation observed exactly once");
    assert_eq!(resets, vec![1000, 2000], "resets land on the boundaries");

    // Activation i happens at now == i, so acts 1..=999 precede the first
    // reset and the act at now == 1000 must come after it.
    let first_reset = events.iter().position(|e| e.0).expect("a reset happened");
    assert_eq!(first_reset, 999, "boundary act belongs to the new window");
    let second_reset = events.iter().rposition(|e| e.0).expect("two resets");
    assert_eq!(
        second_reset - first_reset - 1,
        1000,
        "a full window carries exactly refresh_window activations"
    );

    // Within each window, every observed timestamp lies in
    // [reset_now, reset_now + window): nothing leaks across a boundary.
    for (reset_now, window) in [(1000u64, 1000u64), (2000, 1000)] {
        let in_window = acts
            .iter()
            .filter(|&&t| t >= reset_now && t < reset_now + window)
            .count();
        let expected = if reset_now == 2000 { 501 } else { 1000 };
        assert_eq!(in_window, expected, "window starting at {reset_now}");
    }
}
