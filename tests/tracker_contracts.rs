//! Contract tests every tracker implementation must satisfy: determinism,
//! window-reset semantics, sustained-hammer mitigation, and honest SRAM
//! claims.

use hydra_repro::baselines::{Cra, CraConfig, Graphene, GrapheneConfig, Ocpr, Para};
use hydra_repro::core::{Hydra, HydraConfig};
use hydra_repro::types::{
    ActivationKind, ActivationTracker, MemGeometry, RowAddr, TrackerResponse,
};

const THRESHOLD: u32 = 32;

fn all_trackers() -> Vec<Box<dyn ActivationTracker>> {
    let geom = MemGeometry::tiny();
    let mut hydra_builder = HydraConfig::builder(geom, 0);
    hydra_builder
        .thresholds(THRESHOLD, THRESHOLD * 4 / 5)
        .gct_entries(128)
        .rcc_entries(32);
    vec![
        Box::new(Hydra::new(hydra_builder.build().unwrap()).unwrap()),
        Box::new(Graphene::new(GrapheneConfig {
            geometry: geom,
            channel: 0,
            threshold: THRESHOLD,
            entries_per_bank: 256,
        })),
        Box::new(
            Cra::new(CraConfig {
                geometry: geom,
                channel: 0,
                threshold: THRESHOLD,
                cache_bytes: 1024,
                cache_ways: 4,
            })
            .unwrap(),
        ),
        Box::new(Ocpr::new(geom, 0, THRESHOLD).unwrap()),
    ]
}

fn hammer(tracker: &mut dyn ActivationTracker, row: RowAddr, n: u32) -> Vec<u32> {
    (1..=n)
        .filter(|&i| {
            !tracker
                .on_activation(row, u64::from(i), ActivationKind::Demand)
                .mitigations
                .is_empty()
        })
        .collect()
}

#[test]
fn deterministic_trackers_mitigate_within_threshold() {
    let row = RowAddr::new(0, 0, 0, 200);
    for mut tracker in all_trackers() {
        let mitigations = hammer(tracker.as_mut(), row, 10 * THRESHOLD);
        assert!(
            !mitigations.is_empty(),
            "{} never mitigated",
            tracker.name()
        );
        assert!(
            mitigations[0] <= THRESHOLD,
            "{} first mitigation at {} > {THRESHOLD}",
            tracker.name(),
            mitigations[0]
        );
        // Between consecutive mitigations: at most THRESHOLD activations.
        for pair in mitigations.windows(2) {
            assert!(
                pair[1] - pair[0] <= THRESHOLD,
                "{} gap {:?}",
                tracker.name(),
                pair
            );
        }
    }
}

#[test]
fn window_reset_restarts_every_tracker() {
    let row = RowAddr::new(0, 0, 1, 300);
    for mut tracker in all_trackers() {
        // Warm up close to the threshold, reset, then verify a fresh count.
        for i in 0..(THRESHOLD - 1) {
            tracker.on_activation(row, u64::from(i), ActivationKind::Demand);
        }
        tracker.reset_window(10_000);
        for i in 0..(THRESHOLD - 2) {
            let r = tracker.on_activation(row, u64::from(i), ActivationKind::Demand);
            assert!(
                r.mitigations.is_empty(),
                "{} mitigated {} ACTs after reset",
                tracker.name(),
                i + 1
            );
        }
    }
}

#[test]
fn trackers_report_nonnegative_sram_and_names() {
    for tracker in all_trackers() {
        assert!(!tracker.name().is_empty());
        // OCPR and Graphene claim real SRAM; CRA claims its cache; Hydra its
        // tables. All are consistent with the storage module's units.
        let _ = tracker.sram_bytes();
    }
}

#[test]
fn para_mitigates_probabilistically_and_deterministically_per_seed() {
    let row = RowAddr::new(0, 0, 0, 1);
    let run = |seed: u64| -> Vec<u32> {
        let mut para = Para::for_threshold(2 * THRESHOLD, 1e-4, seed).unwrap();
        hammer(&mut para, row, 2000)
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "PARA must be deterministic per seed");
    assert!(!a.is_empty(), "PARA must mitigate a sustained hammer");
}

#[test]
fn responses_to_single_activation_are_bounded() {
    // No tracker may return an unbounded response to one activation: at most
    // one mitigation for the activated row plus a handful of side requests.
    let row = RowAddr::new(0, 0, 2, 123);
    for mut tracker in all_trackers() {
        for i in 0..500u32 {
            let r: TrackerResponse =
                tracker.on_activation(row, u64::from(i), ActivationKind::Demand);
            assert!(r.mitigations.len() <= 1, "{}", tracker.name());
            assert!(r.side_requests.len() <= 8, "{}", tracker.name());
        }
    }
}
