//! The paper's storage claims (Tables 1, 4, 5), asserted exactly where the
//! paper gives exact numbers and within tolerance where it rounds.

use hydra_repro::baselines::storage::{Scheme, DDR4_BANKS_PER_RANK, DDR5_BANKS_PER_RANK};
use hydra_repro::core::{HydraConfig, HydraStorage};
use hydra_repro::types::MemGeometry;

fn hydra_system_storage() -> HydraStorage {
    let geom = MemGeometry::isca22_baseline();
    let config = HydraConfig::isca22_default(geom, 0).unwrap();
    HydraStorage::for_system(&config, u32::from(geom.channels()))
}

#[test]
fn table4_hydra_is_56_5_kb_sram() {
    let s = hydra_system_storage();
    assert_eq!(s.gct_bytes, 32 * 1024);
    assert_eq!(s.rcc_bytes, 24 * 1024);
    assert_eq!(s.rit_bytes, 512);
    assert_eq!(s.total_sram_bytes(), 57_856); // 56.5 KB
}

#[test]
fn hydra_rct_is_4_mb_of_dram() {
    let s = hydra_system_storage();
    assert_eq!(s.rct_dram_bytes, 4 * 1024 * 1024);
    assert!(s.dram_overhead_fraction(32 << 30) < 0.0002);
}

#[test]
fn table1_all_prior_schemes_blow_the_64kb_goal_at_ultra_low_thresholds() {
    for t_rh in [250u32, 500, 1000] {
        for scheme in Scheme::ALL {
            let bytes = scheme.bytes_per_rank(t_rh, DDR4_BANKS_PER_RANK);
            assert!(
                bytes > 64 * 1024,
                "{} at T_RH={t_rh}: {} B fits the goal",
                scheme.name(),
                bytes
            );
        }
    }
}

#[test]
fn table1_graphene_is_storage_efficient_at_32k_threshold() {
    // At the classical threshold prior trackers are cheap — the paper's
    // framing for why ultra-low thresholds change the game.
    let graphene = Scheme::Graphene.bytes_per_rank(32_000, DDR4_BANKS_PER_RANK);
    assert!(graphene < 8 * 1024, "graphene at 32K = {graphene} B");
    let ocpr = Scheme::Ocpr.bytes_per_rank(32_000, DDR4_BANKS_PER_RANK);
    assert!(ocpr > 3 * 1024 * 1024, "OCPR stays MBs: {ocpr} B");
}

#[test]
fn table5_ddr5_doubles_per_bank_trackers_but_not_hydra() {
    for scheme in [Scheme::Graphene, Scheme::Twice, Scheme::Cat] {
        let d4 = scheme.bytes_per_rank(500, DDR4_BANKS_PER_RANK);
        let d5 = scheme.bytes_per_rank(500, DDR5_BANKS_PER_RANK);
        assert!(
            (d5 as f64 / d4 as f64 - 2.0).abs() < 0.05,
            "{} DDR5 should double",
            scheme.name()
        );
    }
    // Hydra's structures scale with rows, not banks: identical on DDR5.
    let hydra = hydra_system_storage().total_sram_bytes();
    assert!(hydra < 64 * 1024);
}

#[test]
fn hydra_storage_is_identical_on_ddr5() {
    // Table 5's punchline, computed on a real DDR5 geometry rather than
    // asserted analytically: same rows -> same GCT/RCC/RIT/RCT sizes.
    let d4 = hydra_system_storage();
    let geom5 = MemGeometry::ddr5_32gb();
    let config5 = HydraConfig::isca22_default(geom5, 0).unwrap();
    let d5 = HydraStorage::for_system(&config5, u32::from(geom5.channels()));
    assert_eq!(d4.total_sram_bytes(), d5.total_sram_bytes());
    assert_eq!(d4.rct_dram_bytes, d5.rct_dram_bytes);
}

#[test]
fn hydra_stays_within_goal_even_at_t_rh_125_scaling() {
    // Fig. 7 scales structures 4x at T_RH = 125: 4 × 56.5 KB = 226 KB —
    // still far below every prior scheme at that threshold.
    let geom = MemGeometry::isca22_baseline();
    let config = HydraConfig::for_threshold(geom, 0, 125).unwrap();
    let s = HydraStorage::for_system(&config, u32::from(geom.channels()));
    let graphene_at_125 = Scheme::Graphene.bytes_per_rank(125, DDR4_BANKS_PER_RANK) * 2;
    assert!(s.total_sram_bytes() < graphene_at_125 / 4);
}
