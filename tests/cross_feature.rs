//! Cross-feature integration: trace record/replay, workload mixes, the
//! private cache hierarchy, and row-swap mitigation working together.

use hydra_repro::core::{Hydra, HydraConfig};
use hydra_repro::sim::{CoreCaches, SharedLlc, SystemConfig, SystemSim};
use hydra_repro::types::mitigation::MitigationPolicy;
use hydra_repro::types::{MemGeometry, RowAddr};
use hydra_repro::workloads::{
    registry, AttackPattern, MixSlot, TraceFile, TraceSource, TraceWriter, WorkloadMix,
};

#[test]
fn recorded_trace_replays_identically_through_the_full_system() {
    let geom = MemGeometry::isca22_baseline();
    let spec = registry::by_name("stream").unwrap();

    // Record 3000 ops, then run live-generator vs replayed-trace systems.
    let mut buf = Vec::new();
    {
        let mut writer = TraceWriter::new(&mut buf).unwrap();
        writer.record(&mut spec.build(geom, 512, 9), 3000).unwrap();
    }

    let mut config = SystemConfig::scaled(512);
    config.cores = 2;
    config.instructions_per_core = 8_000;

    // Both cores run the same (seed-9) stream in each system, matching the
    // recording; the runs consume far fewer ops than were recorded, so the
    // replay never wraps.
    let live = SystemSim::new(config.clone(), |_| spec.build(geom, 512, 9)).run();
    let replayed = SystemSim::new(config, |_| {
        TraceFile::parse("stream-replay", &buf[..]).unwrap()
    })
    .run();
    assert_eq!(
        live.cycles, replayed.cycles,
        "replay must be cycle-identical"
    );
    assert_eq!(live.demand_acts(), replayed.demand_acts());
}

#[test]
fn mix_with_attacker_is_mitigated_without_hurting_victims_much() {
    let geom = MemGeometry::isca22_baseline();
    let mix = WorkloadMix::new(
        "attack_mix",
        vec![
            MixSlot::Attack(AttackPattern::ManySided {
                first: RowAddr::new(0, 0, 2, 5_000),
                n: 4,
            }),
            MixSlot::Workload(registry::by_name("leela").unwrap()),
        ],
    )
    .unwrap();
    let mut config = SystemConfig::scaled(512);
    config.cores = 4;
    config.instructions_per_core = 20_000;
    let mut sim =
        SystemSim::new(config, |core| mix.build(geom, core, 512, 5)).with_trackers(|ch| {
            let mut b = HydraConfig::builder(geom, ch);
            b.thresholds(32, 25).gct_entries(256).rcc_entries(64);
            Box::new(Hydra::new(b.build().unwrap()).unwrap())
        });
    let result = sim.run();
    assert!(
        result.mitigation_acts() > 0,
        "the attacker thread must be mitigated"
    );
    assert!(result.instructions >= 4 * 20_000, "all cores must finish");
}

#[test]
fn cache_hierarchy_filters_a_recorded_loop_to_nothing() {
    // A looping recorded trace with a small footprint should be entirely
    // absorbed by L1/L2/LLC after warmup.
    let geom = MemGeometry::isca22_baseline();
    let spec = registry::by_name("leela").unwrap();
    let mut buf = Vec::new();
    {
        let mut writer = TraceWriter::new(&mut buf).unwrap();
        writer.record(&mut spec.build(geom, 1024, 3), 500).unwrap();
    }
    let mut trace = TraceFile::parse("leela-loop", &buf[..]).unwrap();

    let mut llc = SharedLlc::isca22_baseline();
    let mut caches = CoreCaches::isca22_baseline();
    let mut dram_accesses = 0u64;
    let mut total = 0u64;
    for _ in 0..5_000 {
        let op = trace.next_op();
        total += 1;
        if caches
            .access(op.addr, op.is_write, &mut llc)
            .hit_level
            .is_none()
        {
            dram_accesses += 1;
        }
    }
    // 500 distinct ops replayed 10x: only the cold pass misses.
    assert!(dram_accesses <= 500, "{dram_accesses} DRAM accesses");
    assert!(total == 5_000 && caches.l1_hits() > 3_000);
}

#[test]
fn row_swap_policy_survives_a_full_mixed_run() {
    let geom = MemGeometry::isca22_baseline();
    let mix = WorkloadMix::new(
        "swap_mix",
        vec![MixSlot::Attack(AttackPattern::ManySided {
            first: RowAddr::new(0, 0, 1, 9_000),
            n: 4,
        })],
    )
    .unwrap();
    let mut config = SystemConfig::scaled(512);
    config.cores = 2;
    config.instructions_per_core = 20_000;
    config.mitigation = MitigationPolicy::RowSwap { seed: 77 };
    let mut sim =
        SystemSim::new(config, |core| mix.build(geom, core, 512, 5)).with_trackers(|ch| {
            let mut b = HydraConfig::builder(geom, ch);
            b.thresholds(32, 25).gct_entries(256).rcc_entries(64);
            Box::new(Hydra::new(b.build().unwrap()).unwrap())
        });
    let result = sim.run();
    let swaps: u64 = result.controllers.iter().map(|c| c.row_swaps).sum();
    assert!(swaps > 0, "the hammered rows must get swapped");
    assert!(
        result.side_accesses() >= swaps * 4,
        "row copies must be charged"
    );
}
