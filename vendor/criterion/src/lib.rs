//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation: it runs each benchmark closure in a
//! short timing loop and prints mean per-iteration time, without warmup
//! phases, outlier analysis, or HTML reports. When invoked with `--test`
//! (as `cargo test` does for bench targets), each benchmark runs exactly
//! once so test runs stay fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Compatibility no-op (the real crate reads CLI flags here; the shim
    /// reads them in [`Criterion::default`]).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((iters, elapsed)) if !self.test_mode => {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<40} {per_iter:>12.1} ns/iter ({iters} iters)");
            }
            _ => println!("{name:<40} ok (test mode)"),
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(name, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Drives the timed iteration loop.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, calling it repeatedly until the measurement budget is
    /// spent (once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.report = Some((1, Duration::ZERO));
            return;
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            // Check the clock once every few iterations to keep overhead low.
            if iters.is_multiple_of(16) && start.elapsed() >= self.measurement_time {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.report = Some((iters, start.elapsed()));
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion {
            test_mode: true,
            measurement_time: Duration::from_millis(1),
        };
        let mut ran = false;
        c.bench_function("probe", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion {
            test_mode: true,
            measurement_time: Duration::from_millis(1),
        };
        let mut count = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("a", |b| b.iter(|| count += 1));
            g.bench_function("b", |b| b.iter(|| count += 1));
        }
        assert_eq!(count, 2);
    }
}
