//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal, dependency-free implementation instead of the real
//! `rand` crate. It provides:
//!
//! * [`Rng`] with `gen`, `gen_range` and `gen_bool`;
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! * [`rngs::SmallRng`], a xoshiro256++ generator (the same family the real
//!   `SmallRng` uses on 64-bit targets).
//!
//! Streams are deterministic for a given seed, which is all the simulators
//! and tests rely on; the exact streams differ from upstream `rand`, so any
//! golden values derived from upstream streams would need re-deriving.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be drawn uniformly from an [`Rng`] without extra
/// parameters (the shim's analogue of sampling the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo bias is < 2^-64 per draw for the spans used here.
                let draw = (rng.next_u64() as u128) % span;
                self.start + draw as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// A random number generator.
///
/// Mirrors the `rand::Rng` methods the workspace calls. The only required
/// method is [`next_u64`](Rng::next_u64).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Rng::next_u64)).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a value of type `T` uniformly (floats in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (via SplitMix64 key
    /// expansion, as upstream `rand` does).
    fn seed_from_u64(seed: u64) -> Self;

    /// Constructs the generator from an entropy source. The shim has no OS
    /// entropy hook; this is a fixed-seed alias kept for API compatibility.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c_49e6_748f_ea9b)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast xoshiro256++ generator — the same family upstream
    /// `rand::rngs::SmallRng` uses on 64-bit platforms. Not
    /// cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut key = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut key);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            self.s = [s0n, s1n, s2n, s3n.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = draw(&mut &mut rng);
    }
}
