//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation. It keeps proptest's *interface* —
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) combinators,
//! `prop_assert*!` macros, [`prop_oneof!`], `prop::collection::vec` and
//! `prop::sample::select` — but only generates random cases; it does **not**
//! shrink failures or persist regression seeds (`.proptest-regressions`
//! files are ignored). Case generation is deterministic per test name, so
//! failures reproduce run to run.

#![forbid(unsafe_code)]

/// Test-runner configuration and error types.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::fmt;

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (produced by the `prop_assert*!` macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The RNG driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// A deterministic RNG derived from a test's name, so each property
        /// sees a reproducible but distinct stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// A uniform index in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty domain");
            self.0.gen_range(0..n)
        }

        /// A uniform `u64` in `[lo, hi)`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            self.0.gen_range(lo..hi)
        }

        /// A uniform `i64` in `[lo, hi)`.
        pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
            self.0.gen_range(lo..hi)
        }

        /// A uniform `f64` in `[lo, hi)`.
        pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
            self.0.gen_range(lo..hi)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of random values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: strategies sample
    /// directly and failures are not shrunk.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed to mix strategy types in
        /// [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn pick(&self, rng: &mut TestRng) -> V {
            (**self).pick(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn pick(&self, rng: &mut TestRng) -> S::Value {
            (**self).pick(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn pick(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    /// Weighted choice among strategies of one value type (the expansion of
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must sum to a nonzero value.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs a nonzero total weight");
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn pick(&self, rng: &mut TestRng) -> V {
            let mut draw = rng.range_u64(0, self.total_weight);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if draw < weight {
                    return arm.pick(rng);
                }
                draw -= weight;
            }
            // Unreachable: draw < total_weight = sum of weights.
            self.arms[self.arms.len() - 1].1.pick(rng)
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.range_u64(u64::from(self.start), u64::from(self.end)) as $t
                }
            }
        )*};
    }
    impl_range_strategy_uint!(u8, u16, u32);

    impl Strategy for Range<u64> {
        type Value = u64;
        fn pick(&self, rng: &mut TestRng) -> u64 {
            rng.range_u64(self.start, self.end)
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        #[allow(clippy::cast_possible_truncation)]
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.range_u64(self.start as u64, self.end as u64) as usize
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.range_i64(i64::from(self.start), i64::from(self.end)) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn pick(&self, rng: &mut TestRng) -> f64 {
            rng.range_f64(self.start, self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.pick(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Marker for phantom-typed helpers (unused placeholder kept for parity
    /// with real proptest's module layout).
    #[derive(Debug)]
    pub struct NoShrink<T>(PhantomData<T>);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification for [`vec`]: a fixed size or a `usize` range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.index(self.size.hi - self.size.lo)
            };
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Picks uniformly from a fixed list of values.
    ///
    /// # Panics
    ///
    /// The returned strategy panics when sampled if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    /// The result of [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            self.items[rng.index(self.items.len())].clone()
        }
    }
}

/// The usual proptest imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module path (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests. Mirrors real proptest's surface syntax
/// (shown as `no_run` — the expansion is a `#[test]` fn, not doctest code):
///
/// ```no_run
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Weighted (or unweighted) choice among strategies producing one value
/// type. Arms may be `weight => strategy` or bare strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.pick(&mut rng);
            assert!(v < 20 && v.is_multiple_of(2));
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let mut rng = crate::test_runner::TestRng::for_test("weights");
        let s = prop_oneof![9 => 0u32..1, 1 => 1u32..2];
        let ones = (0..1000).filter(|_| s.pick(&mut rng) == 1).count();
        assert!(ones < 300, "ones = {ones}");
        assert!(ones > 10, "ones = {ones}");
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        let s = prop::collection::vec(0u8..4, 3..7);
        for _ in 0..100 {
            let v = s.pick(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn select_draws_from_the_list() {
        let mut rng = crate::test_runner::TestRng::for_test("select");
        let s = prop::sample::select(vec![2u64, 4, 8]);
        for _ in 0..50 {
            assert!([2u64, 4, 8].contains(&s.pick(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_runs_cases(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }

        #[test]
        fn tuples_and_oneof_compose(v in prop_oneof![
            2 => (0u8..4, 0u32..16).prop_map(|(b, r)| (b, r)),
            1 => (4u8..8, 16u32..32).prop_map(|(b, r)| (b, r)),
        ]) {
            let (b, r) = v;
            prop_assert!((b < 4 && r < 16) || (b >= 4 && r >= 16));
        }
    }
}
