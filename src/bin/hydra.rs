//! `hydra` — command-line front end for the reproduction library.
//!
//! ```text
//! hydra storage                         # Tables 1/4/5 summary
//! hydra characterize gups [S]           # Table-3-style stats for a workload
//! hydra audit double_sided [ACTS]       # Theorem-1 audit of one pattern
//! hydra record mcf N out.trace [S]      # record a trace file
//! hydra hammer ROW [ACTS]               # hammer one row, print mitigations
//! hydra list                            # list the 36 workloads
//! hydra batch [flags]                   # resilient fault-campaign batch run
//! hydra replay FILE                     # reproduce a failed run from its artifact
//! hydra bench [--smoke] [flags]         # workload×geometry matrix → BENCH_hydra.json
//! hydra bench --compare OLD.json [...]  # regression diff against a baseline report
//! hydra profile [flags]                 # per-phase time attribution + folded stacks
//! hydra trace PATTERN [ACTS] [flags]    # JSONL telemetry event stream to stdout
//! hydra forensics FILE [--t-h N]        # classify a recorded trace, emit incidents
//! hydra sweep [--smoke] [--jobs N]      # design-space sweep → hydra-sweep-v1 JSONL
//! hydra sweep --arena [--smoke] [...]   # cross-tracker race → hydra-arena-v1 JSONL
//! hydra serve --socket PATH [flags]     # multi-tenant activation daemon
//! hydra load --socket PATH [--smoke]    # adversarial load mix against a daemon
//! hydra top --socket PATH [--watch N]   # live daemon stats scrape (hydra-serve-stats-v1)
//! hydra replay-session FILE             # byte-identical session replay check
//! ```

use hydra_repro::analysis::faults::{run_case, FaultCaseReport, FaultCaseSpec};
use hydra_repro::arena::{run_arena, ArenaGrid};
use hydra_repro::baselines::storage::{Scheme, DDR4_BANKS_PER_RANK};
use hydra_repro::core::degrade::DegradationPolicy;
use hydra_repro::core::{Hydra, HydraConfig, HydraStorage};
use hydra_repro::dram::DramTiming;
use hydra_repro::engine::{run_sweep, SweepGrid};
use hydra_repro::faults::FaultPlan;
use hydra_repro::forensics::{
    compare_reports, incidents_to_jsonl, parse_bench_report, parse_trace_meta, replay_trace,
    CompareConfig, ForensicsProbe, BENCH_SCHEMA_VERSION_V2,
};
use hydra_repro::profiler::{phase, OverheadReport, ProfileNode, ProfileTree, TreeProfiler};
use hydra_repro::server::stats::names as metric_names;
use hydra_repro::server::{replay_check, run_load, Client, LoadConfig, ServeConfig, StatsReading};
use hydra_repro::sim::batch::{BatchConfig, BatchJob, BatchRunner, JobStatus};
use hydra_repro::sim::{
    run_windowed, run_windowed_profiled, ActivationSim, ActivationSimReport, WindowSeries,
};
use hydra_repro::telemetry::json::escape_into;
use hydra_repro::telemetry::{EventKind, JsonlSink, KindFilterSink, TeeSink};
use hydra_repro::types::{ActivationKind, ActivationTracker, MemGeometry, RowAddr};
use hydra_repro::workloads::{registry, AttackPattern, TraceSource, TraceWriter};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("storage") => cmd_storage(),
        Some("list") => cmd_list(),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("hammer") => cmd_hammer(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("forensics") => cmd_forensics(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("replay-session") => cmd_replay_session(&args[1..]),
        _ => {
            eprintln!(
                "usage: hydra <storage|list|characterize|audit|record|hammer|batch|replay|bench|profile|trace|forensics|sweep|serve|load|top|replay-session> [args]"
            );
            eprintln!("  storage                      print the paper's storage tables");
            eprintln!("  list                         list the 36 registered workloads");
            eprintln!("  characterize <workload> [S]  Table-3 stats from the generator");
            eprintln!("  audit <pattern> [acts]       Theorem-1 audit (single_sided,");
            eprintln!(
                "                               double_sided, many_sided, half_double, thrash)"
            );
            eprintln!("  record <workload> <n> <file> [S]  record a trace file");
            eprintln!("  hammer <row> [acts]          hammer one row through Hydra");
            eprintln!("  batch [--out DIR] [--t-rh N] [--acts N] [--seed S]");
            eprintln!("        [--watchdog-ms MS] [--retries N] [--force-failure]");
            eprintln!("                               fault campaign under the batch harness");
            eprintln!("  replay <file>                reproduce a run from its replay artifact");
            eprintln!("  bench [--smoke] [--out FILE] [--acts N] [--repeats N] [--profile]");
            eprintln!(
                "                               throughput/slowdown matrix → BENCH_hydra.json"
            );
            eprintln!("  bench --compare OLD.json [--against NEW.json] [--tolerance PCT]");
            eprintln!("        [--gate-throughput]    diff against a baseline; nonzero exit on");
            eprintln!(
                "                               regression (runs fresh cells unless --against)"
            );
            eprintln!("  profile [--workload W] [--geometry G] [--acts N] [--smoke]");
            eprintln!("          [--out FILE] [--folded FILE] [--repeats N]");
            eprintln!(
                "                               per-phase time attribution: table on stdout,"
            );
            eprintln!(
                "                               hydra-profile-v1 JSON + folded stacks to files"
            );
            eprintln!("  trace <pattern> [acts] [--kinds K1,K2,..] [--limit N] [--forensics]");
            eprintln!("                               stream telemetry events as JSONL");
            eprintln!(
                "  forensics <file> [--t-h N]   classify a recorded trace, emit incident JSONL"
            );
            eprintln!("  sweep [--smoke] [--jobs N] [--out FILE] [--deterministic]");
            eprintln!("        [--geometry G] [--workloads W1,..] [--gct N1,..] [--rcc N1,..]");
            eprintln!("        [--t-rh N1,..] [--acts N] [--seed S]");
            eprintln!(
                "                               parallel design-space sweep → JSONL + Pareto"
            );
            eprintln!("  sweep --arena [--smoke] [--jobs N] [--out FILE] [--deterministic]");
            eprintln!("        [--geometry G] [--trackers T1,..] [--workloads W1,..]");
            eprintln!("        [--t-rh N1,..] [--acts N] [--seed S]");
            eprintln!("                               cross-tracker oracle-checked leaderboard");
            eprintln!("  serve --socket PATH [--geometry G] [--t-rh N] [--max-tenants N]");
            eprintln!("        [--idle-timeout-ms MS] [--record FILE] [--allow-crash-frames]");
            eprintln!("        [--metrics]            run the activation daemon until drained");
            eprintln!("  load --socket PATH [--smoke] [--tenants N] [--batches N] [--rows N]");
            eprintln!("        [--fault-rate F] [--seed S] [--no-drain | --drain-only]");
            eprintln!("                               adversarial load mix; kv report on stdout");
            eprintln!("  top --socket PATH [--watch N] [--json]");
            eprintln!(
                "                               live daemon stats: counters, latency, tenants"
            );
            eprintln!(
                "  replay-session <file>        re-run a recorded session; nonzero on divergence"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_storage() -> Result<(), String> {
    let geom = MemGeometry::isca22_baseline();
    let config = HydraConfig::isca22_default(geom, 0).map_err(|e| e.to_string())?;
    let storage = HydraStorage::for_system(&config, u32::from(geom.channels()));
    println!(
        "Hydra (32 GB system): GCT {} KB + RCC {} KB + RIT-ACT {} B",
        storage.gct_bytes / 1024,
        storage.rcc_bytes / 1024,
        storage.rit_bytes
    );
    println!(
        "  total SRAM {:.1} KB; in-DRAM RCT {} MB\n",
        storage.total_sram_bytes() as f64 / 1024.0,
        storage.rct_dram_bytes >> 20
    );
    println!("Prior schemes, per 16 GB rank:");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "T=250", "T=500", "T=1000", "T=32000"
    );
    for scheme in Scheme::ALL {
        let row: Vec<String> = [250u32, 500, 1000, 32_000]
            .iter()
            .map(|&t| {
                format!(
                    "{:.0} KB",
                    scheme.bytes_per_rank(t, DDR4_BANKS_PER_RANK) as f64 / 1024.0
                )
            })
            .collect();
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            scheme.name(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<12} {:<10} {:>8} {:>12} {:>10} {:>10}",
        "workload", "suite", "MPKI", "unique rows", "ACT-250+", "ACTs/row"
    );
    for w in &registry::ALL {
        println!(
            "{:<12} {:<10} {:>8.2} {:>12} {:>10} {:>10.1}",
            w.name,
            w.suite.label(),
            w.mpki,
            w.unique_rows,
            w.act250_rows,
            w.acts_per_row
        );
    }
    Ok(())
}

fn cmd_characterize(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("characterize needs a workload name")?;
    let scale: u64 = args
        .get(1)
        .map_or(Ok(256), |s| s.parse().map_err(|_| "bad scale"))?;
    let spec = registry::by_name(name).ok_or_else(|| format!("unknown workload {name}"))?;
    let geom = MemGeometry::isca22_baseline();
    let mut trace = spec.build(geom, scale, 42);
    let accesses = ((spec.expected_activations(scale) * spec.burst) as u64).max(10_000);
    let mut acts: HashMap<RowAddr, u64> = HashMap::new();
    let mut last = None;
    let mut gap_sum = 0u64;
    for _ in 0..accesses {
        let op = trace.next_op();
        gap_sum += u64::from(op.gap);
        let row = geom.row_of_line(op.addr);
        if last != Some(row) {
            *acts.entry(row).or_insert(0) += 1;
            last = Some(row);
        }
    }
    let unique = acts.len();
    let hot = acts.values().filter(|&&c| c > 250).count();
    let total: u64 = acts.values().sum();
    println!("{name} at scale {scale} ({accesses} accesses):");
    println!("  unique rows     : {unique}");
    println!("  rows > 250 ACTs : {hot}");
    println!(
        "  ACTs per row    : {:.1}",
        total as f64 / unique.max(1) as f64
    );
    println!(
        "  effective MPKI  : {:.2}",
        accesses as f64 * 1000.0 / (gap_sum + accesses) as f64
    );
    Ok(())
}

fn parse_pattern(name: &str, geom: MemGeometry) -> Result<AttackPattern, String> {
    AttackPattern::canonical(name, geom).ok_or_else(|| format!("unknown pattern {name}"))
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let geom = MemGeometry::isca22_baseline();
    let pattern = parse_pattern(args.first().ok_or("audit needs a pattern")?, geom)?;
    let acts: u64 = args
        .get(1)
        .map_or(Ok(200_000), |s| s.parse().map_err(|_| "bad act count"))?;
    let hydra = Hydra::isca22_default(geom, 0).map_err(|e| e.to_string())?;
    let t_h = hydra.config().t_h;
    let mut sim = ActivationSim::new(geom, hydra);
    let mut rows = pattern.rows(geom);
    let mut oracle: HashMap<RowAddr, u32> = HashMap::new();
    let mut worst = 0u32;
    let mut mitigated: HashSet<RowAddr> = HashSet::new();
    for _ in 0..acts {
        let mut row = rows.next_row();
        row.channel = 0;
        *oracle.entry(row).or_insert(0) += 1;
        sim.activate(row);
        for m in sim.drain_mitigated() {
            oracle.insert(m, 0);
            mitigated.insert(m);
        }
        worst = worst.max(*oracle.get(&row).unwrap_or(&0));
    }
    let report = sim.report();
    println!("pattern          : {}", pattern.name());
    println!("demand acts      : {}", report.demand_acts);
    println!(
        "mitigations      : {} (over {} distinct rows)",
        report.mitigations,
        mitigated.len()
    );
    println!("mitigation acts  : {}", report.mitigation_acts);
    println!("bandwidth        : {:.2}x", report.bandwidth_inflation());
    println!("worst unmitigated: {worst} (bound T_H = {t_h})");
    if worst <= t_h {
        println!("verdict          : SECURE");
        Ok(())
    } else {
        Err("tracking guarantee violated".into())
    }
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("record needs a workload name")?;
    let n: u64 = args
        .get(1)
        .ok_or("record needs an op count")?
        .parse()
        .map_err(|_| "bad op count")?;
    let path = args.get(2).ok_or("record needs an output file")?;
    let scale: u64 = args
        .get(3)
        .map_or(Ok(256), |s| s.parse().map_err(|_| "bad scale"))?;
    let spec = registry::by_name(name).ok_or_else(|| format!("unknown workload {name}"))?;
    let mut trace = spec.build(MemGeometry::isca22_baseline(), scale, 42);
    let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut writer = TraceWriter::new(std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    writer.record(&mut trace, n).map_err(|e| e.to_string())?;
    println!("wrote {n} ops of {name} (scale {scale}) to {path}");
    Ok(())
}

fn cmd_hammer(args: &[String]) -> Result<(), String> {
    let row_index: u32 = args
        .first()
        .ok_or("hammer needs a row index")?
        .parse()
        .map_err(|_| "bad row index")?;
    let acts: u32 = args
        .get(1)
        .map_or(Ok(1000), |s| s.parse().map_err(|_| "bad act count"))?;
    let geom = MemGeometry::isca22_baseline();
    let mut hydra = Hydra::isca22_default(geom, 0).map_err(|e| e.to_string())?;
    let row = RowAddr::new(0, 0, 0, row_index % geom.rows_per_bank());
    let mut mitigated_at = Vec::new();
    for i in 1..=acts {
        let resp = hydra.on_activation(row, u64::from(i), ActivationKind::Demand);
        if !resp.mitigations.is_empty() {
            mitigated_at.push(i);
        }
    }
    println!("hammered {row} {acts} times");
    println!("mitigations at ACTs {mitigated_at:?}");
    println!();
    print!("{}", hydra.stats());
    Ok(())
}

/// One fault-campaign run as a batch job: a run is "failed" when the
/// shadow oracle records any violation, so terminal failures carry their
/// replay artifact out of the harness.
struct FaultCaseJob(FaultCaseSpec);

impl BatchJob for FaultCaseJob {
    type Output = FaultCaseReport;

    fn label(&self) -> String {
        self.0.label.clone()
    }

    fn run(&self, _attempt: u32) -> Result<FaultCaseReport, String> {
        let report = run_case(&self.0).map_err(|e| e.to_string())?;
        if report.is_clean() {
            Ok(report)
        } else {
            Err(format!(
                "{} oracle violation(s), worst unmitigated {}",
                report.oracle.violations_total, report.oracle.worst_unmitigated
            ))
        }
    }

    fn replay_artifact(&self) -> Option<String> {
        Some(self.0.to_artifact())
    }
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let mut out: PathBuf = PathBuf::from("replay-artifacts");
    let mut t_rh: u32 = 200;
    let mut acts: u64 = 30_000;
    let mut seed: u64 = 0xace5;
    let mut watchdog_ms: u64 = 60_000;
    let mut retries: u32 = 1;
    let mut force_failure = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--out" => out = PathBuf::from(value("--out")?),
            "--t-rh" => t_rh = value("--t-rh")?.parse().map_err(|_| "bad --t-rh")?,
            "--acts" => acts = value("--acts")?.parse().map_err(|_| "bad --acts")?,
            "--seed" => seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--watchdog-ms" => {
                watchdog_ms = value("--watchdog-ms")?
                    .parse()
                    .map_err(|_| "bad --watchdog-ms")?;
            }
            "--retries" => retries = value("--retries")?.parse().map_err(|_| "bad --retries")?,
            "--force-failure" => force_failure = true,
            other => return Err(format!("unknown batch flag {other}")),
        }
        i += 1;
    }

    // The campaign: survivable fault rates across the degradation
    // policies. Every job here is expected to pass (retries cover nothing
    // deterministic, but keep the harness honest about its budget).
    let mut jobs = Vec::new();
    for (j, &rate) in [0.0f64, 1e-3].iter().enumerate() {
        for policy in [DegradationPolicy::Off, DegradationPolicy::ImmediateRefresh] {
            let mut spec = FaultCaseSpec::new("tiny", t_rh, acts, policy);
            spec.label = format!("tiny/rate{rate}/{policy}");
            spec.stream_seed = seed;
            spec.plan = FaultPlan::uniform(rate, seed ^ (j as u64 + 1));
            jobs.push(FaultCaseJob(spec));
        }
    }
    if force_failure {
        // Drop every mitigation with degradation off: the oracle must
        // catch the violation and the harness must emit the artifact.
        let mut spec = FaultCaseSpec::new("tiny", t_rh, acts, DegradationPolicy::Off);
        spec.label = format!("tiny/forced-failure/t_rh{t_rh}");
        spec.stream_seed = seed;
        spec.plan = FaultPlan::none().with_seed(seed).with_drop_mitigation(1.0);
        jobs.push(FaultCaseJob(spec));
    }

    let runner = BatchRunner::new(BatchConfig {
        retries,
        backoff_base: Duration::from_millis(50),
        watchdog: Duration::from_millis(watchdog_ms),
        artifact_dir: Some(out.clone()),
        jobs: 1,
    });
    let expected_failures = usize::from(force_failure);
    let total = jobs.len();
    println!("batch: {total} job(s), artifacts to {}", out.display());
    let report = runner.run(jobs);

    for job in &report.jobs {
        let (disposition, detail) = match &job.status {
            JobStatus::Succeeded { attempts } => ("ok", format!("{attempts} attempt(s)")),
            JobStatus::Failed {
                attempts,
                last_error,
            } => ("FAILED", format!("{attempts} attempt(s): {last_error}")),
            JobStatus::TimedOut { attempts } => ("TIMEOUT", format!("{attempts} attempt(s)")),
        };
        println!("  {:<40} {:<8} {}", job.label, disposition, detail);
        if let Some(path) = &job.artifact_path {
            println!("  {:<40} replay → {}", "", path.display());
        }
    }
    println!(
        "batch: {} succeeded, {} failed",
        report.succeeded(),
        report.failed()
    );
    if report.failed() == expected_failures {
        Ok(())
    } else {
        Err(format!(
            "{} job(s) failed, expected {expected_failures}",
            report.failed()
        ))
    }
}

/// One `hydra bench` matrix cell: simulated slowdown and wall-clock
/// throughput, in a machine-readable row of `BENCH_hydra.json`.
#[derive(Debug, Clone)]
struct BenchCell {
    workload: String,
    geometry: String,
    acts: u64,
    wall_secs: f64,
    acts_per_sec: f64,
    acts_per_sec_stddev: f64,
    acts_per_sec_cv_pct: f64,
    repeats: u64,
    bandwidth_inflation: f64,
    slowdown_pct: f64,
    windows: u64,
    mitigations: u64,
    delta_sum_ok: bool,
}

impl BenchCell {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"geometry\":\"{}\",\"acts\":{},",
                "\"wall_secs\":{:.6},\"acts_per_sec\":{:.1},",
                "\"acts_per_sec_stddev\":{:.1},\"acts_per_sec_cv_pct\":{:.3},",
                "\"repeats\":{},\"bandwidth_inflation\":{:.6},\"slowdown_pct\":{:.3},",
                "\"windows\":{},\"mitigations\":{},\"delta_sum_ok\":{}}}"
            ),
            self.workload,
            self.geometry,
            self.acts,
            self.wall_secs,
            self.acts_per_sec,
            self.acts_per_sec_stddev,
            self.acts_per_sec_cv_pct,
            self.repeats,
            self.bandwidth_inflation,
            self.slowdown_pct,
            self.windows,
            self.mitigations,
            self.delta_sum_ok,
        )
    }
}

fn bench_geometry(name: &str) -> Result<MemGeometry, String> {
    match name {
        "tiny" => Ok(MemGeometry::tiny()),
        "isca22" => Ok(MemGeometry::isca22_baseline()),
        other => Err(format!("unknown geometry {other}")),
    }
}

/// The deterministic row stream for one bench/profile cell: either a
/// registered workload or an attack pattern; the attack cells are what
/// make slowdown and mitigations nonzero.
fn bench_rows(
    workload: &str,
    geom: MemGeometry,
    acts: u64,
    seed: u64,
) -> Result<Vec<RowAddr>, String> {
    if let Some(spec) = registry::by_name(workload) {
        let mut trace = spec.build(geom, 256, seed);
        Ok((0..acts)
            .map(|_| geom.row_of_line(trace.next_op().addr))
            .collect())
    } else {
        let mut rows = parse_pattern(workload, geom)?.rows(geom);
        Ok((0..acts)
            .map(|_| {
                let mut row = rows.next_row();
                row.channel = 0;
                row
            })
            .collect())
    }
}

/// One bench cell run under the batch harness (panic isolation, watchdog,
/// retries), so a wedged cell cannot take the whole matrix down.
struct BenchCellJob {
    workload: String,
    geometry: String,
    acts: u64,
    seed: u64,
    repeats: u64,
}

impl BatchJob for BenchCellJob {
    type Output = BenchCell;

    fn label(&self) -> String {
        format!("{}/{}", self.workload, self.geometry)
    }

    fn run(&self, _attempt: u32) -> Result<BenchCell, String> {
        let geom = bench_geometry(&self.geometry)?;
        let rows = bench_rows(&self.workload, geom, self.acts, self.seed)?;

        // Each repeat replays the same deterministic row stream through a
        // fresh tracker, so the simulated columns are identical across
        // repeats; only the wall-clock throughput varies, and that spread
        // is exactly what the variance columns characterize.
        let mut throughputs: Vec<f64> = Vec::with_capacity(self.repeats as usize);
        let mut wall_total = 0.0;
        let mut sim_outcome: Option<(f64, u64, u64, bool)> = None;
        for _ in 0..self.repeats.max(1) {
            let tracker = Hydra::isca22_default(geom, 0).map_err(|e| e.to_string())?;
            // Shrink the refresh window so even a short run crosses several
            // window boundaries and exercises the reset + snapshot path.
            let timing = DramTiming::ddr4_3200().with_scaled_window(1_000);
            let mut sim = ActivationSim::new(geom, tracker).with_timing(timing);
            let mut series = WindowSeries::new();
            let start = std::time::Instant::now();
            let report = run_windowed(&mut sim, rows.clone(), &mut series);
            let wall_secs = start.elapsed().as_secs_f64();
            wall_total += wall_secs;
            throughputs.push(self.acts as f64 / wall_secs.max(1e-9));
            let delta_sum_ok = series.total() == sim.tracker().stats();
            sim_outcome = Some((
                report.bandwidth_inflation(),
                report.window_resets,
                report.mitigations,
                delta_sum_ok,
            ));
        }
        let (inflation, windows, mitigations, delta_sum_ok) =
            sim_outcome.ok_or("bench cell ran zero repeats")?;

        let mean = throughputs.iter().sum::<f64>() / throughputs.len() as f64;
        let variance = throughputs
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f64>()
            / throughputs.len() as f64;
        let stddev = variance.sqrt();
        Ok(BenchCell {
            workload: self.workload.clone(),
            geometry: self.geometry.clone(),
            acts: self.acts,
            wall_secs: wall_total,
            acts_per_sec: mean,
            acts_per_sec_stddev: stddev,
            acts_per_sec_cv_pct: if mean > 0.0 {
                stddev / mean * 100.0
            } else {
                0.0
            },
            repeats: throughputs.len() as u64,
            bandwidth_inflation: inflation,
            slowdown_pct: (inflation - 1.0) * 100.0,
            windows,
            mitigations,
            delta_sum_ok,
        })
    }
}

fn bench_json(smoke: bool, acts: u64, cells: &[BenchCell], failures: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\"schema\":\"{BENCH_SCHEMA_VERSION_V2}\",");
    let _ = write!(
        out,
        "\"smoke\":{smoke},\"acts_per_cell\":{acts},\"cells\":["
    );
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&cell.to_json());
    }
    out.push_str("],\"failures\":[");
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(f, &mut out);
        out.push('"');
    }
    let mean_aps = if cells.is_empty() {
        0.0
    } else {
        cells.iter().map(|c| c.acts_per_sec).sum::<f64>() / cells.len() as f64
    };
    let max_slowdown = cells.iter().map(|c| c.slowdown_pct).fold(0.0f64, f64::max);
    let all_delta_ok = cells.iter().all(|c| c.delta_sum_ok);
    let _ = write!(
        out,
        concat!(
            "],\"summary\":{{\"cells\":{},\"ok\":{},\"failed\":{},",
            "\"mean_acts_per_sec\":{:.1},\"max_slowdown_pct\":{:.3},",
            "\"all_delta_sums_ok\":{}}}}}"
        ),
        cells.len() + failures.len(),
        cells.len(),
        failures.len(),
        mean_aps,
        max_slowdown,
        all_delta_ok,
    );
    out
}

/// Default sampling period for the profile harness: prime, so it cannot
/// resonate with the small periodicities of the attack-pattern streams, and
/// large enough that recorded-unit clock reads stay well under the
/// documented overhead budget (the suppressed path costs a few `Cell` ops).
const PROFILE_SAMPLE_PERIOD: u32 = 127;

/// One profiled replay of a cell: a fresh tracker wired to a
/// [`TreeProfiler`] through the span seam, driven by the profiled windowed
/// runner so the tracker's phase spans nest under one `sim` root.
fn profiled_cell_run(
    config: &HydraConfig,
    geom: MemGeometry,
    rows: &[RowAddr],
    sample: u32,
) -> Result<(ProfileTree, ActivationSimReport), String> {
    let profiler = TreeProfiler::sampled(sample);
    let tracker = Hydra::with_spans(config.clone(), profiler.clone()).map_err(|e| e.to_string())?;
    let timing = DramTiming::ddr4_3200().with_scaled_window(1_000);
    let mut sim = ActivationSim::new(geom, tracker).with_timing(timing);
    let mut series = WindowSeries::new();
    let mut driver = profiler.clone();
    let report = run_windowed_profiled(&mut sim, rows.iter().copied(), &mut series, &mut driver);
    Ok((profiler.tree(), report))
}

/// Config for the default `profile` stream: a deliberately under-sized
/// 4-way/16-set RCC and low thresholds, so a short run arms per-row
/// tracking and then keeps every tracker phase firing in every window.
/// `isca22_default` on the tiny geometry can never evict from the RCC
/// (4096 rows over 256 sets × 16 ways holds the whole channel), so the
/// `rct_access` refetch path would stay dark under it.
fn coverage_config(geom: MemGeometry) -> Result<HydraConfig, String> {
    let rows = geom.rows_per_channel() as usize;
    let mut b = HydraConfig::builder(geom, 0);
    b.thresholds(24, 16)
        .gct_entries(rows) // one row per group: spills install single rows
        .rcc_entries(64)
        .rcc_ways(4);
    b.build().map_err(|e| e.to_string())
}

/// The default `profile` stream for [`coverage_config`]: 33 rows that all
/// collide in one 4-way RCC set (static indexer, 16 sets: set = row & 15)
/// interleaved with a resident two-row pair in another set. Once armed
/// past T_G the conflict rotation misses the RCC on every access — probe
/// miss, RCT fetch, fill + eviction writeback — while the pair keeps the
/// hit path and its fast mitigations warm.
fn coverage_rows(acts: u64) -> Vec<RowAddr> {
    let conflict: Vec<u32> = (0..33).map(|i| i * 16).collect();
    let pair = [1u32, 17];
    let mut out = Vec::with_capacity(acts as usize);
    let mut j = 0usize;
    for i in 0..acts {
        let row = if i % 4 == 3 {
            pair[(i / 4) as usize % 2]
        } else {
            j += 1;
            conflict[j % conflict.len()]
        };
        out.push(RowAddr::new(0, 0, 0, row));
    }
    out
}

/// Self-time per phase name, summed across every depth of the tree, so a
/// phase's attribution is the same whether it ran under `sim` directly or
/// nested inside `activate`.
fn phase_self_nanos(tree: &ProfileTree) -> HashMap<String, u64> {
    fn walk(name: &str, node: &ProfileNode, out: &mut HashMap<String, u64>) {
        *out.entry(name.to_string()).or_insert(0) += node.self_nanos();
        for (child_name, child) in &node.children {
            walk(child_name, child, out);
        }
    }
    let mut out = HashMap::new();
    for (name, node) in &tree.roots {
        walk(name, node, &mut out);
    }
    out
}

/// Total (cumulative) time per phase name, summed across every depth.
fn phase_total_nanos(tree: &ProfileTree) -> HashMap<String, u64> {
    fn walk(name: &str, node: &ProfileNode, out: &mut HashMap<String, u64>) {
        *out.entry(name.to_string()).or_insert(0) += node.total_nanos;
        for (child_name, child) in &node.children {
            walk(child_name, child, out);
        }
    }
    let mut out = HashMap::new();
    for (name, node) in &tree.roots {
        walk(name, node, &mut out);
    }
    out
}

/// One-line per-cell attribution: each tracker phase's self-time share of
/// the *recorded tracker time* (`activate` + `window_reset` spans). Using
/// recorded tracker time — not the whole run — keeps the shares meaningful
/// under sampling, where suppressed activations leave the driver span's
/// self-time inflated by design.
fn render_phase_columns(tree: &ProfileTree) -> String {
    use std::fmt::Write as _;
    let totals = phase_total_nanos(tree);
    let tracked = totals.get(phase::ACTIVATE).copied().unwrap_or(0)
        + totals.get(phase::WINDOW_RESET).copied().unwrap_or(0);
    let tracked = tracked.max(1) as f64;
    let self_times = phase_self_nanos(tree);
    let mut out = String::from("phases:");
    for name in phase::TRACKER_PHASES {
        let nanos = self_times.get(name).copied().unwrap_or(0);
        let _ = write!(out, " {name} {:.1}%", nanos as f64 / tracked * 100.0);
    }
    out
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut workload = String::from("mix");
    let mut geometry = String::from("tiny");
    let mut acts_override: Option<u64> = None;
    let mut smoke = false;
    let mut out = PathBuf::from("PROFILE_hydra.json");
    let mut folded_out: Option<PathBuf> = None;
    let mut repeats: u32 = 9;
    let mut sample: u32 = PROFILE_SAMPLE_PERIOD;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--sample" => {
                i += 1;
                sample = args
                    .get(i)
                    .ok_or("--sample needs a value")?
                    .parse()
                    .map_err(|_| "bad --sample")?;
                if sample == 0 {
                    return Err("--sample must be at least 1".into());
                }
            }
            "--workload" => {
                i += 1;
                workload = args.get(i).ok_or("--workload needs a value")?.clone();
            }
            "--geometry" => {
                i += 1;
                geometry = args.get(i).ok_or("--geometry needs a value")?.clone();
            }
            "--acts" => {
                i += 1;
                acts_override = Some(
                    args.get(i)
                        .ok_or("--acts needs a value")?
                        .parse()
                        .map_err(|_| "bad --acts")?,
                );
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).ok_or("--out needs a value")?);
            }
            "--folded" => {
                i += 1;
                folded_out = Some(PathBuf::from(args.get(i).ok_or("--folded needs a value")?));
            }
            "--repeats" => {
                i += 1;
                repeats = args
                    .get(i)
                    .ok_or("--repeats needs a value")?
                    .parse()
                    .map_err(|_| "bad --repeats")?;
                if repeats == 0 {
                    return Err("--repeats must be at least 1".into());
                }
            }
            other => return Err(format!("unknown profile flag {other}")),
        }
        i += 1;
    }
    let acts = acts_override.unwrap_or(if smoke { 20_000 } else { 200_000 });

    let geom = bench_geometry(&geometry)?;
    let (config, rows) = if workload == "mix" {
        if geometry != "tiny" {
            return Err("the mix stream is defined for --geometry tiny only".into());
        }
        (coverage_config(geom)?, coverage_rows(acts))
    } else {
        let config = HydraConfig::isca22_default(geom, 0).map_err(|e| e.to_string())?;
        (config, bench_rows(&workload, geom, acts, 42)?)
    };
    println!("profile: {workload}/{geometry}, {acts} acts, sample 1/{sample}");

    // The attributed run. Self-times are derived (total minus children),
    // so conservation holds exactly per node; the 5% tolerance here only
    // guards the harness against a future profiler regression.
    let (tree, report) = profiled_cell_run(&config, geom, &rows, sample)?;
    tree.check_conservation(0.05)
        .map_err(|e| format!("span time conservation violated: {e}"))?;

    // The profiler measuring itself on the same deterministic stream. The
    // bare leg also proves the profiled run changed no simulated outcome.
    let mut bare_report: Option<ActivationSimReport> = None;
    let overhead = OverheadReport::measure(
        repeats,
        || {
            let tracker = Hydra::new(config.clone()).expect("validated config");
            let timing = DramTiming::ddr4_3200().with_scaled_window(1_000);
            let mut sim = ActivationSim::new(geom, tracker).with_timing(timing);
            let mut series = WindowSeries::new();
            bare_report = Some(run_windowed(&mut sim, rows.iter().copied(), &mut series));
        },
        || {
            profiled_cell_run(&config, geom, &rows, sample).expect("profiled run");
        },
    );
    if bare_report != Some(report) {
        return Err("profiled run diverged from the unprofiled run".into());
    }

    print!("{}", tree.render_table());
    println!("{}", render_phase_columns(&tree));
    println!(
        "overhead: {:.2}% (bare {:.3} ms, profiled {:.3} ms, best of {repeats})",
        overhead.overhead_percent(),
        overhead.bare_nanos as f64 / 1e6,
        overhead.profiled_nanos as f64 / 1e6,
    );

    let extra = format!(
        "\"workload\":\"{workload}\",\"geometry\":\"{geometry}\",\"acts\":{acts},\
         \"sample_period\":{sample},\"overhead_pct\":{:.3},",
        overhead.overhead_percent()
    );
    std::fs::write(&out, tree.to_json_with(&extra))
        .map_err(|e| format!("{}: {e}", out.display()))?;
    println!("profile: wrote {}", out.display());
    if let Some(path) = &folded_out {
        std::fs::write(path, tree.to_folded()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("profile: wrote {}", path.display());
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_hydra.json");
    let mut acts_override: Option<u64> = None;
    let mut compare: Option<PathBuf> = None;
    let mut against: Option<PathBuf> = None;
    let mut tolerance_pct = CompareConfig::default().tolerance_pct;
    let mut gate_throughput = false;
    let mut bench_jobs: usize = 1;
    let mut repeats: u64 = 1;
    let mut profile = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--profile" => profile = true,
            "--repeats" => {
                i += 1;
                repeats = args
                    .get(i)
                    .ok_or("--repeats needs a value")?
                    .parse()
                    .map_err(|_| "bad --repeats")?;
                if repeats == 0 {
                    return Err("--repeats must be at least 1".into());
                }
            }
            "--jobs" => {
                i += 1;
                bench_jobs = args
                    .get(i)
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|_| "bad --jobs")?;
                if bench_jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).ok_or("--out needs a value")?);
            }
            "--acts" => {
                i += 1;
                acts_override = Some(
                    args.get(i)
                        .ok_or("--acts needs a value")?
                        .parse()
                        .map_err(|_| "bad --acts")?,
                );
            }
            "--compare" => {
                i += 1;
                compare = Some(PathBuf::from(args.get(i).ok_or("--compare needs a value")?));
            }
            "--against" => {
                i += 1;
                against = Some(PathBuf::from(args.get(i).ok_or("--against needs a value")?));
            }
            "--tolerance" => {
                i += 1;
                tolerance_pct = args
                    .get(i)
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|_| "bad --tolerance")?;
            }
            "--gate-throughput" => gate_throughput = true,
            other => return Err(format!("unknown bench flag {other}")),
        }
        i += 1;
    }
    let compare_config = CompareConfig {
        tolerance_pct,
        gate_throughput,
    };

    // Pure diff mode: compare two existing reports, run nothing.
    if let (Some(baseline), Some(candidate)) = (&compare, &against) {
        let old = read_bench_report(baseline)?;
        let new = read_bench_report(candidate)?;
        return finish_compare(&old, &new, compare_config);
    }
    if against.is_some() {
        return Err("--against requires --compare".into());
    }

    // Read the baseline before the run: `--out` may point at the same file
    // (the default), and the fresh report must not clobber it unread.
    let baseline = compare.as_deref().map(read_bench_report).transpose()?;

    let (workloads, geometries): (&[&str], &[&str]) = if smoke {
        (&["gups", "mcf", "double_sided"], &["tiny"])
    } else {
        (
            &["gups", "mcf", "stream", "lbm", "double_sided", "many_sided"],
            &["tiny", "isca22"],
        )
    };
    let acts = acts_override.unwrap_or(if smoke { 20_000 } else { 200_000 });

    let mut jobs = Vec::new();
    for w in workloads {
        for g in geometries {
            jobs.push(BenchCellJob {
                workload: (*w).to_string(),
                geometry: (*g).to_string(),
                acts,
                seed: 42,
                repeats,
            });
        }
    }
    let total = jobs.len();
    println!(
        "bench: {total} cell(s), {acts} acts each, {repeats} repeat(s) → {}",
        out.display()
    );

    // Cell results are pure functions of the cell and reports come back in
    // submission order, so --jobs only changes wall-clock (and the
    // wall_secs/acts_per_sec fields derived from it), never the matrix.
    let runner = BatchRunner::new(BatchConfig {
        retries: 1,
        backoff_base: Duration::from_millis(50),
        watchdog: Duration::from_secs(300),
        artifact_dir: None,
        jobs: bench_jobs,
    });
    let report = runner.run(jobs);

    let mut cells: Vec<BenchCell> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for job in &report.jobs {
        match (&job.status, &job.output) {
            (JobStatus::Succeeded { .. }, Some(cell)) => {
                println!(
                    "  {:<16} {:>12.0} acts/s  cv {:>5.2}%  slowdown {:>8.3}%  windows {:>4}  delta-sum {}",
                    job.label,
                    cell.acts_per_sec,
                    cell.acts_per_sec_cv_pct,
                    cell.slowdown_pct,
                    cell.windows,
                    if cell.delta_sum_ok { "ok" } else { "VIOLATED" },
                );
                if !cell.delta_sum_ok {
                    failures.push(format!(
                        "{}: window delta sum != cumulative stats",
                        job.label
                    ));
                }
                // Phase attribution is a separate profiled replay of the
                // same deterministic stream: the matrix cells above (and
                // the JSON written below) stay byte-identical to an
                // unprofiled run.
                if profile {
                    let attribution = bench_geometry(&cell.geometry)
                        .and_then(|geom| {
                            let config =
                                HydraConfig::isca22_default(geom, 0).map_err(|e| e.to_string())?;
                            let rows = bench_rows(&cell.workload, geom, acts, 42)?;
                            profiled_cell_run(&config, geom, &rows, PROFILE_SAMPLE_PERIOD)
                        })
                        .map(|(tree, _)| tree);
                    match attribution {
                        Ok(tree) => {
                            println!("  {:<16} {}", "", render_phase_columns(&tree));
                        }
                        Err(e) => println!("  {:<16} profile failed: {e}", ""),
                    }
                }
                cells.push(cell.clone());
            }
            (status, _) => {
                let detail = match status {
                    JobStatus::Failed { last_error, .. } => last_error.clone(),
                    JobStatus::TimedOut { .. } => "watchdog timeout".to_string(),
                    JobStatus::Succeeded { .. } => "succeeded without output".to_string(),
                };
                println!("  {:<16} FAILED: {detail}", job.label);
                failures.push(format!("{}: {detail}", job.label));
            }
        }
    }

    let json = bench_json(smoke, acts, &cells, &failures);
    std::fs::write(&out, &json).map_err(|e| format!("{}: {e}", out.display()))?;
    println!("bench: wrote {}", out.display());
    if !failures.is_empty() {
        return Err(format!("{} bench cell(s) failed", failures.len()));
    }
    if let Some(old) = baseline {
        let new = parse_bench_report(&json).map_err(|e| format!("fresh report: {e}"))?;
        return finish_compare(&old, &new, compare_config);
    }
    Ok(())
}

fn read_bench_report(
    path: &std::path::Path,
) -> Result<hydra_repro::forensics::BenchReportData, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_bench_report(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn finish_compare(
    old: &hydra_repro::forensics::BenchReportData,
    new: &hydra_repro::forensics::BenchReportData,
    config: CompareConfig,
) -> Result<(), String> {
    let cmp = compare_reports(old, new, config);
    print!("{}", cmp.render_table());
    let n = cmp.regression_count();
    if n == 0 {
        Ok(())
    } else {
        Err(format!("{n} bench regression(s) beyond tolerance"))
    }
}

fn parse_kinds(list: &str) -> Result<Vec<EventKind>, String> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(|name| {
            EventKind::from_name(name).ok_or_else(|| {
                let valid: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
                format!("unknown event kind {name:?}; valid: {}", valid.join(","))
            })
        })
        .collect()
}

fn report_trace_sink(sink: &JsonlSink, filtered: u64) {
    let mut note = format!("trace: {} event(s) on stdout", sink.written());
    if sink.truncated() > 0 {
        let _ = std::fmt::Write::write_fmt(
            &mut note,
            format_args!(", {} truncated past the cap", sink.truncated()),
        );
    }
    if filtered > 0 {
        let _ =
            std::fmt::Write::write_fmt(&mut note, format_args!(", {filtered} filtered by --kinds"));
    }
    eprintln!("{note}");
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut kinds: Option<Vec<EventKind>> = None;
    let mut limit: u64 = 1_000_000;
    let mut forensics = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kinds" => {
                i += 1;
                kinds = Some(parse_kinds(args.get(i).ok_or("--kinds needs a value")?)?);
            }
            "--limit" => {
                i += 1;
                limit = args
                    .get(i)
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|_| "bad --limit")?;
            }
            "--forensics" => forensics = true,
            flag if flag.starts_with("--") => return Err(format!("unknown trace flag {flag}")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }

    let geom = MemGeometry::isca22_baseline();
    let pattern = parse_pattern(positional.first().ok_or("trace needs a pattern")?, geom)?;
    let acts: u64 = positional
        .get(1)
        .map_or(Ok(2_000), |s| s.parse().map_err(|_| "bad act count"))?;
    let config = HydraConfig::isca22_default(geom, 0).map_err(|e| e.to_string())?;
    let t_h = config.t_h;

    // The kind filter sits in front of the JSONL recorder only: the
    // forensics probe always sees the unfiltered stream.
    let allowed: Vec<EventKind> = kinds.unwrap_or_else(|| EventKind::ALL.to_vec());
    let recorder = KindFilterSink::new(
        JsonlSink::with_limit(limit).with_meta(pattern.name(), t_h),
        &allowed,
    );

    if forensics {
        let probe = ForensicsProbe::new(t_h).with_workload(pattern.name());
        let tracker =
            Hydra::with_probe(config, TeeSink::new(recorder, probe)).map_err(|e| e.to_string())?;
        let tee = run_trace(geom, tracker, &pattern, acts);
        let (recorder, mut probe) = tee.into_parts();
        probe.finish();
        let filtered = recorder.filtered();
        let sink = recorder.into_inner();
        print!("{}", sink.as_str());
        // Incident records share stdout; their "schema" stamp keeps them
        // distinguishable from the "ev"-keyed trace lines.
        print!("{}", incidents_to_jsonl(&probe.incidents()));
        report_trace_sink(&sink, filtered);
        let verdict = probe.verdict();
        eprintln!(
            "forensics: {} window(s), {} attack, dominant {}, {} incident(s)",
            verdict.windows,
            verdict.attack_windows,
            verdict.dominant.name(),
            probe.incidents().len()
        );
    } else {
        let tracker = Hydra::with_probe(config, recorder).map_err(|e| e.to_string())?;
        let recorder = run_trace(geom, tracker, &pattern, acts);
        let filtered = recorder.filtered();
        let sink = recorder.into_inner();
        print!("{}", sink.as_str());
        report_trace_sink(&sink, filtered);
    }
    Ok(())
}

/// Drives `acts` activations of `pattern` through a probed tracker and
/// hands the probe back.
fn run_trace<P: hydra_repro::telemetry::EventSink>(
    geom: MemGeometry,
    tracker: Hydra<hydra_repro::core::RowCountTable, P>,
    pattern: &AttackPattern,
    acts: u64,
) -> P {
    let mut sim = ActivationSim::new(geom, tracker);
    let mut rows = pattern.rows(geom);
    for _ in 0..acts {
        let mut row = rows.next_row();
        row.channel = 0;
        sim.activate(row);
    }
    sim.into_tracker().into_probe()
}

fn cmd_forensics(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut t_h_override: Option<u32> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--t-h" => {
                i += 1;
                t_h_override = Some(
                    args.get(i)
                        .ok_or("--t-h needs a value")?
                        .parse()
                        .map_err(|_| "bad --t-h")?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown forensics flag {flag}")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let path = positional.first().ok_or("forensics needs a trace file")?;
    let text = std::fs::read_to_string(path.as_str()).map_err(|e| format!("{path}: {e}"))?;

    // The trace meta header carries the run's T_H and workload; an explicit
    // --t-h wins, and a headerless trace falls back to the default config.
    let meta = text.lines().next().and_then(parse_trace_meta);
    let default_t_h = HydraConfig::isca22_default(MemGeometry::isca22_baseline(), 0)
        .map_err(|e| e.to_string())?
        .t_h;
    let t_h = t_h_override
        .or(meta.as_ref().and_then(|m| m.t_h))
        .unwrap_or(default_t_h);
    let workload = meta.as_ref().and_then(|m| m.workload.clone());

    let mut probe = ForensicsProbe::new(t_h);
    if let Some(w) = &workload {
        probe = probe.with_workload(w);
    }
    let summary = replay_trace(&text, &mut probe);
    eprintln!(
        "forensics: {path}: {} event(s) replayed, {} skipped, {} malformed, t_h {t_h}{}",
        summary.events,
        summary.skipped,
        summary.malformed,
        workload
            .as_deref()
            .map(|w| format!(", workload {w}"))
            .unwrap_or_default(),
    );
    eprintln!(
        "{:<8} {:<14} {:>6} {:>10} {:>8} {:>8} {:>8}  reason",
        "window", "class", "conf", "acts", "per-row", "spills", "mitig"
    );
    for r in probe.reports() {
        eprintln!(
            "{:<8} {:<14} {:>6.2} {:>10} {:>8} {:>8} {:>8}  {}",
            r.signals.window,
            r.classification.class.name(),
            r.classification.confidence,
            r.signals.activations,
            r.signals.per_row,
            r.signals.spills,
            r.signals.mitigations,
            r.classification.reason,
        );
    }
    print!("{}", incidents_to_jsonl(&probe.incidents()));
    let verdict = probe.verdict();
    eprintln!(
        "verdict: {} ({}/{} attack window(s), max confidence {:.2})",
        verdict.dominant.name(),
        verdict.attack_windows,
        verdict.windows,
        verdict.max_confidence,
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut socket: Option<PathBuf> = None;
    let mut geometry = "tiny".to_string();
    let mut t_rh: u32 = 64;
    let mut max_tenants: Option<usize> = None;
    let mut idle_timeout_ms: Option<u64> = None;
    let mut record: Option<PathBuf> = None;
    let mut allow_crash_frames = false;
    let mut metrics = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--geometry" => geometry = value("--geometry")?,
            "--t-rh" => t_rh = value("--t-rh")?.parse().map_err(|_| "bad --t-rh")?,
            "--max-tenants" => {
                max_tenants = Some(
                    value("--max-tenants")?
                        .parse()
                        .map_err(|_| "bad --max-tenants")?,
                );
            }
            "--idle-timeout-ms" => {
                idle_timeout_ms = Some(
                    value("--idle-timeout-ms")?
                        .parse()
                        .map_err(|_| "bad --idle-timeout-ms")?,
                );
            }
            "--record" => record = Some(PathBuf::from(value("--record")?)),
            "--allow-crash-frames" => allow_crash_frames = true,
            "--metrics" => metrics = true,
            other => return Err(format!("unknown serve flag {other}")),
        }
        i += 1;
    }
    let socket = socket.ok_or("serve needs --socket PATH")?;

    let mut config = ServeConfig::new(&socket, &geometry, t_rh)
        .ok_or_else(|| format!("unknown geometry {geometry} (tiny or isca22)"))?;
    if let Some(n) = max_tenants {
        if n == 0 {
            return Err("--max-tenants must be at least 1".into());
        }
        config.max_tenants = n;
    }
    if let Some(ms) = idle_timeout_ms {
        config.idle_timeout = Duration::from_millis(ms);
    }
    config.allow_crash_frames = allow_crash_frames;
    config.record = record.is_some();
    config.metrics = metrics;

    eprintln!(
        "serve: listening on {} (geometry {geometry}, t_rh {t_rh}); send a Drain frame to stop",
        socket.display()
    );
    // Runs until a client drains it; the kv report is the exit record the
    // CI smoke job greps.
    let handle = hydra_repro::server::spawn(config).map_err(|e| e.to_string())?;
    let report = handle.join()?;
    print!("{}", report.to_kv_lines());
    if let Some(path) = record {
        let session = report
            .session
            .as_ref()
            .ok_or("daemon produced no session despite --record")?;
        std::fs::write(&path, session.to_text()).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("serve: recorded session → {}", path.display());
    }
    Ok(())
}

fn cmd_load(args: &[String]) -> Result<(), String> {
    let mut socket: Option<PathBuf> = None;
    let mut smoke = false;
    let mut tenants: Option<usize> = None;
    let mut batches: Option<u64> = None;
    let mut rows: Option<usize> = None;
    let mut fault_rate: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut no_drain = false;
    let mut drain_only = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--smoke" => smoke = true,
            "--tenants" => {
                tenants = Some(value("--tenants")?.parse().map_err(|_| "bad --tenants")?);
            }
            "--batches" => {
                batches = Some(value("--batches")?.parse().map_err(|_| "bad --batches")?);
            }
            "--rows" => rows = Some(value("--rows")?.parse().map_err(|_| "bad --rows")?),
            "--fault-rate" => {
                fault_rate = Some(
                    value("--fault-rate")?
                        .parse()
                        .map_err(|_| "bad --fault-rate")?,
                );
            }
            "--seed" => seed = Some(value("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--no-drain" => no_drain = true,
            "--drain-only" => drain_only = true,
            other => return Err(format!("unknown load flag {other}")),
        }
        i += 1;
    }
    let socket = socket.ok_or("load needs --socket PATH")?;
    // --smoke pins the CI mix (same idiom as `hydra sweep --smoke`).
    if smoke
        && (tenants.is_some()
            || batches.is_some()
            || rows.is_some()
            || fault_rate.is_some()
            || seed.is_some()
            || no_drain
            || drain_only)
    {
        return Err("--smoke pins the mix; drop it to customize".into());
    }
    if drain_only
        && (tenants.is_some()
            || batches.is_some()
            || rows.is_some()
            || fault_rate.is_some()
            || no_drain)
    {
        return Err("--drain-only sends nothing but the drain; drop the mix flags".into());
    }

    let mut config = LoadConfig::smoke(&socket);
    if drain_only {
        // Shut down a daemon left running by a --no-drain load (the
        // obs-smoke scrape pattern) without replaying the adversary mix
        // against its surviving per-tenant sequence state.
        config.tenants = 0;
        config.batches_per_tenant = 0;
        config.corruptor = false;
        config.fault_rate = 0.0;
        config.slow_reader = false;
        config.reconnect_storm = false;
        config.crash_tenant = false;
    }
    if let Some(n) = tenants {
        config.tenants = n;
    }
    if let Some(n) = batches {
        config.batches_per_tenant = n;
    }
    if let Some(n) = rows {
        config.rows_per_batch = n;
    }
    if let Some(f) = fault_rate {
        config.fault_rate = f;
    }
    if let Some(s) = seed {
        config.seed = s;
    }
    if no_drain {
        config.drain = false;
    }

    let report = run_load(&config)?;
    print!("{}", report.to_kv_lines());
    Ok(())
}

/// `hydra top`: scrape a running daemon's live stats over the wire
/// protocol and render them as per-tenant tables (or dump the raw
/// `hydra-serve-stats-v1` JSON with `--json`).
fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut socket: Option<PathBuf> = None;
    let mut watch: Option<u64> = None;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--watch" => {
                let secs: u64 = value("--watch")?.parse().map_err(|_| "bad --watch")?;
                if secs == 0 {
                    return Err("--watch must be at least 1 second".into());
                }
                watch = Some(secs);
            }
            "--json" => json = true,
            other => return Err(format!("unknown top flag {other}")),
        }
        i += 1;
    }
    let socket = socket.ok_or("top needs --socket PATH")?;

    loop {
        // Reconnect per sample: a watch interval longer than the daemon's
        // idle timeout would otherwise get the connection reaped between
        // scrapes, and a fresh Unix-socket connect is cheap.
        let mut client =
            Client::connect(&socket).map_err(|e| format!("{}: {e}", socket.display()))?;
        let raw = client.stats_json()?;
        if json {
            println!("{raw}");
        } else {
            let reading = StatsReading::parse(&raw)?;
            print!("{}", render_top(&reading));
        }
        match watch {
            Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
            None => return Ok(()),
        }
    }
}

/// Renders one stats snapshot as the `hydra top` text screen.
fn render_top(r: &StatsReading) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "conns {}  frames_ok {}  rejects {}  panics {}  stats_served {}",
        r.counter("connections"),
        r.counter("frames_ok"),
        r.rejects.values().sum::<u64>(),
        r.counter("tenant_panics"),
        r.counter("stats_served"),
    );
    let _ = writeln!(
        out,
        "batches: offered {}  enqueued {}  shed {}  refused {}  acked {}  rows {}",
        r.counter("batches_offered"),
        r.counter("batches_enqueued"),
        r.counter("batches_shed"),
        r.counter("batches_refused"),
        r.counter("batches_accepted"),
        r.counter("rows_accepted"),
    );
    let _ = writeln!(
        out,
        "incidents: published {}  sub-queued {}  sub-evicted {}",
        r.counter("incidents_published"),
        r.counter("subscriber_queued"),
        r.counter("subscriber_dropped"),
    );
    let Some(m) = &r.metrics else {
        let _ = writeln!(
            out,
            "metrics: disabled (start the daemon with `hydra serve --metrics`)"
        );
        return out;
    };
    let uptime_secs = m.uptime_micros as f64 / 1e6;
    let _ = writeln!(out, "{}: {}", metric_names::UPTIME_MICROS, m.uptime_micros);
    for (name, h) in [
        (metric_names::INGEST_US, &m.ingest),
        (metric_names::QUEUE_WAIT_US, &m.queue_wait),
        (metric_names::PUBLISH_LAG_US, &m.publish_lag),
    ] {
        let _ = writeln!(
            out,
            "{name:<14} n {:>8}  mean {:>9.1}  p50 {:>9.1}  p99 {:>9.1}  max {:>8}",
            h.count, h.mean, h.p50, h.p99, h.max,
        );
    }
    let _ = writeln!(
        out,
        "{:<20} {:>9} {:>9} {:>10} {:>6} {:>9} {:>11} {:>9} {:>9}",
        "tenant",
        "acts/s",
        "batches",
        "rows",
        "sheds",
        "incidents",
        metric_names::QUEUE_DEPTH,
        "p50_us",
        "p99_us",
    );
    for t in &m.tenants {
        let _ = writeln!(
            out,
            "{:<20} {:>9.0} {:>9} {:>10} {:>6} {:>9} {:>11} {:>9.1} {:>9.1}",
            t.tenant,
            t.rows as f64 / uptime_secs.max(1e-9),
            t.batches,
            t.rows,
            t.sheds,
            t.incidents,
            t.queue_depth,
            t.ingest.p50,
            t.ingest.p99,
        );
    }
    out
}

fn cmd_replay_session(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("replay-session needs a session file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    replay_check(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("replay-session: {path}: byte-identical");
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("replay needs an artifact file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = FaultCaseSpec::parse_artifact(&text)?;
    println!("replaying {} from {path}", spec.label);
    println!(
        "  geometry={} t_rh={} acts={} window_acts={} stream_seed={} policy={}",
        spec.geometry, spec.t_rh, spec.acts, spec.window_acts, spec.stream_seed, spec.policy
    );
    let report = run_case(&spec).map_err(|e| e.to_string())?;
    println!("  activations       : {}", report.oracle.activations);
    println!("  mitigations       : {}", report.oracle.mitigations);
    println!("  injected faults   : {}", report.injected_faults());
    println!(
        "  dropped/delayed   : {}/{}",
        report.fault_log.dropped_mitigations, report.fault_log.delayed_mitigations
    );
    println!("  health            : {}", report.health);
    println!("  worst unmitigated : {}", report.oracle.worst_unmitigated);
    println!("  violations        : {}", report.oracle.violations_total);
    if report.is_clean() {
        println!("  verdict           : CLEAN");
        Ok(())
    } else {
        println!("  verdict           : VIOLATION REPRODUCED");
        Err("replayed run violates the tracking guarantee (as recorded)".into())
    }
}

/// Parses a comma-separated list with a custom element parser.
fn parse_list<T>(
    flag: &str,
    raw: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, String> {
    let items: Option<Vec<T>> = raw.split(',').map(|s| parse(s.trim())).collect();
    match items {
        Some(v) if !v.is_empty() => Ok(v),
        _ => Err(format!("bad {flag} list: {raw}")),
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--arena") {
        let rest: Vec<String> = args.iter().filter(|a| *a != "--arena").cloned().collect();
        return cmd_sweep_arena(&rest);
    }
    let mut grid = SweepGrid::smoke();
    let mut smoke = false;
    let mut jobs: usize = 1;
    let mut out: Option<PathBuf> = None;
    let mut deterministic = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--smoke" => smoke = true,
            "--jobs" => {
                jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--deterministic" => deterministic = true,
            "--geometry" => grid.geometry = value("--geometry")?,
            "--workloads" => {
                grid.workloads = parse_list("--workloads", &value("--workloads")?, |s| {
                    Some(s.to_string())
                })?;
            }
            "--gct" => {
                grid.gct_entries = parse_list("--gct", &value("--gct")?, |s| s.parse().ok())?;
            }
            "--rcc" => {
                grid.rcc_entries = parse_list("--rcc", &value("--rcc")?, |s| s.parse().ok())?;
            }
            "--t-rh" => {
                grid.t_rh = parse_list("--t-rh", &value("--t-rh")?, |s| s.parse().ok())?;
            }
            "--tg-pct" => {
                grid.tg_pct = parse_list("--tg-pct", &value("--tg-pct")?, |s| s.parse().ok())?;
            }
            "--acts" => grid.acts = value("--acts")?.parse().map_err(|_| "bad --acts")?,
            "--seed" => grid.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            other => return Err(format!("unknown sweep flag {other}")),
        }
        i += 1;
    }
    // --smoke pins the CI grid; without it the same defaults apply but any
    // axis may be overridden. (The flag exists so scripts can say what they
    // mean and fail loudly if they also try to override an axis.)
    if smoke
        && args.iter().any(|a| {
            matches!(
                a.as_str(),
                "--geometry"
                    | "--workloads"
                    | "--gct"
                    | "--rcc"
                    | "--t-rh"
                    | "--tg-pct"
                    | "--acts"
                    | "--seed"
            )
        })
    {
        return Err("--smoke pins the grid; drop it to customize axes".into());
    }

    let cells = grid.cells().map_err(|e| e.to_string())?;
    eprintln!(
        "sweep: {} cell(s) on geometry {}, {} act(s) each, {jobs} job(s)",
        cells.len(),
        grid.geometry,
        grid.acts
    );
    let outcome = run_sweep(
        &grid,
        BatchConfig {
            retries: 1,
            backoff_base: Duration::from_millis(50),
            watchdog: Duration::from_secs(300),
            artifact_dir: None,
            jobs,
        },
    )
    .map_err(|e| e.to_string())?;

    let lines = if deterministic {
        outcome.deterministic_lines()
    } else {
        outcome.jsonl_lines()
    };
    match &out {
        Some(path) => {
            let mut text = lines.join("\n");
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("sweep: wrote {} line(s) to {}", lines.len(), path.display());
        }
        None => {
            for line in &lines {
                println!("{line}");
            }
        }
    }

    for t in outcome.trend_checks() {
        eprintln!(
            "  trend {}/t_rh{}: gct {} → {}: mitigations {} → {}, slowdown {:.3}% → {:.3}% [{}]",
            t.workload,
            t.t_rh,
            t.gct_low,
            t.gct_high,
            t.mitigations_low,
            t.mitigations_high,
            t.slowdown_low_pct,
            t.slowdown_high_pct,
            if t.ok { "ok" } else { "REGRESSED" },
        );
    }
    if !outcome.failures.is_empty() {
        return Err(format!("{} sweep cell(s) failed", outcome.failures.len()));
    }
    if !outcome.trend_ok() {
        return Err(
            "GCT-size trend regressed: growing the GCT increased mitigations or slowdown".into(),
        );
    }
    Ok(())
}

/// `hydra sweep --arena`: race the whole tracker roster (Hydra, the
/// baselines, and the CoMeT/ABACuS/MINT/START successors) under the
/// shadow oracle and emit the hydra-arena-v1 leaderboard.
fn cmd_sweep_arena(args: &[String]) -> Result<(), String> {
    let mut grid = ArenaGrid::full();
    let mut smoke = false;
    let mut jobs: usize = 1;
    let mut out: Option<PathBuf> = None;
    let mut deterministic = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--smoke" => smoke = true,
            "--jobs" => {
                jobs = value("--jobs")?.parse().map_err(|_| "bad --jobs")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--deterministic" => deterministic = true,
            "--geometry" => grid.geometry = value("--geometry")?,
            "--trackers" => {
                grid.trackers =
                    parse_list("--trackers", &value("--trackers")?, |s| Some(s.to_string()))?;
            }
            "--workloads" => {
                grid.workloads = parse_list("--workloads", &value("--workloads")?, |s| {
                    Some(s.to_string())
                })?;
            }
            "--t-rh" => {
                grid.t_rh = parse_list("--t-rh", &value("--t-rh")?, |s| s.parse().ok())?;
            }
            "--acts" => grid.acts = value("--acts")?.parse().map_err(|_| "bad --acts")?,
            "--seed" => grid.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            other => return Err(format!("unknown arena flag {other}")),
        }
        i += 1;
    }
    // Same contract as the design-space sweep: --smoke pins the CI grid.
    if smoke {
        if args.iter().any(|a| {
            matches!(
                a.as_str(),
                "--geometry" | "--trackers" | "--workloads" | "--t-rh" | "--acts" | "--seed"
            )
        }) {
            return Err("--smoke pins the arena grid; drop it to customize axes".into());
        }
        grid = ArenaGrid::smoke();
    }

    let cells = grid.cells().map_err(|e| e.to_string())?;
    eprintln!(
        "arena: {} cell(s) — {} tracker(s) × {} workload(s) × {} threshold(s), {} act(s) each, {jobs} job(s)",
        cells.len(),
        grid.trackers.len(),
        grid.workloads.len(),
        grid.t_rh.len(),
        grid.acts,
    );
    let outcome = run_arena(
        &grid,
        BatchConfig {
            retries: 1,
            backoff_base: Duration::from_millis(50),
            watchdog: Duration::from_secs(300),
            artifact_dir: None,
            jobs,
        },
    )
    .map_err(|e| e.to_string())?;

    let lines = if deterministic {
        outcome.deterministic_lines()
    } else {
        outcome.jsonl_lines()
    };
    match &out {
        Some(path) => {
            let mut text = lines.join("\n");
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("arena: wrote {} line(s) to {}", lines.len(), path.display());
        }
        None => {
            for line in &lines {
                println!("{line}");
            }
        }
    }

    for c in outcome.fig5_checks() {
        eprintln!(
            "  fig5 {}/t_rh{}: sram hydra {} vs graphene {} bits, slowdown {:.3}% vs {:.3}% [{}]",
            c.workload,
            c.t_rh,
            c.hydra_sram_bits,
            c.graphene_sram_bits,
            c.hydra_slowdown_pct,
            c.graphene_slowdown_pct,
            if c.ok { "ok" } else { "REGRESSED" },
        );
    }
    if !outcome.failures.is_empty() {
        return Err(format!("{} arena cell(s) failed", outcome.failures.len()));
    }
    if !outcome.oracle_clean() {
        return Err("shadow oracle flagged a tracker: a row crossed T_RH unmitigated or a clean row was refreshed".into());
    }
    // Fig. 5's claim is gated at the paper's design point (T_RH = 500),
    // where both Hydra and Graphene raced. (At relaxed thresholds
    // Graphene's table is legitimately small; the claim is not expected
    // to hold there.)
    let gate_at = 500;
    if grid.t_rh.contains(&gate_at)
        && grid.trackers.iter().any(|t| t == "hydra")
        && grid.trackers.iter().any(|t| t == "graphene")
        && !outcome.fig5_ok_at(gate_at)
    {
        return Err(format!(
            "Fig. 5 regressed at T_RH = {gate_at}: Hydra must undercut Graphene's SRAM without slowing down more"
        ));
    }
    Ok(())
}
