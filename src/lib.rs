//! Facade crate for the Hydra reproduction workspace.
//!
//! Re-exports the workspace crates under one roof so examples and integration
//! tests can `use hydra_repro::...`. See the individual crates for details:
//!
//! * [`types`] — shared addressing/geometry/tracker vocabulary
//! * [`analysis`] — static config auditor, shadow-oracle sanitizer, repo lint
//! * [`arena`] — cross-tracker arena: CoMeT/ABACuS/MINT/START and the
//!   existing baselines behind one `Tracker` trait, raced on a Pareto
//!   leaderboard (`hydra sweep --arena`)
//! * [`core`] — the Hydra hybrid tracker (the paper's contribution)
//! * [`baselines`] — Graphene, CRA, PARA, OCPR, D-CBF, storage models
//! * [`dram`] — DDR4 device timing, refresh and power models
//! * [`engine`] — worker pool, sharded multi-channel simulation, design-space sweeps
//! * [`faults`] — deterministic fault injection around the tracker
//! * [`forensics`] — attack attribution, window classification, incident reports
//! * [`profiler`] — zero-cost span seam, per-phase call-tree time attribution
//! * [`server`] — Hydra-as-a-service: multi-tenant activation daemon over
//!   Unix sockets, adversarial load client, session record/replay
//! * [`sim`] — memory controller, LLC, core model, system simulator, batch harness
//! * [`telemetry`] — event tracing seam, metric time-series, JSONL/CSV export
//! * [`workloads`] — synthetic workload and attack-pattern generators

#![forbid(unsafe_code)]

pub use hydra_analysis as analysis;
pub use hydra_arena as arena;
pub use hydra_baselines as baselines;
pub use hydra_core as core;
pub use hydra_dram as dram;
pub use hydra_engine as engine;
pub use hydra_faults as faults;
pub use hydra_forensics as forensics;
pub use hydra_profiler as profiler;
pub use hydra_server as server;
pub use hydra_sim as sim;
pub use hydra_telemetry as telemetry;
pub use hydra_types as types;
pub use hydra_workloads as workloads;
